"""Setuptools shim.

The offline environment has no ``wheel`` package, so modern PEP-517 editable
installs (which build a wheel) fail.  Keeping a classic ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
Project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
