"""Client-distribution benchmark: the Figure 13 recovery grid at 10M clients.

Regenerates the client-recovery table (3 protocols × 10k–10M modeled
dir-clients under the Figure-1 attack) and asserts the acceptance bar of the
consensus-distribution layer: the *entire three-protocol row at 10M modeled
clients* regenerates in under 60 s wall-clock.  That bound is what cohort
aggregation buys — per-endpoint client simulation at 10M clients would need
tens of millions of flow events before the first wave completed (cf. the
per-endpoint related-work simulators), while 32 cohorts × 10 s waves keep a
cell at thousands of events regardless of population.

A second bar covers the extreme row: 100M modeled clients across 1000
cohorts on the vector transport engine, again under a 60 s budget for the
whole three-protocol row.  At that scale the interesting result flips — the
fixed 256-mirror tier cannot serve 100M clients within the run window, so
even "ours" recovers only a small fresh fraction; the assertion is that it
still beats the baselines (which recover nobody), not that it wins outright.

A third bar runs the headline row under ``transport="tcp"`` on the vector
engine: the recovery claim must survive real congestion control — slow
start, fast recovery, loss-collapsed windows on the flooded authorities —
not just the idealized ``fair`` split the other rows use.  The measured
"ours" freshness on the reference machine is ~99.5 % at 10M clients
(committed in ``BENCH_clients.json``, documented in DESIGN-transport.md).

Cells run serially, in-process, and uncached (the payload carries wall-clock
timings), exactly like the scaling sweep.  A reference-machine snapshot of
the full grid is committed as ``BENCH_clients.json`` at the repo root.
"""

import pytest

from repro.experiments.figure13_clients import (
    EXTREME_COHORT_COUNT,
    EXTREME_POPULATION,
    render_figure13,
    run_figure13,
    write_bench_json,
)
from repro.runtime.spec import PROTOCOL_NAMES
from repro.simnet.vector_sched import vector_available

#: The headline population: the ROADMAP's "millions of users".
HEADLINE_POPULATION = 10_000_000

#: Wall-clock budget for the whole 3-protocol row at the headline population
#: (reference machine measures ~20 s).
HEADLINE_BUDGET_S = 60.0


@pytest.mark.paper_artifact("figure13-clients")
def test_bench_figure13_client_recovery(benchmark, tmp_path):
    # The benchmark runs the headline row only — the budget assertion is
    # about the 10M cells, and the smaller populations cost the same wall
    # clock without adding information (cost is population-independent;
    # the committed BENCH_clients.json snapshot carries the full grid).
    cells = benchmark.pedantic(
        lambda: run_figure13(populations=(HEADLINE_POPULATION,)),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure13(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_clients.json")
    assert out.exists()

    headline = [cell for cell in cells if cell.population == HEADLINE_POPULATION]
    assert len(headline) == len(cells) == len(PROTOCOL_NAMES)
    assert sorted(cell.protocol for cell in headline) == sorted(PROTOCOL_NAMES)

    # The acceptance bar: 10M modeled clients, all three protocols, < 60 s.
    headline_wall = sum(cell.wall_clock_s for cell in headline)
    assert headline_wall < HEADLINE_BUDGET_S, (
        "3-protocol 10M-client row took %.1f s (budget %.0f s)"
        % (headline_wall, HEADLINE_BUDGET_S)
    )

    # The user-visible recovery claim: under the Figure-1 attack the
    # baselines leave every client stale for the whole run, while the
    # partial-synchrony protocol gets (nearly) everyone a fresh consensus.
    for cell in cells:
        if cell.protocol == "ours":
            assert cell.run_success
            assert cell.fresh_fraction > 0.9
            assert cell.time_to_fresh_p50_s is not None
        else:
            assert not cell.run_success
            assert cell.fresh_fraction == 0.0


@pytest.mark.paper_artifact("figure13-clients")
def test_bench_figure13_recovery_survives_tcp_congestion_control(benchmark, tmp_path):
    # The figure13-on-tcp freshness bar: the same headline row under the
    # congestion-controlled transport, on the vector engine (downgrading to
    # lazy without numpy — slower but still inside the budget at 10M).  The
    # recovery story must not be an artifact of the idealized fair split:
    # "ours" still gets ~99.5 % of clients a fresh consensus (measured
    # 0.9947 on the reference machine) while the baselines recover nobody.
    cells = benchmark.pedantic(
        lambda: run_figure13(
            populations=(HEADLINE_POPULATION,), engine="vector", transport="tcp"
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure13(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_clients_tcp.json")
    assert out.exists()

    assert len(cells) == len(PROTOCOL_NAMES)
    assert sorted(cell.protocol for cell in cells) == sorted(PROTOCOL_NAMES)
    expected_engine = "vector" if vector_available() else "lazy"
    for cell in cells:
        assert cell.transport == "tcp"
        assert cell.engine == expected_engine

    row_wall = sum(cell.wall_clock_s for cell in cells)
    assert row_wall < HEADLINE_BUDGET_S, (
        "3-protocol 10M-client tcp row took %.1f s (budget %.0f s)"
        % (row_wall, HEADLINE_BUDGET_S)
    )

    for cell in cells:
        if cell.protocol == "ours":
            assert cell.run_success
            assert cell.fresh_fraction > 0.9
            assert cell.time_to_fresh_p50_s is not None
        else:
            assert not cell.run_success
            assert cell.fresh_fraction == 0.0


@pytest.mark.paper_artifact("figure13-clients")
@pytest.mark.skipif(
    not vector_available(), reason="the 100M-client row needs the vectorized engine"
)
def test_bench_figure13_extreme_population(benchmark, tmp_path):
    # The vectorized acceptance bar: 100M modeled clients / 1000 cohorts per
    # protocol, whole row under the same 60 s budget (reference machine
    # measures ~37 s on the vector engine).  Skipped without numpy: the
    # downgraded lazy row would burn minutes of scalar loop only to fail a
    # budget that was never its claim.
    cells = benchmark.pedantic(
        lambda: run_figure13(populations=(EXTREME_POPULATION,), engine="vector"),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure13(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_clients_extreme.json")
    assert out.exists()

    assert len(cells) == len(PROTOCOL_NAMES)
    assert sorted(cell.protocol for cell in cells) == sorted(PROTOCOL_NAMES)
    for cell in cells:
        assert cell.population == EXTREME_POPULATION
        assert cell.cohort_count == EXTREME_COHORT_COUNT
        assert cell.peak_rss_mb > 0.0
        assert cell.engine == "vector"

    row_wall = sum(cell.wall_clock_s for cell in cells)
    assert row_wall < HEADLINE_BUDGET_S, (
        "3-protocol 100M-client row took %.1f s (budget %.0f s)"
        % (row_wall, HEADLINE_BUDGET_S)
    )

    # At 100M clients the mirror tier, not the protocol, is the binding
    # constraint: "ours" completes its run and recovers a nonzero fresh
    # fraction while both baselines recover exactly nobody.
    ours = next(cell for cell in cells if cell.protocol == "ours")
    assert ours.run_success
    assert ours.fresh_fraction > 0.0
    for cell in cells:
        if cell.protocol != "ours":
            assert not cell.run_success
            assert cell.fresh_fraction == 0.0
            assert ours.fresh_fraction > cell.fresh_fraction
