"""Client-distribution benchmark: the Figure 13 recovery grid at 10M clients.

Regenerates the client-recovery table (3 protocols × 10k–10M modeled
dir-clients under the Figure-1 attack) and asserts the acceptance bar of the
consensus-distribution layer: the *entire three-protocol row at 10M modeled
clients* regenerates in under 60 s wall-clock.  That bound is what cohort
aggregation buys — per-endpoint client simulation at 10M clients would need
tens of millions of flow events before the first wave completed (cf. the
per-endpoint related-work simulators), while 32 cohorts × 10 s waves keep a
cell at thousands of events regardless of population.

Cells run serially, in-process, and uncached (the payload carries wall-clock
timings), exactly like the scaling sweep.  A reference-machine snapshot of
the full grid is committed as ``BENCH_clients.json`` at the repo root.
"""

import pytest

from repro.experiments.figure13_clients import (
    render_figure13,
    run_figure13,
    write_bench_json,
)
from repro.runtime.spec import PROTOCOL_NAMES

#: The headline population: the ROADMAP's "millions of users".
HEADLINE_POPULATION = 10_000_000

#: Wall-clock budget for the whole 3-protocol row at the headline population
#: (reference machine measures ~20 s).
HEADLINE_BUDGET_S = 60.0


@pytest.mark.paper_artifact("figure13-clients")
def test_bench_figure13_client_recovery(benchmark, tmp_path):
    # The benchmark runs the headline row only — the budget assertion is
    # about the 10M cells, and the smaller populations cost the same wall
    # clock without adding information (cost is population-independent;
    # the committed BENCH_clients.json snapshot carries the full grid).
    cells = benchmark.pedantic(
        lambda: run_figure13(populations=(HEADLINE_POPULATION,)),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure13(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_clients.json")
    assert out.exists()

    headline = [cell for cell in cells if cell.population == HEADLINE_POPULATION]
    assert len(headline) == len(cells) == len(PROTOCOL_NAMES)
    assert sorted(cell.protocol for cell in headline) == sorted(PROTOCOL_NAMES)

    # The acceptance bar: 10M modeled clients, all three protocols, < 60 s.
    headline_wall = sum(cell.wall_clock_s for cell in headline)
    assert headline_wall < HEADLINE_BUDGET_S, (
        "3-protocol 10M-client row took %.1f s (budget %.0f s)"
        % (headline_wall, HEADLINE_BUDGET_S)
    )

    # The user-visible recovery claim: under the Figure-1 attack the
    # baselines leave every client stale for the whole run, while the
    # partial-synchrony protocol gets (nearly) everyone a fresh consensus.
    for cell in cells:
        if cell.protocol == "ours":
            assert cell.run_success
            assert cell.fresh_fraction > 0.9
            assert cell.time_to_fresh_p50_s is not None
        else:
            assert not cell.run_success
            assert cell.fresh_fraction == 0.0
