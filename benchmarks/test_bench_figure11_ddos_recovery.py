"""Figure 11: recovery latency after a complete 5-minute DDoS on 5 authorities."""

import pytest

from repro.experiments import render_figure11, run_figure11

RELAY_COUNTS = (1000, 4000, 7000, 10000)


@pytest.mark.paper_artifact("figure-11")
def test_bench_figure11_ddos_recovery(benchmark, sweep_executor):
    results = benchmark.pedantic(
        lambda: run_figure11(
            relay_counts=RELAY_COUNTS, include_baselines=True, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure11(results))

    for result in results:
        # The new protocol recovers within seconds of the attack ending
        # (the paper reports ~10 s; its fallback baseline is 2,100 s).
        assert result.ours_success
        assert result.ours_latency_after_attack < 60.0
        assert result.ours_latency_after_attack < result.fallback_latency / 10
        # Both synchronous baselines fail the attacked run entirely.
        assert not result.current_success
        assert not result.synchronous_success
