"""Figure 6: number of Tor relays over time (average ≈ 7141.79)."""

import pytest

from repro.experiments import render_figure6, run_figure6


@pytest.mark.paper_artifact("figure-6")
def test_bench_figure6_relay_counts(benchmark):
    series = benchmark(run_figure6)
    print("\n" + render_figure6(series))
    assert series.average == pytest.approx(7141.79, abs=0.01)
    assert 5000 < series.minimum < series.maximum < 10000
