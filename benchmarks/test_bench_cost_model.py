"""Section 4.3: the attack-cost estimate ($0.074 per run, $53.28 per month)."""

import pytest

from repro.experiments import render_cost_analysis, run_cost_analysis


@pytest.mark.paper_artifact("section-4.3-cost")
def test_bench_cost_model(benchmark):
    estimate = benchmark(run_cost_analysis)
    print("\n" + render_cost_analysis(estimate))
    assert estimate.traffic_per_target_mbps == pytest.approx(240.0)
    assert estimate.cost_per_run_usd == pytest.approx(0.074, abs=0.001)
    assert estimate.cost_per_month_usd == pytest.approx(53.28, abs=0.01)
