"""Figure 10: latency of Current / Synchronous / Ours across bandwidths."""

import pytest

from repro.experiments import render_figure10, run_figure10
from repro.experiments.figure10_latency import FIGURE10_BANDWIDTHS

RELAY_COUNTS = (1000, 4000, 7000, 10000)


@pytest.mark.paper_artifact("figure-10")
def test_bench_figure10_latency(benchmark, sweep_executor):
    grid = benchmark.pedantic(
        lambda: run_figure10(
            bandwidths_mbps=FIGURE10_BANDWIDTHS,
            relay_counts=RELAY_COUNTS,
            executor=sweep_executor,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure10(grid))

    # "Ours" succeeds in every cell of every panel.
    ours = [cell for cell in grid.cells if cell.protocol == "ours"]
    assert ours and all(cell.success for cell in ours)

    # At 10 Mbit/s the synchronous protocol fails at (or before) a relay count
    # where the current protocol still works, and both fail before "ours".
    sync_threshold = grid.failure_threshold("synchronous", 10.0)
    current_threshold = grid.failure_threshold("current", 10.0)
    assert sync_threshold is not None and current_threshold is not None
    assert sync_threshold <= current_threshold

    # At DDoS-level bandwidths (1 / 0.5 Mbit/s) both baselines fail everywhere.
    for bandwidth in (1.0, 0.5):
        for protocol in ("current", "synchronous"):
            assert all(not cell.success for cell in grid.series(protocol, bandwidth))
        # Ours still finishes within the figure's ~1000 s axis.
        assert all(cell.latency_s < 1100 for cell in grid.series("ours", bandwidth))

    # At 50 Mbit/s everything succeeds and ours stays within seconds of current.
    for relay_count in RELAY_COUNTS:
        current_cell = [c for c in grid.series("current", 50.0) if c.relay_count == relay_count][0]
        ours_cell = [c for c in grid.series("ours", 50.0) if c.relay_count == relay_count][0]
        assert current_cell.success and ours_cell.success
        assert ours_cell.latency_s - current_cell.latency_s < 15.0
