"""Figure 7: bandwidth required by attacked authorities vs. number of relays."""

import pytest

from repro.attack.ddos import ATTACK_RESIDUAL_BANDWIDTH_MBPS
from repro.experiments import render_figure7, run_figure7

RELAY_COUNTS = (1000, 2000, 4000, 6000, 8000, 10000)


@pytest.mark.paper_artifact("figure-7")
def test_bench_figure7_bandwidth_requirement(benchmark, sweep_executor):
    results = benchmark.pedantic(
        lambda: run_figure7(relay_counts=RELAY_COUNTS, executor=sweep_executor),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure7(results))

    required = {result.relay_count: result.required_mbps for result in results}
    # Monotone growth with the relay count (linear shape).
    ordered = [required[count] for count in RELAY_COUNTS]
    assert all(later >= earlier for earlier, later in zip(ordered, ordered[1:]))
    # Roughly 10 Mbit/s at 8,000 relays, as the paper reports.
    assert 6.0 <= required[8000] <= 16.0
    # Far above what a host keeps under DDoS, so the attack always succeeds.
    assert min(ordered) > 2 * ATTACK_RESIDUAL_BANDWIDTH_MBPS
