"""Figure 1: authority log while five authorities are under DDoS."""

import pytest

from repro.experiments import run_attack_demo


@pytest.mark.paper_artifact("figure-1")
def test_bench_figure1_attack_log(benchmark, sweep_executor):
    demo = benchmark.pedantic(
        lambda: run_attack_demo(relay_count=8000, executor=sweep_executor),
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 1: authority log under attack (observer: %s) ===" % demo.observer_authority)
    print(demo.log_text)
    print("Attack succeeded (consensus blocked): %s" % demo.attack_succeeded)

    assert demo.attack_succeeded
    assert "We're missing votes from 5 authorities" in demo.log_text
    assert "Giving up downloading votes" in demo.log_text
    assert "We don't have enough votes to generate a consensus" in demo.log_text
