"""Table 1: design comparison and communication complexity (analytic + measured)."""

import pytest

from repro.experiments import render_table1, run_table1


@pytest.mark.paper_artifact("table-1")
def test_bench_table1_complexity(benchmark, sweep_executor):
    rows = benchmark.pedantic(
        lambda: run_table1(relay_count=1000, measure=True, executor=sweep_executor),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_table1(rows))

    measured = {row.protocol: row.measured_bytes for row in rows}
    estimated = {row.protocol: row.estimated_bytes for row in rows}
    # Measured traffic preserves the paper's ordering: synchronous >> ours >= current.
    assert measured["Synchronous (Luo et al.)"] > 3 * measured["Current"]
    assert measured["Current"] <= measured["Ours (Partial Synchrony)"]
    assert measured["Ours (Partial Synchrony)"] < measured["Synchronous (Luo et al.)"]
    # The analytic model preserves the same ordering.
    assert estimated["Synchronous (Luo et al.)"] > estimated["Ours (Partial Synchrony)"]
    assert estimated["Ours (Partial Synchrony)"] >= estimated["Current"]
