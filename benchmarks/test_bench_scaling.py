"""Scaling sweep: transport wall-clock cost beyond 10×-paper node counts.

Unlike the figure benchmarks this one measures the *simulator itself*: the
same consensus runs at 9, 30, 90, 120 and 300 authorities under the
``fair``, ``latency-only`` and ``tcp`` transports — ``fair`` on the vector
engine at every count, on the lazy engine up to 120, and on the legacy
engine up to 90; ``tcp`` on the lazy and vector engines up to 120 — timed
cell by cell.  It deliberately bypasses the session sweep executor and
its cache — a cache hit would report a near-zero wall clock and poison the
comparison.

Six acceptance bars are asserted:

* the lazy-advance bar — ``fair`` on the lazy engine ≥3× faster than the
  same spec on the legacy global-recompute engine at the 10×-paper point
  (measured ~5.9× on the reference machine pre-batching, ~21× after the
  batched-dispatch PR, which speeds the lazy engine but not the legacy
  reference); and
* the vectorized bar — ``fair`` on the structure-of-arrays vector engine
  still ahead of the lazy engine at the 120-authority point (skipped
  without numpy, where vector requests run the lazy fallback).  PR 8's
  ≥3× form of this bar was *obsoleted by batched dispatch*: transitive
  same-instant completion batching removed the scalar wave-completion
  blow-up that vectorization originally amortized, and lazy ``fair``@120
  fell from ~12.6 s to ~4.8 s, shrinking the lazy→vector gap from ~4×
  to the measured ~1.5×.  The assertion now pins direction plus margin
  (≥1.1×) at the point where batch width is widest; vector's real
  remaining win is the 300-authority cell (~26 s vs ~102 s scalar lazy,
  measured out-of-sweep); and
* the partition-parallel bar — ``fair`` on the partition-sharded parallel
  engine within noise of the vector engine at the 300-authority point
  (also numpy-gated).  The tentpole issue targeted ≥2× over vector at 4
  workers; the honest measurement on the 1-core reference container is
  **parity** (~1.0×), because the shared-occupancy coupling has zero
  transport lookahead (all shards must synchronise at every instant — see
  ``DESIGN-parallel.md``) and ``effective_worker_count`` caps the pool at
  the machine's single schedulable core, so partition-gated scanning is
  the only available win and it roughly cancels the sharding overhead.
  The committed assertion is therefore a *parity tripwire* (≥0.5×, wide
  noise margin): it catches the partition bookkeeping regressing into
  real cost, and must be re-tightened from measurements on a wider
  machine, never loosened; and
* the tcp-vector bar — ``tcp`` on the vector engine ≥1.5× faster than the
  same spec on the scalar lazy engine at the 120-authority point (also
  numpy-gated; measured ~2.1× on the reference machine).  Unlike the
  fair lazy→vector gap, which batched dispatch shrank to ~1.5×, tcp's
  gap comes from *ack ticks*: the lazy engine pays one heap event per
  flow per ack round while the vector policy advances whole due cohorts
  per wake (synchronized broadcast waves share identical congestion
  trajectories, so their ticks coalesce), and that cost is untouched by
  completion batching; and
* the fast-model bar — ``latency-only`` still ahead of ``fair`` at the
  120-authority stretch point.  PR 3's original ≥3× form of this bar was
  *obsoleted by the lazy engine*: once shared-model per-event cost became
  O(touched flows), ``fair``@90 dropped from 53.7 s to ~7.4 s and the
  fair→latency-only gap shrank from 5.8× to ~1.7× (2.1× at 120).  The
  assertion now pins the direction and a conservative margin at the
  largest N, where the remaining coupling cost is widest.

A further assertion is the *non-transport floor tripwire*: format-5 cells
carry exclusive phase buckets (``repro.utils.phases``), and the summed
non-transport time of the lazy ``fair`` cell at the stretch point must
stay under a generous budget (measured ~0.7 s after the batched-dispatch
PR, asserted <2.5 s) — it catches per-recipient serialization or dispatch
overhead creeping back in without failing on machine noise.

The sweep's numbers are written to ``BENCH_scaling.json`` next to this
run's working directory (a committed format-6 snapshot from the reference
machine lives at the repo root; format 6 adds tcp cells on the vector
engine up to 120 authorities and the ``speedup_tcp_lazy_to_vector``
table, on top of format 5's per-cell ``phases`` buckets and
``non_transport_floor_fair`` table, format 4's parallel cells at 120 and
300 authorities, per-cell effective ``workers`` count, and
vector→parallel table, and format 3's 300-authority cells, per-cell
``peak_rss_mb`` high-water mark, and lazy→vector table).
"""

import pytest

from repro.experiments.scaling_sweep import (
    engine_speedup_at,
    parallel_speedup_at,
    render_scaling,
    run_scaling_sweep,
    speedup_at,
    vector_speedup_at,
    write_bench_json,
)
from repro.simnet.vector_sched import vector_available

#: The headline grid point: 10× the paper's nine authorities.
TEN_X_PAPER = 90

#: The stretch grid point the lazy engine made affordable.
STRETCH = 120

#: The extreme grid point the vector engine makes affordable: the shared
#: ``fair`` transport at 33x the paper's authority count.
EXTREME = 300


@pytest.mark.paper_artifact("scaling-sweep")
def test_bench_scaling_sweep(benchmark, tmp_path):
    cells = benchmark.pedantic(
        lambda: run_scaling_sweep(),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_scaling(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_scaling.json")
    assert out.exists()

    assert all(cell.success for cell in cells), "every scaling cell must reach consensus"
    engine_speedup = engine_speedup_at(cells, TEN_X_PAPER)
    assert engine_speedup is not None
    # The lazy-advance acceptance bar: the heap-driven shared scheduler must
    # beat the legacy global-recompute loop >=3x on the same fair spec.
    assert engine_speedup >= 3.0, (
        "lazy-engine fair speedup at N=%d was %.2fx" % (TEN_X_PAPER, engine_speedup)
    )
    if vector_available():
        vector_speedup = vector_speedup_at(cells, STRETCH)
        assert vector_speedup is not None
        # The vectorized bar, re-anchored post-batched-dispatch (see module
        # docstring): the numpy engine must stay ahead of the scalar lazy
        # loop where batch width is widest (measured ~1.5x; the old >=3x
        # margin was the scalar wave-completion blow-up, now batched away).
        assert vector_speedup >= 1.1, (
            "vector-engine fair speedup at N=%d was %.2fx" % (STRETCH, vector_speedup)
        )
        # The 300-authority cells exist and succeeded on the vector and
        # parallel engines.
        extreme = [
            cell for cell in cells
            if cell.authority_count == EXTREME and cell.transport == "fair"
        ]
        engines = sorted(cell.engine for cell in extreme)
        assert engines == ["parallel", "vector"], engines
        parallel_cells = [
            cell for cell in cells
            if cell.engine == "parallel" and cell.transport == "fair"
        ]
        assert sorted(cell.authority_count for cell in parallel_cells) == [
            STRETCH, EXTREME,
        ]
        # The effective fan-out is recorded per cell (1 on a 1-core box).
        assert all(cell.workers >= 1 for cell in parallel_cells)
        # The partition-parallel parity tripwire (see module docstring: the
        # honest measurement on the 1-core reference container is ~1.0x
        # vector, not the issue's 2x target; the wide 0.5x floor catches
        # sharding bookkeeping regressing into real cost).
        parallel_speedup = parallel_speedup_at(cells, EXTREME)
        assert parallel_speedup is not None
        assert parallel_speedup >= 0.5, (
            "parallel-engine fair ratio at N=%d was %.2fx vector"
            % (EXTREME, parallel_speedup)
        )
        # The tcp-vector bar (see module docstring): cohort ack ticks must
        # beat the scalar one-event-per-flow-per-round loop where broadcast
        # waves are widest (measured ~1.8-2.1x on the reference machine).
        tcp_speedup = vector_speedup_at(cells, STRETCH, transport="tcp")
        assert tcp_speedup is not None
        assert tcp_speedup >= 1.5, (
            "vector-engine tcp speedup at N=%d was %.2fx" % (STRETCH, tcp_speedup)
        )

    transport_speedup = speedup_at(cells, STRETCH)
    assert transport_speedup is not None
    # The fast-model bar, re-anchored post-lazy (see module docstring): the
    # sharing-free model must stay ahead where coupling cost is widest.
    assert transport_speedup >= 1.5, (
        "latency-only speedup at N=%d was %.2fx" % (STRETCH, transport_speedup)
    )

    # The non-transport floor tripwire (see module docstring): everything a
    # lazy fair cell spends outside the transport bucket — protocol logic,
    # crypto, dispatch — must stay within budget at the stretch point.
    floor_cells = [
        cell for cell in cells
        if cell.transport == "fair"
        and cell.engine == "lazy"
        and cell.authority_count == STRETCH
    ]
    assert len(floor_cells) == 1
    floor = floor_cells[0].non_transport_floor_s
    assert floor > 0.0, "phase attribution missing from the lazy fair cell"
    assert floor < 2.5, (
        "non-transport floor at fair@%d (lazy) was %.2fs" % (STRETCH, floor)
    )
