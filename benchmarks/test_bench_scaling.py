"""Scaling sweep: transport wall-clock cost beyond 10×-paper node counts.

Unlike the figure benchmarks this one measures the *simulator itself*: the
same consensus runs at 9, 30, 90, 120 and 300 authorities under the ``fair``
and ``latency-only`` transports — ``fair`` on the vector engine at every
count, on the lazy engine up to 120, and on the legacy engine up to 90 —
timed cell by cell.  It deliberately bypasses the session sweep executor and
its cache — a cache hit would report a near-zero wall clock and poison the
comparison.

Three acceptance bars are asserted:

* the lazy-advance bar — ``fair`` on the lazy engine ≥3× faster than the
  same spec on the legacy global-recompute engine at the 10×-paper point
  (measured ~5.9× on the reference machine); and
* the vectorized bar — ``fair`` on the structure-of-arrays vector engine
  ≥3× faster than the same spec on the lazy engine at the 120-authority
  point (skipped without numpy, where vector requests run the lazy
  fallback); and
* the fast-model bar — ``latency-only`` still ahead of ``fair`` at the
  120-authority stretch point.  PR 3's original ≥3× form of this bar was
  *obsoleted by the lazy engine*: once shared-model per-event cost became
  O(touched flows), ``fair``@90 dropped from 53.7 s to ~7.4 s and the
  fair→latency-only gap shrank from 5.8× to ~1.7× (2.1× at 120).  The
  assertion now pins the direction and a conservative margin at the
  largest N, where the remaining coupling cost is widest.

The sweep's numbers are written to ``BENCH_scaling.json`` next to this
run's working directory (a committed format-3 snapshot from the reference
machine lives at the repo root; format 3 adds the 300-authority cells, the
per-cell ``peak_rss_mb`` high-water mark, and the lazy→vector table).
"""

import pytest

from repro.experiments.scaling_sweep import (
    engine_speedup_at,
    render_scaling,
    run_scaling_sweep,
    speedup_at,
    vector_speedup_at,
    write_bench_json,
)
from repro.simnet.vector_sched import vector_available

#: The headline grid point: 10× the paper's nine authorities.
TEN_X_PAPER = 90

#: The stretch grid point the lazy engine made affordable.
STRETCH = 120

#: The extreme grid point the vector engine makes affordable: the shared
#: ``fair`` transport at 33x the paper's authority count.
EXTREME = 300


@pytest.mark.paper_artifact("scaling-sweep")
def test_bench_scaling_sweep(benchmark, tmp_path):
    cells = benchmark.pedantic(
        lambda: run_scaling_sweep(),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_scaling(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_scaling.json")
    assert out.exists()

    assert all(cell.success for cell in cells), "every scaling cell must reach consensus"
    engine_speedup = engine_speedup_at(cells, TEN_X_PAPER)
    assert engine_speedup is not None
    # The lazy-advance acceptance bar: the heap-driven shared scheduler must
    # beat the legacy global-recompute loop >=3x on the same fair spec.
    assert engine_speedup >= 3.0, (
        "lazy-engine fair speedup at N=%d was %.2fx" % (TEN_X_PAPER, engine_speedup)
    )
    if vector_available():
        vector_speedup = vector_speedup_at(cells, STRETCH)
        assert vector_speedup is not None
        # The vectorized acceptance bar: batch rate recompute over numpy
        # slot arrays must beat the scalar lazy loop >=3x where coupling
        # cost is widest.
        assert vector_speedup >= 3.0, (
            "vector-engine fair speedup at N=%d was %.2fx" % (STRETCH, vector_speedup)
        )
        # The 300-authority cells exist and succeeded on the vector engine.
        extreme = [
            cell for cell in cells
            if cell.authority_count == EXTREME and cell.transport == "fair"
        ]
        assert extreme and all(cell.engine == "vector" for cell in extreme)

    transport_speedup = speedup_at(cells, STRETCH)
    assert transport_speedup is not None
    # The fast-model bar, re-anchored post-lazy (see module docstring): the
    # sharing-free model must stay ahead where coupling cost is widest.
    assert transport_speedup >= 1.5, (
        "latency-only speedup at N=%d was %.2fx" % (STRETCH, transport_speedup)
    )
