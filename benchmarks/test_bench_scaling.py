"""Scaling sweep: transport wall-clock cost at 10×-paper node counts.

Unlike the figure benchmarks this one measures the *simulator itself*: the
same consensus runs at 9, 30, and 90 authorities under the ``fair`` and
``latency-only`` transports, timed cell by cell.  It deliberately bypasses
the session sweep executor and its cache — a cache hit would report a
near-zero wall clock and poison the comparison.

The acceptance bar of the transport refactor is asserted here: at 10× the
paper's node count the ``latency-only`` model must be at least 3× faster in
wall-clock terms than the shared ``fair`` model.  The sweep's numbers are
written to ``BENCH_scaling.json`` next to this run's working directory (a
committed snapshot from the reference machine lives at the repo root).
"""

import pytest

from repro.experiments.scaling_sweep import (
    render_scaling,
    run_scaling_sweep,
    speedup_at,
    write_bench_json,
)

#: The headline grid point: 10× the paper's nine authorities.
TEN_X_PAPER = 90


@pytest.mark.paper_artifact("scaling-sweep")
def test_bench_scaling_sweep(benchmark, tmp_path):
    cells = benchmark.pedantic(
        lambda: run_scaling_sweep(authority_counts=(9, 30, TEN_X_PAPER)),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_scaling(cells))
    out = write_bench_json(cells, tmp_path / "BENCH_scaling.json")
    assert out.exists()

    assert all(cell.success for cell in cells), "every scaling cell must reach consensus"
    speedup = speedup_at(cells, TEN_X_PAPER)
    assert speedup is not None
    # The transport-refactor acceptance bar: >=3x at 10x-paper node count.
    assert speedup >= 3.0, "latency-only speedup at N=%d was %.2fx" % (TEN_X_PAPER, speedup)
