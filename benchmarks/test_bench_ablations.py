"""Ablations: link-scheduling policy and agreement-engine choice."""

import pytest

from repro.experiments.ablations import (
    render_ablation,
    run_engine_ablation,
    run_scheduling_ablation,
)


@pytest.mark.paper_artifact("ablation-scheduling")
def test_bench_scheduling_ablation(benchmark, sweep_executor):
    cells = benchmark.pedantic(
        lambda: run_scheduling_ablation(
            relay_count=4000, bandwidth_mbps=20.0, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_ablation(cells, "Ablation: fair-share vs FIFO link scheduling"))
    outcome_by_variant = {}
    for cell in cells:
        outcome_by_variant.setdefault(cell.protocol, set()).add(cell.success)
    # The qualitative conclusion is identical under both link models.
    for protocol, outcomes in outcome_by_variant.items():
        assert len(outcomes) == 1


@pytest.mark.paper_artifact("ablation-engine")
def test_bench_engine_ablation(benchmark, sweep_executor):
    cells = benchmark.pedantic(
        lambda: run_engine_ablation(
            relay_count=4000, bandwidth_mbps=20.0, executor=sweep_executor
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_ablation(cells, "Ablation: agreement engine inside the new protocol"))
    assert all(cell.success for cell in cells)
    latencies = [cell.latency_s for cell in cells]
    assert max(latencies) - min(latencies) < 30.0
