"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper and prints the
corresponding rows/series, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the artefact-regeneration entry point.  The benchmark timings
measure how long the reproduction takes to regenerate each artefact.

All protocol runs route through one session-wide
:class:`~repro.runtime.executor.SweepExecutor` (the ``sweep_executor``
fixture) backed by a per-session :class:`~repro.runtime.cache.ResultCache`:
grids fan out over ``REPRO_BENCH_WORKERS`` processes (default 2) and cells
shared between artefacts execute once.
"""

import os

import pytest

from repro.runtime import ResultCache, SweepExecutor


def pytest_configure(config):
    # The benchmark suite lives outside the default testpaths; make sure the
    # benchmark plugin does not complain when invoked without --benchmark-only.
    config.addinivalue_line("markers", "paper_artifact(name): marks which paper artefact a benchmark regenerates")


@pytest.fixture(scope="session")
def sweep_cache(tmp_path_factory):
    """A result cache shared by every benchmark in the session."""
    return ResultCache(tmp_path_factory.mktemp("sweep-cache"))


@pytest.fixture(scope="session")
def sweep_executor(sweep_cache):
    """The session-wide executor all artefact benchmarks run through."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    return SweepExecutor(workers=workers, cache=sweep_cache)
