"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper and prints the
corresponding rows/series, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the artefact-regeneration entry point.  The benchmark timings
measure how long the reproduction takes to regenerate each artefact.
"""

import pytest


def pytest_configure(config):
    # The benchmark suite lives outside the default testpaths; make sure the
    # benchmark plugin does not complain when invoked without --benchmark-only.
    config.addinivalue_line("markers", "paper_artifact(name): marks which paper artefact a benchmark regenerates")
