"""Figure 12: consensus and recovery latency under injected fault mixes."""

import pytest

from repro.experiments import default_fault_mixes, render_figure12, run_figure12


@pytest.mark.paper_artifact("figure-12")
def test_bench_figure12_fault_mixes(benchmark, sweep_executor):
    results = benchmark.pedantic(
        lambda: run_figure12(executor=sweep_executor),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_figure12(results))

    by_cell = {(result.mix, result.protocol): result for result in results}
    mixes = {mix.name for mix in default_fault_mixes()}
    assert len(mixes) >= 4 and {m for m, _ in by_cell} == mixes

    # The paper's protocol rides out churn, a healing minority partition,
    # lossy links, and Byzantine authorities.
    for mix in ("authority-churn", "minority-partition", "lossy-links", "byzantine"):
        ours = by_cell[(mix, "ours")]
        assert ours.success
        assert ours.recovery_latency is not None and ours.recovery_latency < 120.0

    # A vote equivocator plus a withholder break both deployed baselines:
    # their vote sets diverge, so no consensus digest gathers a majority.
    assert not by_cell[("byzantine", "current")].success
    assert not by_cell[("byzantine", "synchronous")].success

    # A total drop-typed flood of a majority stalls every protocol: unlike
    # the bandwidth-throttle form of Figure 11, dropped dissemination is
    # never retransmitted.
    for protocol in ("current", "synchronous", "ours"):
        assert not by_cell[("flash-flood", protocol)].success

    # The leaky variant on the tcp transport is just as fatal — p ≈ 0.998
    # message loss plus collapsed congestion windows — but the drops are
    # probabilistic losses, not partition cuts.  Re-measured after tcp grew
    # Reno fast retransmit/recovery: the counts are *unchanged* from the
    # Tahoe era (current 120 / synchronous 119 / ours 92), and for a
    # structural reason worth pinning — at near-total loss every ack round
    # is lossy, cwnd pins at 1, and a one-segment window can never raise
    # the three duplicate acks fast recovery needs, so Reno degenerates to
    # the Tahoe timeout path exactly; the drop counts themselves come from
    # message-level loss draws, not the window trajectory.  Fast recovery
    # only changes behaviour at *moderate* loss with open windows (covered
    # by the Reno unit tests in tests/simnet/test_tcp_transport.py).
    for protocol in ("current", "synchronous", "ours"):
        tcp_cell = by_cell[("flash-flood-tcp", protocol)]
        assert not tcp_cell.success
        assert tcp_cell.messages_dropped > 0
        assert tcp_cell.partition_seconds == 0.0

    # Fault accounting flows through the executor and cache unharmed.
    assert by_cell[("lossy-links", "ours")].messages_dropped > 0
    assert by_cell[("minority-partition", "ours")].partition_seconds == 360.0
    assert by_cell[("authority-churn", "ours")].authority_down_seconds == 360.0
