"""Micro-benchmarks of the substrates (not paper artefacts, but useful baselines).

These time the hot paths of the reproduction: vote aggregation, vote
serialisation, the event-driven transport, and a full single-shot consensus
instance on the local driver.
"""

import pytest

from repro.consensus import EngineConfig, LocalDriver, make_engine
from repro.directory.aggregate import aggregate_votes
from repro.netgen.relaygen import RelayPopulationConfig, generate_population
from repro.netgen.views import generate_authority_votes
from repro.directory.authority import make_authorities
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode


@pytest.fixture(scope="module")
def vote_fixture():
    authorities, _ring = make_authorities(9, seed=5)
    population = generate_population(RelayPopulationConfig(relay_count=300, seed=5))
    votes = list(generate_authority_votes(population, authorities).values())
    return votes


def test_bench_vote_aggregation(benchmark, vote_fixture):
    consensus = benchmark(lambda: aggregate_votes(vote_fixture))
    assert consensus.relay_count > 250


def test_bench_vote_serialization(benchmark, vote_fixture):
    size = benchmark(lambda: vote_fixture[0].size_bytes)
    assert size > 50_000


def test_bench_consensus_single_shot(benchmark):
    nodes = tuple("n%d" % index for index in range(9))

    def run_once():
        engines = {
            name: make_engine("hotstuff", EngineConfig(node_id=name, nodes=nodes))
            for name in nodes
        }
        driver = LocalDriver(engines)
        driver.start({name: "value" for name in nodes})
        return driver.run(until=100)

    result = benchmark(run_once)
    assert len(result.decisions) == 9


class _Sink(ProtocolNode):
    def on_message(self, message, now):
        pass


def test_bench_transport_many_flows(benchmark):
    def run_once():
        network = SimNetwork()
        for index in range(10):
            network.add_node(_Sink("node-%d" % index), LinkConfig.symmetric_mbps(100))
        for source in range(10):
            for destination in range(10):
                if source != destination:
                    network.send(
                        "node-%d" % source,
                        "node-%d" % destination,
                        Message(msg_type="BLOB", size_bytes=500_000),
                    )
        network.run()
        return network.stats.messages_delivered

    delivered = benchmark(run_once)
    assert delivered == 90


def test_bench_spec_hashing(benchmark):
    from repro.runtime import RunSpec

    spec = RunSpec(protocol="ours", relay_count=8000, bandwidth_mbps=10.0)
    digest = benchmark(spec.spec_hash)
    assert len(digest) == 64


def test_bench_result_cache_hit(benchmark, tmp_path):
    from repro.protocols.runner import execute_spec
    from repro.runtime import ResultCache, RunSpec, SweepExecutor

    spec = RunSpec(protocol="current", relay_count=150, max_time=900.0)
    cache = ResultCache(tmp_path)
    cache.put(spec, execute_spec(spec).summary())

    def warm_run():
        executor = SweepExecutor(cache=cache)
        results = executor.run([spec])
        assert executor.executed_runs == 0
        return results

    results = benchmark(warm_run)
    assert results[0].success
