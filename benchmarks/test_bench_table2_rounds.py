"""Table 2: round complexity of the sub-protocols (total of 9 with HotStuff)."""

import pytest

from repro.experiments import render_table2, run_table2


@pytest.mark.paper_artifact("table-2")
def test_bench_table2_rounds(benchmark):
    rows = benchmark(run_table2)
    print("\n" + render_table2(rows))
    by_name = {row.sub_protocol: row.rounds for row in rows}
    assert by_name["Dissemination"] == "2"
    assert by_name["Aggregation"] == "2"
    assert by_name["Total"] == "9"
