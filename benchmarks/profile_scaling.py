"""Profiling harness for the transport hot path.

Future perf PRs should start from data, not vibes: this script cProfiles a
single scaling-sweep cell (default: the headline ``fair`` run at 90
authorities on the lazy engine) and dumps the top-N functions by cumulative
time.  It is how the lazy-advance PR found, for example, that vote
re-serialisation — not the scheduler — had become the next bottleneck once
rate recomputation was incremental.

Usage::

    PYTHONPATH=src python benchmarks/profile_scaling.py
    PYTHONPATH=src python benchmarks/profile_scaling.py --engine legacy
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 30 --transport fifo --sort tottime --top 40
    PYTHONPATH=src python benchmarks/profile_scaling.py --out cell.prof
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 9 --clients 1000000 --cohorts 32
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 120 --compare
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 120 --transport tcp --engine vector
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 120 --transport tcp --compare
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --authorities 120 --phases
    PYTHONPATH=src python benchmarks/profile_scaling.py \\
        --engine parallel --partitions 4 --authorities 120

``--partitions`` pins ``REPRO_PARALLEL_PARTITIONS`` for the process, so a
``--engine parallel`` profile (or a ``--compare`` table) runs the
partition-parallel engine at a chosen shard count instead of the
environment's default.

``--out`` writes the raw pstats dump for ``snakeviz``/``pstats`` digging;
without it the report just prints.  The cell always executes in-process and
uncached, so the profile measures simulation cost only.  ``--clients``
attaches a consensus-distribution workload (``--cohorts`` cohorts, the
Figure 13 defaults otherwise), making the client layer profilable exactly
like the transport.  ``--compare`` skips the profiler and instead times the
same cell once per engine, printing a scalar-vs-vector speedup table (the
quick sanity check before trusting a profile's relative numbers); with
``--transport tcp`` the vector row runs the real tcp vector policy (no
longer a lazy fallback), so the table prices cohort ack ticks directly.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import time
from typing import Optional, Sequence

from repro.protocols.runner import execute_spec
from repro.runtime.spec import RunSpec
from repro.simnet.flows import (
    SHARED_ENGINES,
    effective_shared_engine,
    use_shared_engine,
)
from repro.utils import phases

#: Default cohort count for --clients (the Figure 13 grid's).
DEFAULT_COHORTS = 32


def _cell_spec(
    authorities: int,
    transport: str,
    protocol: str,
    relay_count: int,
    seed: int,
    max_time: float,
    clients: int,
    cohorts: int,
) -> RunSpec:
    workload = None
    if clients:
        # Imported lazily: client-free transport profiling must not depend
        # on the experiments package.
        from repro.experiments.figure13_clients import default_client_workload

        workload = default_client_workload(clients, cohort_count=cohorts)
    return RunSpec(
        protocol=protocol,
        relay_count=relay_count,
        bandwidth_mbps=250.0,
        seed=seed,
        transport=transport,
        authority_count=authorities,
        max_time=max_time,
        client_workload=workload,
    )


def profile_cell(
    authorities: int = 90,
    transport: str = "fair",
    engine: str = "lazy",
    protocol: str = "current",
    relay_count: int = 200,
    seed: int = 7,
    max_time: float = 600.0,
    clients: int = 0,
    cohorts: int = DEFAULT_COHORTS,
) -> cProfile.Profile:
    """Run one scaling cell under cProfile and return the profiler."""
    spec = _cell_spec(
        authorities, transport, protocol, relay_count, seed, max_time, clients, cohorts
    )
    profiler = cProfile.Profile()
    with use_shared_engine(engine):
        profiler.enable()
        result = execute_spec(spec)
        profiler.disable()
    print(
        "cell: %s@%d transport=%s engine=%s success=%s messages=%d"
        % (protocol, authorities, transport, engine, result.success, result.stats.messages_sent)
    )
    if result.client_summary:
        print(
            "clients: %d in %d cohorts — fresh %.1f%%, %d fetch attempts"
            % (
                result.client_summary["population"],
                result.client_summary["cohorts"],
                100.0 * result.client_summary["fresh_fraction"],
                result.client_summary["fetch_attempts"],
            )
        )
    return profiler


def compare_engines(
    authorities: int = 90,
    transport: str = "fair",
    protocol: str = "current",
    relay_count: int = 200,
    seed: int = 7,
    max_time: float = 600.0,
    clients: int = 0,
    cohorts: int = DEFAULT_COHORTS,
    engines: Sequence[str] = SHARED_ENGINES,
) -> None:
    """Time the same cell once per engine and print a speedup table.

    The baseline row is the lazy engine (the default); each row reports its
    wall clock and the lazy/engine speedup factor.  On a numpy-less install
    the ``vector`` row runs the lazy fallback and says so.
    """
    spec = _cell_spec(
        authorities, transport, protocol, relay_count, seed, max_time, clients, cohorts
    )
    timings = []
    for engine in engines:
        with use_shared_engine(engine):
            effective = effective_shared_engine(transport=transport)
            started = time.perf_counter()
            result = execute_spec(spec)
            elapsed = time.perf_counter() - started
        timings.append((engine, effective, elapsed, result.stats.messages_sent))
    baseline = next(
        (elapsed for engine, _eff, elapsed, _m in timings if engine == "lazy"),
        timings[0][2],
    )
    print(
        "engine comparison: %s@%d transport=%s (%d engines, baseline lazy)"
        % (protocol, authorities, transport, len(timings))
    )
    header = "%-8s %-10s %10s %10s %10s" % (
        "engine", "effective", "wall (s)", "lazy/x", "messages",
    )
    print(header)
    print("-" * len(header))
    for engine, effective, elapsed, messages in timings:
        note = effective if effective == engine else "%s (fallback)" % effective
        print(
            "%-8s %-10s %10.2f %10.2f %10d"
            % (engine, note, elapsed, baseline / elapsed if elapsed else 0.0, messages)
        )


def phase_cell(
    authorities: int = 90,
    transport: str = "fair",
    engine: str = "lazy",
    protocol: str = "current",
    relay_count: int = 200,
    seed: int = 7,
    max_time: float = 600.0,
    clients: int = 0,
    cohorts: int = DEFAULT_COHORTS,
) -> dict:
    """Run one cell with phase attribution enabled and print the buckets.

    The phase timers split the run's wall clock into *exclusive* buckets —
    transport (engine loop + flow admission/rate recompute), protocol
    (timer and delivery callbacks), crypto (HMAC sign/verify), client_wave
    (cohort wave ticks) — plus an ``other`` remainder (setup, aggregation,
    summary).  Everything except ``transport`` is the **non-transport
    floor**: the budget a perf regression should be attributed against
    before blaming the flow scheduler.  Returns the bucket dict.
    """
    spec = _cell_spec(
        authorities, transport, protocol, relay_count, seed, max_time, clients, cohorts
    )
    with use_shared_engine(engine):
        result, buckets, wall_s = phases.profile(execute_spec, spec)
    print(
        "cell: %s@%d transport=%s engine=%s success=%s messages=%d wall=%.2fs"
        % (
            protocol,
            authorities,
            transport,
            engine,
            result.success,
            result.stats.messages_sent,
            wall_s,
        )
    )
    print("%-12s %10s %7s" % ("phase", "time (s)", "share"))
    print("-" * 31)
    for bucket in (*phases.BUCKETS, "other"):
        spent = buckets.get(bucket, 0.0)
        print(
            "%-12s %10.2f %6.1f%%"
            % (bucket, spent, 100.0 * spent / wall_s if wall_s else 0.0)
        )
    # non_transport_total sums every non-transport entry, "other" included.
    floor = phases.non_transport_total(buckets)
    print("-" * 31)
    print("%-12s %10.2f %6.1f%%" % (
        "floor", floor, 100.0 * floor / wall_s if wall_s else 0.0,
    ))
    return buckets


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--authorities", type=int, default=90)
    parser.add_argument("--transport", default="fair")
    parser.add_argument("--engine", default="lazy", choices=SHARED_ENGINES)
    parser.add_argument("--protocol", default="current")
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        help="attach a client workload of this population (0: no clients)",
    )
    parser.add_argument(
        "--cohorts",
        type=int,
        default=DEFAULT_COHORTS,
        help="cohort count for --clients",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="pin REPRO_PARALLEL_PARTITIONS for the parallel engine",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="time the cell once per engine and print a speedup table "
        "instead of profiling",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="run the cell with phase attribution (transport / protocol / "
        "crypto / client_wave buckets) instead of cProfile",
    )
    parser.add_argument("--top", type=int, default=30, help="functions to print")
    parser.add_argument(
        "--sort", default="cumulative", help="pstats sort key (cumulative, tottime, ...)"
    )
    parser.add_argument("--out", default=None, help="write raw pstats dump here")
    args = parser.parse_args(argv)

    if args.partitions is not None:
        from repro.simnet.partition import PARTITION_ENV

        os.environ[PARTITION_ENV] = str(args.partitions)

    if args.compare:
        compare_engines(
            authorities=args.authorities,
            transport=args.transport,
            protocol=args.protocol,
            clients=args.clients,
            cohorts=args.cohorts,
        )
        return 0

    if args.phases:
        phase_cell(
            authorities=args.authorities,
            transport=args.transport,
            engine=args.engine,
            protocol=args.protocol,
            clients=args.clients,
            cohorts=args.cohorts,
        )
        return 0

    profiler = profile_cell(
        authorities=args.authorities,
        transport=args.transport,
        engine=args.engine,
        protocol=args.protocol,
        clients=args.clients,
        cohorts=args.cohorts,
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    raise SystemExit(main())
