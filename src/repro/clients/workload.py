"""Client workloads: frozen descriptions of dir-client populations.

A :class:`ClientWorkload` describes the consensus-*distribution* side of a
run the way :class:`~repro.runtime.spec.RunSpec` describes the consensus-
*production* side: a frozen, hashable value object.  Attached to a spec
(field ``client_workload``, SPEC format v5) it joins the spec hash, so a run
with clients caches independently of its client-free twin — and a spec
without a workload hashes exactly as before.

The workload models one homogeneous population class: ``population`` clients
in ``cohort_count`` cohorts sharing a geography (one client↔server latency)
and an access-bandwidth class.  Heterogeneous populations are future work;
see ``DESIGN-clients.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.utils.validation import ensure

#: Arrival processes a cohort can run.  ``poisson`` draws per-wave batch
#: sizes from the cohort's seeded stream (each client polls at exponential
#: intervals with mean ``fetch_interval_s``, aggregated per wave tick);
#: ``deterministic`` makes every eligible client fetch at every wave tick
#: and selects servers by rotation — no randomness at all, which is what the
#: cohort-vs-individual conformance property pins exactly.
ARRIVAL_MODES = ("poisson", "deterministic")

#: Modelled wire size of a "consensus not yet available" (HTTP 404) reply,
#: per client.
NOT_READY_RESPONSE_BYTES = 256

#: Serialization format version written by :meth:`ClientWorkload.to_dict`.
WORKLOAD_FORMAT_VERSION = 1


def even_split(total: int, parts: int) -> Tuple[int, ...]:
    """Split ``total`` into ``parts`` near-equal integers, remainder up front.

    The one splitting convention of the client layer: cohort populations and
    per-wave batch splits must agree on it, or the cohort-vs-individual
    conformance mapping breaks.
    """
    ensure(parts >= 1, "parts must be at least 1")
    base, remainder = divmod(total, parts)
    return tuple(base + (1 if index < remainder else 0) for index in range(parts))


@dataclass(frozen=True)
class ClientWorkload:
    """A cohort-aggregated dir-client population fetching the consensus.

    Attributes
    ----------
    population:
        Total number of modelled clients across all cohorts.
    cohort_count:
        Number of :class:`~repro.clients.cohort.ClientCohortNode` endpoints
        the population is folded into.  Each cohort is one simulator node of
        ~``population / cohort_count`` clients; ``cohort_count == population``
        degenerates to individually simulated clients (the conformance
        reference).
    arrival:
        ``"poisson"`` or ``"deterministic"`` (see :data:`ARRIVAL_MODES`).
    fetch_interval_s:
        Mean interval between a stale client's fetch attempts (the Poisson
        rate is ``1 / fetch_interval_s`` per client).
    wave_interval_s:
        Aggregation tick: cohorts batch their clients' arrivals at this
        granularity, which is what keeps a 10M-client run at thousands of
        events instead of tens of millions.
    retry_backoff_s:
        How long a client whose attempt failed waits before it becomes
        eligible to retry.
    connection_timeout_s:
        Directory connection timeout for one fetch attempt (request plus
        response); expiry produces the client-side "giving up downloading
        networkstatus" behaviour.
    servers_per_wave:
        How many directory servers one wave's batch is split across.  1 keeps
        the deterministic conformance mapping exact; larger values spread
        load for big populations.
    mirror_count:
        Number of directory-mirror nodes.  0 means clients fetch straight
        from the authorities; otherwise mirrors fetch from the authorities
        and the cohorts fetch from the mirrors (how Tor actually distributes
        the consensus to millions of clients).
    mirror_bandwidth_mbps / mirror_poll_interval_s:
        Mirror link capacity and how often a mirror without a consensus
        re-polls the authorities.
    client_downlink_mbps / client_uplink_mbps:
        Per-client access capacities; the cohort's aggregate endpoint link
        carries these as per-client (unshared) rates.
    client_latency_s:
        Propagation latency between every cohort and every directory server
        (one geography class per workload).
    request_bytes:
        Wire size of one client's consensus request.
    """

    population: int
    cohort_count: int = 32
    arrival: str = "poisson"
    fetch_interval_s: float = 300.0
    wave_interval_s: float = 10.0
    retry_backoff_s: float = 60.0
    connection_timeout_s: float = 18.0
    servers_per_wave: int = 1
    mirror_count: int = 0
    mirror_bandwidth_mbps: float = 250.0
    mirror_poll_interval_s: float = 10.0
    client_downlink_mbps: float = 50.0
    client_uplink_mbps: float = 10.0
    client_latency_s: float = 0.05
    request_bytes: int = 512

    def __post_init__(self) -> None:
        ensure(self.population >= 1, "client population must be at least 1")
        ensure(self.cohort_count >= 1, "cohort_count must be at least 1")
        ensure(
            self.cohort_count <= self.population,
            "cohort_count %d exceeds population %d (cohorts cannot be empty)"
            % (self.cohort_count, self.population),
        )
        ensure(
            self.arrival in ARRIVAL_MODES,
            "unknown arrival mode %r; expected one of %r" % (self.arrival, ARRIVAL_MODES),
        )
        ensure(self.fetch_interval_s > 0, "fetch_interval_s must be positive")
        ensure(self.wave_interval_s > 0, "wave_interval_s must be positive")
        ensure(self.retry_backoff_s >= 0, "retry_backoff_s must be non-negative")
        ensure(self.connection_timeout_s > 0, "connection_timeout_s must be positive")
        ensure(self.servers_per_wave >= 1, "servers_per_wave must be at least 1")
        ensure(self.mirror_count >= 0, "mirror_count must be non-negative")
        ensure(self.mirror_bandwidth_mbps > 0, "mirror_bandwidth_mbps must be positive")
        ensure(self.mirror_poll_interval_s > 0, "mirror_poll_interval_s must be positive")
        ensure(self.client_downlink_mbps > 0, "client_downlink_mbps must be positive")
        ensure(self.client_uplink_mbps > 0, "client_uplink_mbps must be positive")
        ensure(self.client_latency_s >= 0, "client_latency_s must be non-negative")
        ensure(self.request_bytes >= 1, "request_bytes must be at least 1")

    # -- derived -----------------------------------------------------------
    def cohort_populations(self) -> Tuple[int, ...]:
        """Per-cohort client counts (population split as evenly as possible)."""
        return even_split(self.population, self.cohort_count)

    def individualized(self) -> "ClientWorkload":
        """The same workload with every client as its own singleton cohort.

        This is the conformance reference: under deterministic arrivals a
        K-cohort run must produce exactly the metrics of its individualized
        twin (see ``tests/clients/test_conformance.py``).
        """
        from dataclasses import replace

        return replace(self, cohort_count=self.population)

    # -- hashing and serialization ----------------------------------------
    def key(self) -> Tuple:
        """Canonical tuple of everything that defines this workload."""
        return (
            self.population,
            self.cohort_count,
            self.arrival,
            float(self.fetch_interval_s),
            float(self.wave_interval_s),
            float(self.retry_backoff_s),
            float(self.connection_timeout_s),
            self.servers_per_wave,
            self.mirror_count,
            float(self.mirror_bandwidth_mbps),
            float(self.mirror_poll_interval_s),
            float(self.client_downlink_mbps),
            float(self.client_uplink_mbps),
            float(self.client_latency_s),
            self.request_bytes,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "format": WORKLOAD_FORMAT_VERSION,
            "population": self.population,
            "cohort_count": self.cohort_count,
            "arrival": self.arrival,
            "fetch_interval_s": self.fetch_interval_s,
            "wave_interval_s": self.wave_interval_s,
            "retry_backoff_s": self.retry_backoff_s,
            "connection_timeout_s": self.connection_timeout_s,
            "servers_per_wave": self.servers_per_wave,
            "mirror_count": self.mirror_count,
            "mirror_bandwidth_mbps": self.mirror_bandwidth_mbps,
            "mirror_poll_interval_s": self.mirror_poll_interval_s,
            "client_downlink_mbps": self.client_downlink_mbps,
            "client_uplink_mbps": self.client_uplink_mbps,
            "client_latency_s": self.client_latency_s,
            "request_bytes": self.request_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClientWorkload":
        """Rebuild a workload from :meth:`to_dict` output."""
        return cls(
            population=int(data["population"]),
            cohort_count=int(data["cohort_count"]),
            arrival=data.get("arrival", "poisson"),
            fetch_interval_s=float(data.get("fetch_interval_s", 300.0)),
            wave_interval_s=float(data.get("wave_interval_s", 10.0)),
            retry_backoff_s=float(data.get("retry_backoff_s", 60.0)),
            connection_timeout_s=float(data.get("connection_timeout_s", 18.0)),
            servers_per_wave=int(data.get("servers_per_wave", 1)),
            mirror_count=int(data.get("mirror_count", 0)),
            mirror_bandwidth_mbps=float(data.get("mirror_bandwidth_mbps", 250.0)),
            mirror_poll_interval_s=float(data.get("mirror_poll_interval_s", 10.0)),
            client_downlink_mbps=float(data.get("client_downlink_mbps", 50.0)),
            client_uplink_mbps=float(data.get("client_uplink_mbps", 10.0)),
            client_latency_s=float(data.get("client_latency_s", 0.05)),
            request_bytes=int(data.get("request_bytes", 512)),
        )
