"""Directory mirrors: relay-side caches between authorities and clients.

Tor's millions of clients do not fetch the consensus from the nine
authorities — they fetch from thousands of directory caches, which
themselves fetch from the authorities.  A :class:`DirectoryMirrorNode`
models one such cache: it polls the authorities (round-robin, weight-1
fetches through the same ``CLIENT/*`` plane the cohorts use) until it
obtains the signed consensus, then serves cohort fetches itself.  Before it
has the document it answers ``CLIENT/NOT_READY`` like an authority would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.clients.cohort import (
    CONSENSUS_MSG,
    FETCH_MSG,
    ConsensusFetchRequest,
    ConsensusFetchResponse,
)
from repro.clients.workload import ClientWorkload
from repro.simnet.message import Message
from repro.simnet.node import ProtocolNode
from repro.utils.validation import ensure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clients.distribution import ConsensusDistribution


class DirectoryMirrorNode(ProtocolNode):
    """One directory cache: fetches from authorities, serves cohorts."""

    def __init__(
        self,
        name: str,
        authorities: Sequence[str],
        workload: ClientWorkload,
        service: "ConsensusDistribution",
        poll_offset: int = 0,
    ) -> None:
        super().__init__(name=name)
        ensure(len(authorities) >= 1, "mirror needs at least one authority")
        self.workload = workload
        self.authorities = list(authorities)
        self.service = service
        self._consensus = None
        self._poll_index = poll_offset

    # -- directory-server interface ----------------------------------------
    def serveable_consensus(self) -> Optional[object]:
        """The signed consensus this mirror can serve, if it has one."""
        return self._consensus

    # -- lifecycle ---------------------------------------------------------
    def on_start(self) -> None:
        self._poll()

    def _poll(self) -> None:
        if self._consensus is not None:
            return
        timeout = self.workload.connection_timeout_s
        target = self.authorities[self._poll_index % len(self.authorities)]
        self._poll_index += 1
        self.send(
            target,
            Message(
                msg_type=FETCH_MSG,
                payload=ConsensusFetchRequest(
                    requester=self.name,
                    attempt_id=self._require_network().simulator.next_serial(),
                    weight=1,
                    deadline=self.now + timeout,
                ),
                size_bytes=self.workload.request_bytes,
            ),
            timeout=timeout,
        )
        self.set_timer(self.workload.mirror_poll_interval_s, self._poll)

    # -- message handling ---------------------------------------------------
    def on_message(self, message: Message, now: float) -> None:
        if message.msg_type == FETCH_MSG:
            self.service.handle_fetch(self, message, now)
            return
        if message.msg_type == CONSENSUS_MSG and self._consensus is None:
            response = message.payload
            if isinstance(response, ConsensusFetchResponse) and response.document is not None:
                self._consensus = response.document
                self.service.note_mirror_serving(self, now)
                self.log("notice", "Obtained the signed consensus; now serving clients.")
        # NOT_READY replies need no handling: the poll timer retries.
