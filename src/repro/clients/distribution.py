"""Wiring the consensus-distribution layer into a protocol run.

:class:`ConsensusDistribution` is built by the protocol runner when a
:class:`~repro.runtime.spec.RunSpec` carries a
:class:`~repro.clients.workload.ClientWorkload`.  It owns everything on the
client side of the run:

* it adds the cohort nodes (aggregate endpoints with per-client link
  capacity) and optional mirror nodes to the network, with the workload's
  client↔server latency;
* it subscribes to every authority's consensus-published hook (the seam
  :meth:`repro.protocols.base.DirectoryAuthorityNode.record_success` fires),
  so the run no longer *terminates* at signing — signing is where
  distribution starts;
* it implements the directory-server side of the ``CLIENT/*`` message plane
  (:meth:`handle_fetch`), shared by authorities and mirrors: serve the
  signed consensus as a weighted flow bounded by the requester's deadline,
  or answer "not ready";
* it aggregates the per-cohort counting distributions and the shared
  :class:`~repro.clients.metrics.ClientMetrics` into the ``clients`` block
  of the run summary.

Client fetches travel the existing transport, timeout, and fault seams:
an attacked authority's starved uplink slows (and times out) consensus
responses exactly as it does vote transfers, which is what produces the
user-facing recovery curves of ``experiments/figure13_clients.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.clients.cohort import (
    CONSENSUS_MSG,
    NOT_READY_MSG,
    ClientCohortNode,
    ConsensusFetchRequest,
    ConsensusFetchResponse,
)
from repro.clients.metrics import ClientMetrics
from repro.clients.mirror import DirectoryMirrorNode
from repro.clients.waves import CohortWaveScheduler, resolve_wave_driver
from repro.clients.workload import NOT_READY_RESPONSE_BYTES, ClientWorkload
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.utils.rng import DeterministicRNG, derive_seed


def cohort_node_name(index: int) -> str:
    """Simulator node name of cohort ``index`` (the one naming rule)."""
    return "cohort-%d" % index


def mirror_node_name(index: int) -> str:
    """Simulator node name of mirror ``index`` (the one naming rule)."""
    return "mirror-%d" % index


class ConsensusDistribution:
    """Client cohorts, mirrors, and the directory-server message plane."""

    def __init__(
        self,
        workload: ClientWorkload,
        network: SimNetwork,
        authority_nodes: Sequence[Any],
        seed: int,
    ) -> None:
        self.workload = workload
        self.network = network
        self.metrics = ClientMetrics()
        self.first_publish_time: Optional[float] = None
        self._mirrors_serving = 0

        authority_names = [node.name for node in authority_nodes]
        self.mirrors: List[DirectoryMirrorNode] = []
        for index in range(workload.mirror_count):
            mirror = DirectoryMirrorNode(
                mirror_node_name(index),
                authority_names,
                workload,
                service=self,
                # Stagger the round-robin so mirrors do not all hit the same
                # authority on the same poll tick.
                poll_offset=index,
            )
            network.add_node(
                mirror, LinkConfig.symmetric_mbps(workload.mirror_bandwidth_mbps)
            )
            self.mirrors.append(mirror)

        # Clients fetch from the mirror tier when it exists (as on the live
        # network), from the authorities directly otherwise.
        servers = [mirror.name for mirror in self.mirrors] or list(authority_names)

        # One wave driver for the whole cohort set: a tick is one simulator
        # event doing batched draw arithmetic, not one event per cohort.
        # REPRO_CLIENT_WAVES=per-cohort restores individual timers (the
        # conformance anchor — tests assert the two drivers agree exactly).
        self.wave_scheduler: Optional[CohortWaveScheduler] = (
            CohortWaveScheduler(network) if resolve_wave_driver() == "batched" else None
        )
        self.cohorts: List[ClientCohortNode] = []
        for index, population in enumerate(workload.cohort_populations()):
            rng = DeterministicRNG(derive_seed(seed, "client-cohort", index))
            cohort = ClientCohortNode(
                cohort_node_name(index),
                population,
                workload,
                servers,
                rng,
                self.metrics,
            )
            cohort.wave_scheduler = self.wave_scheduler
            network.add_node(
                cohort,
                LinkConfig.per_client(
                    uplink_mbps=workload.client_uplink_mbps,
                    downlink_mbps=workload.client_downlink_mbps,
                ),
            )
            for server in servers:
                network.set_latency(cohort.name, server, workload.client_latency_s)
            self.cohorts.append(cohort)

        for node in authority_nodes:
            node.attach_client_service(self)
            node.add_consensus_listener(self._on_consensus_published)

    # -- publish hook -------------------------------------------------------
    def _on_consensus_published(self, node: Any, consensus: Any, time: float) -> None:
        """An authority obtained a fully signed consensus at ``time``."""
        if self.first_publish_time is None or time < self.first_publish_time:
            self.first_publish_time = time

    def note_mirror_serving(self, mirror: DirectoryMirrorNode, time: float) -> None:
        """A mirror obtained the consensus and started serving clients."""
        self._mirrors_serving += 1

    # -- directory-server side of the CLIENT/* plane -------------------------
    def handle_fetch(self, server: Any, message: Message, now: float) -> None:
        """Answer one ``CLIENT/FETCH`` on behalf of ``server``.

        ``server`` is any node with a ``serveable_consensus()`` — an
        authority (which serves once its run succeeded) or a mirror.  The
        response is a weighted flow of ``weight × document size`` bytes
        bounded by the requester's deadline; a deadline already passed (the
        request itself crawled in through a starved link) sends nothing —
        the requester's attempt timer has already fired.
        """
        request = message.payload
        if not isinstance(request, ConsensusFetchRequest):
            return
        remaining = request.deadline - now
        if remaining <= 0:
            return
        document = server.serveable_consensus()
        if document is None:
            response = Message(
                msg_type=NOT_READY_MSG,
                payload=ConsensusFetchResponse(attempt_id=request.attempt_id),
                size_bytes=NOT_READY_RESPONSE_BYTES * request.weight,
            )
        else:
            response = Message(
                msg_type=CONSENSUS_MSG,
                payload=ConsensusFetchResponse(
                    attempt_id=request.attempt_id, document=document
                ),
                size_bytes=document.size_bytes * request.weight,
            )
        server.send(
            message.sender,
            response,
            timeout=remaining,
            weight=request.weight,
        )

    # -- reporting ----------------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        """Population-wide counting distribution over client states."""
        totals = {"stale": 0, "fetching": 0, "failed": 0, "fresh": 0}
        for cohort in self.cohorts:
            for state, count in cohort.state_counts().items():
                totals[state] += count
        return totals

    def summary(self, end_time: float) -> Dict[str, Any]:
        """The ``clients`` block of the run summary."""
        return self.metrics.summary(
            population=self.workload.population,
            end_time=end_time,
            state_counts=self.state_counts(),
            first_publish_time=self.first_publish_time,
            cohort_count=len(self.cohorts),
            mirrors_serving=self._mirrors_serving,
            mirror_count=len(self.mirrors),
        )
