"""Client-side metrics: counting distributions over interchangeable clients.

Clients inside a cohort are interchangeable, so nothing is tracked per
client.  Fetch accounting is a handful of weighted counters and the
time-to-fresh distribution is a list of ``(time, weight)`` samples — one
entry per completed *batch*, not per client — which keeps metric state
O(number of fetch waves) no matter how many million clients a run models.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.utils.validation import ensure

#: Format version of the ``clients`` block in run summaries.
CLIENT_SUMMARY_VERSION = 1


def weighted_percentile(samples: List[Tuple[float, int]], quantile: float) -> Optional[float]:
    """Nearest-rank percentile of a weighted sample set.

    ``samples`` are ``(value, weight)`` pairs; the result is the smallest
    value whose cumulative weight reaches ``quantile`` of the total — always
    one of the submitted values (the same convention as the directory
    algorithm's low median).  Returns None for an empty sample set.
    """
    ensure(0.0 <= quantile <= 1.0, "quantile must be within [0, 1]")
    total = sum(weight for _value, weight in samples)
    if total <= 0:
        return None
    threshold = quantile * total
    cumulative = 0
    result = None
    for value, weight in sorted(samples):
        result = value
        cumulative += weight
        if cumulative >= threshold:
            break
    return result


class ClientMetrics:
    """Weighted fetch accounting shared by every cohort of one run."""

    def __init__(self) -> None:
        self.fetch_attempts = 0
        self.fetch_successes = 0
        self.fetch_timeouts = 0
        self.fetch_not_ready = 0
        #: (virtual time a batch obtained a fresh consensus, batch weight).
        self.fresh_samples: List[Tuple[float, int]] = []

    # -- recording ---------------------------------------------------------
    def record_attempts(self, weight: int) -> None:
        """Account ``weight`` clients starting a fetch attempt."""
        self.fetch_attempts += weight

    def record_success(self, weight: int, time: float) -> None:
        """Account ``weight`` clients obtaining a fresh consensus at ``time``."""
        self.fetch_successes += weight
        self.fresh_samples.append((time, weight))

    def record_timeout(self, weight: int) -> None:
        """Account ``weight`` clients whose attempt hit the connection timeout."""
        self.fetch_timeouts += weight

    def record_not_ready(self, weight: int) -> None:
        """Account ``weight`` clients served a "no consensus yet" response."""
        self.fetch_not_ready += weight

    # -- derived -----------------------------------------------------------
    @property
    def fresh_clients(self) -> int:
        """Clients holding a fresh consensus."""
        return sum(weight for _time, weight in self.fresh_samples)

    def success_rate(self) -> Optional[float]:
        """Completed attempts over started attempts (None before any attempt)."""
        if self.fetch_attempts <= 0:
            return None
        return self.fetch_successes / self.fetch_attempts

    def time_to_fresh(self, quantile: float) -> Optional[float]:
        """Weighted percentile of per-client time to a fresh consensus."""
        return weighted_percentile(self.fresh_samples, quantile)

    def mean_staleness_s(self, population: int, end_time: float) -> float:
        """Mean seconds per client spent without a fresh consensus.

        Clients that obtained the consensus at ``t`` were stale for ``t``
        seconds (virtual time starts at 0 with every client stale); clients
        still without one at the end of the run were stale for the whole
        ``end_time``.
        """
        ensure(population >= 1, "population must be positive")
        stale_seconds = sum(time * weight for time, weight in self.fresh_samples)
        stale_seconds += (population - self.fresh_clients) * end_time
        return stale_seconds / population

    # -- summary -----------------------------------------------------------
    def summary(
        self,
        population: int,
        end_time: float,
        state_counts: Dict[str, int],
        first_publish_time: Optional[float],
        cohort_count: int,
        mirrors_serving: int,
        mirror_count: int,
    ) -> Dict[str, Any]:
        """The JSON-serializable ``clients`` block of a run summary."""
        return {
            "version": CLIENT_SUMMARY_VERSION,
            "population": population,
            "cohorts": cohort_count,
            "states": dict(state_counts),
            "fetch_attempts": self.fetch_attempts,
            "fetch_successes": self.fetch_successes,
            "fetch_timeouts": self.fetch_timeouts,
            "fetch_not_ready": self.fetch_not_ready,
            "fetch_success_rate": self.success_rate(),
            "fresh_fraction": self.fresh_clients / population,
            "time_to_fresh_p50_s": self.time_to_fresh(0.50),
            "time_to_fresh_p99_s": self.time_to_fresh(0.99),
            "mean_staleness_s": self.mean_staleness_s(population, end_time),
            "first_publish_time_s": first_publish_time,
            "mirrors_serving": mirrors_serving,
            "mirror_count": mirror_count,
        }
