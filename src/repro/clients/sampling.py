"""Count-based batch sampling for cohort wave draws.

The cohort model's per-wave question is "how many of the ``eligible``
clients start a fetch this tick" — a Binomial(eligible, p) count.  The
original implementation answered it with ``eligible`` Bernoulli stream
pulls, an O(population) Python loop that defeated the whole point of
counting distributions.  This module answers it count-based:

* :func:`binomial_from_uniform` — an exact Binomial sample from **one**
  uniform pull, by inverse-transform along the CDF.  The walk visits
  ``k+1`` terms for a sample of ``k``, so its expected cost is
  ``eligible·p`` (the mean batch), not ``eligible``.
* :func:`batch_gaussian_binomial` — the Gaussian approximation for large
  cohorts, evaluated for *all* cohorts of a wave tick at once as numpy
  array arithmetic (one z-score per cohort stays a per-stream pull; the
  float expressions around it are the batched part).

Stream semantics, documented as required: the exact path now consumes one
``random()`` pull per wave instead of ``eligible`` pulls, so seeded poisson
runs draw *different* (equally valid) trajectories than pre-vectorization
builds — the client golden was regenerated.  The Gaussian path consumes
exactly the same single ``gauss()`` pull as before and reproduces the
scalar expression bit-for-bit (same association order, IEEE-exact ``sqrt``,
round-half-even).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

try:  # pragma: no cover - absence exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - absence exercised by the no-numpy CI leg
    _np = None


def binomial_from_uniform(count: int, probability: float, u: float) -> int:
    """Exact Binomial(``count``, ``probability``) sample from one uniform.

    Inverse-transform sampling: walk the CDF from ``k = 0`` upward until it
    exceeds ``u``, updating the pmf term by the Binomial recurrence
    ``pmf(k+1) = pmf(k) · (count-k)/(k+1) · p/q``.  Exact for the moderate
    ``count`` the cohort model uses it for (the exact-draw limit, 64); for
    large counts and tiny ``q`` the leading term ``q**count`` underflows,
    which is why bigger cohorts switch to the Gaussian approximation.
    """
    if count <= 0 or probability <= 0.0:
        return 0
    if probability >= 1.0:
        return count
    q = 1.0 - probability
    pmf = q ** count
    cdf = pmf
    k = 0
    while u >= cdf and k < count:
        pmf *= (count - k) / (k + 1.0) * (probability / q)
        k += 1
        cdf += pmf
    return k


def gaussian_binomial(eligible: int, probability: float, z: float) -> int:
    """The scalar Gaussian-approximation draw (one cohort, one z-score).

    Kept as the single definition both the per-cohort fallback and the
    batched path reproduce: ``min(n, max(0, round(n·p + sqrt(n·p·(1-p))·z)))``.
    """
    mean = eligible * probability
    sigma = math.sqrt(eligible * probability * (1.0 - probability))
    return min(eligible, max(0, round(mean + sigma * z)))


def batch_gaussian_binomial(
    eligible: Sequence[int], probability: Sequence[float], z: Sequence[float]
) -> Optional[Sequence[int]]:
    """Vectorized :func:`gaussian_binomial` over parallel per-cohort inputs.

    Returns None when numpy is unavailable (callers fall back to the scalar
    loop).  Matches the scalar expression exactly: the products associate
    identically, ``sqrt`` is IEEE-exactly rounded in both, and ``np.rint``
    rounds half to even like Python's ``round``.
    """
    if _np is None:
        return None
    n = _np.asarray(eligible, dtype=_np.float64)
    p = _np.asarray(probability, dtype=_np.float64)
    zs = _np.asarray(z, dtype=_np.float64)
    mean = n * p
    sigma = _np.sqrt(n * p * (1.0 - p))
    raw = _np.rint(mean + sigma * zs)
    return _np.minimum(n, _np.maximum(0.0, raw)).astype(_np.int64)
