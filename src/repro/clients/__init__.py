"""Consensus distribution: cohort-aggregated dir-client populations.

The paper's headline claim is user-facing — a cheap DDoS on the directory
authorities leaves Tor *clients* bootstrapping from stale or missing
consensuses — so the reproduction cannot stop at authority signing.  This
package models the client side at production scale:

* :class:`~repro.clients.workload.ClientWorkload` — a frozen description of
  a dir-client population (size, cohorts, fetch behaviour, mirror tier),
  attached to :class:`~repro.runtime.spec.RunSpec` like bandwidth overrides
  and fault plans;
* :class:`~repro.clients.cohort.ClientCohortNode` — one aggregate simnet
  endpoint standing in for N identical clients, with per-client state folded
  into counting distributions and fetch traffic issued as weighted flows;
* :class:`~repro.clients.mirror.DirectoryMirrorNode` — the relay-cache tier
  between authorities and clients;
* :class:`~repro.clients.distribution.ConsensusDistribution` — the wiring:
  nodes, latencies, the authorities' consensus-published hook, the
  ``CLIENT/*`` serving plane, and the ``clients`` summary block;
* :class:`~repro.clients.metrics.ClientMetrics` — weighted fetch accounting
  (success rate, p50/p99 time-to-fresh, staleness-seconds).

Correctness is pinned by a conformance property: a K-cohort run equals the
same population simulated as individual clients — exactly under
deterministic arrivals, tolerance-bounded where Poisson sampling differs
(``tests/clients/test_conformance.py``), and by a golden client-run trace
under ``tests/data/``.  See ``DESIGN-clients.md`` for the aggregation model.
"""

from repro.clients.cohort import (
    CONSENSUS_MSG,
    FETCH_MSG,
    NOT_READY_MSG,
    ClientCohortNode,
    ConsensusFetchRequest,
    ConsensusFetchResponse,
)
from repro.clients.distribution import ConsensusDistribution
from repro.clients.metrics import ClientMetrics, weighted_percentile
from repro.clients.mirror import DirectoryMirrorNode
from repro.clients.workload import ARRIVAL_MODES, ClientWorkload

__all__ = [
    "ARRIVAL_MODES",
    "CONSENSUS_MSG",
    "FETCH_MSG",
    "NOT_READY_MSG",
    "ClientCohortNode",
    "ClientMetrics",
    "ClientWorkload",
    "ConsensusDistribution",
    "ConsensusFetchRequest",
    "ConsensusFetchResponse",
    "DirectoryMirrorNode",
    "weighted_percentile",
]
