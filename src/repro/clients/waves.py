"""Batched cohort wave scheduling: one timer per tick instant, not per cohort.

Under per-cohort timers a 1000-cohort workload costs 1000 simulator events
per wave interval, each doing a few floats of draw arithmetic — exactly the
per-item interpreter overhead the vectorized core removes elsewhere.  The
:class:`CohortWaveScheduler` enrolls cohorts into time buckets keyed by
their next tick instant and services a whole bucket with **one** event:
batch-classify the cohorts, draw every Gaussian-path batch size in one
vectorized expression (:func:`repro.clients.sampling.batch_gaussian_binomial`),
then run each cohort's sends in registration order.

Equivalence with per-cohort timers is *exact*, not statistical:

* every cohort draws from its own seeded stream with the same pulls in the
  same per-cohort order (no pull when nothing is eligible, one uniform on
  the exact path, one z-score on the Gaussian path);
* buckets fire at the same instants the individual timers would have, and
  cohorts within a bucket run in registration order — which is the order
  their timers would have fired (timers are scheduled in registration
  order, and same-instant events fire in schedule order);
* crash-fault semantics match ``SimNetwork.schedule_node_timer``: a cohort
  whose owner is crashed at its tick instant is dropped from the wave *and
  never re-enrolled* — a suppressed wave timer never fires again, so the
  cohort is dead for the rest of the run, exactly as before.

The ``REPRO_CLIENT_WAVES=per-cohort`` environment knob disables the driver
(cohorts fall back to owning their timers), serving as the conformance
anchor: ``tests/clients/test_waves.py`` asserts summary equality between
the two drivers, so the batched path needs no golden of its own.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.clients.sampling import (
    batch_gaussian_binomial,
    binomial_from_uniform,
    gaussian_binomial,
)
from repro.utils import phases

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clients.cohort import ClientCohortNode
    from repro.simnet.network import SimNetwork

#: Environment variable selecting the wave driver ("batched" default, or
#: "per-cohort" to give every cohort its own timer — the conformance anchor).
CLIENT_WAVES_ENV = "REPRO_CLIENT_WAVES"

#: The wave drivers :func:`resolve_wave_driver` knows about.
WAVE_DRIVERS = ("batched", "per-cohort")

#: Below this many cohorts in a bucket the scalar draw loop beats the numpy
#: round trip; the cutover only changes speed, never values.
_BATCH_DRAW_MIN_COHORTS = 16


def resolve_wave_driver() -> str:
    """The wave driver selected by the environment (default: batched)."""
    driver = os.environ.get(CLIENT_WAVES_ENV, "batched")
    if driver not in WAVE_DRIVERS:
        raise ValueError(
            "unknown client wave driver %r; expected one of %r" % (driver, WAVE_DRIVERS)
        )
    return driver


class CohortWaveScheduler:
    """Time-bucketed wave ticks shared by every cohort of a distribution."""

    def __init__(self, network: "SimNetwork") -> None:
        self._network = network
        self._simulator = network.simulator
        #: Tick instant -> cohorts due then, in enrollment order.  Distinct
        #: boot times (crash-deferred cohorts) simply produce distinct
        #: buckets; fully-aligned workloads produce exactly one.
        self._buckets: Dict[float, List["ClientCohortNode"]] = {}

    def enroll(self, cohort: "ClientCohortNode", when: float) -> None:
        """Schedule ``cohort``'s next wave at absolute instant ``when``."""
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = []
            self._simulator.schedule(when, self._on_tick, when)
        bucket.append(cohort)

    # -- tick servicing ----------------------------------------------------
    def _on_tick(self, when: float) -> None:
        if phases.ENABLED:
            phases.enter(phases.CLIENT_WAVE)
            try:
                self._service_tick(when)
            finally:
                phases.leave()
            return
        self._service_tick(when)

    def _service_tick(self, when: float) -> None:
        cohorts = self._buckets.pop(when)
        injector = self._network.fault_injector
        if injector is not None:
            # A crashed owner runs nothing: dropped cohorts are never
            # re-enrolled, matching a suppressed per-cohort wave timer.
            cohorts = [
                cohort
                for cohort in cohorts
                if not injector.timer_suppressed(cohort.name, when)
            ]
        if not cohorts:
            return
        for cohort, batch in zip(cohorts, self._draw_batches(cohorts)):
            cohort._run_wave(batch)
            if cohort.fresh_clients < cohort.population:
                self.enroll(cohort, when + cohort.workload.wave_interval_s)

    def _draw_batches(self, cohorts: List["ClientCohortNode"]) -> List[int]:
        """Per-cohort batch sizes for this tick, batching the float math.

        Classification (deterministic / exact-Binomial / Gaussian) is a pure
        function of each cohort's own eligible count, so it is identical to
        what the cohorts' scalar ``_draw_batch`` would pick — as are the
        stream pulls.  Only the Gaussian-path arithmetic is deferred and
        evaluated for all such cohorts in one vectorized expression.
        """
        batches = [0] * len(cohorts)
        gaussian: List[Tuple[int, int, float, float]] = []  # (pos, n, p, z)
        p_by_workload: Dict[int, float] = {}
        for position, cohort in enumerate(cohorts):
            eligible = cohort.eligible_clients
            if eligible <= 0:
                continue
            workload = cohort.workload
            if workload.arrival == "deterministic":
                batches[position] = eligible
                continue
            probability = p_by_workload.get(id(workload))
            if probability is None:
                # math.exp, never np.exp: vectorized exp implementations are
                # not guaranteed bit-identical to libm, and driver parity is
                # exact, not approximate.  One workload -> one exp per tick.
                probability = 1.0 - math.exp(
                    -workload.wave_interval_s / workload.fetch_interval_s
                )
                p_by_workload[id(workload)] = probability
            if eligible <= cohort.exact_binomial_limit:
                batches[position] = binomial_from_uniform(
                    eligible, probability, cohort.rng.random()
                )
                continue
            gaussian.append(
                (position, eligible, probability, cohort.rng.gauss(0.0, 1.0))
            )
        if gaussian:
            if len(gaussian) >= _BATCH_DRAW_MIN_COHORTS:
                drawn = batch_gaussian_binomial(
                    [entry[1] for entry in gaussian],
                    [entry[2] for entry in gaussian],
                    [entry[3] for entry in gaussian],
                )
            else:
                drawn = None
            if drawn is None:  # few cohorts, or numpy unavailable
                drawn = [
                    gaussian_binomial(eligible, probability, z)
                    for _pos, eligible, probability, z in gaussian
                ]
            for (position, _n, _p, _z), batch in zip(gaussian, drawn):
                batches[position] = int(batch)
        return batches
