"""Cohort-aggregated dir-clients: one simnet node standing in for N clients.

A :class:`ClientCohortNode` folds ``population`` identical clients (same
geography, same access-bandwidth class) into one aggregate endpoint.
Per-client state lives in counting distributions — how many clients are
*stale* (never fetched), *fetching* (attempt in flight), *failed* (last
attempt failed, waiting to retry) and *fresh* (hold the signed consensus) —
and fetch traffic is issued as *weighted flows*: a batch of ``w`` clients
fetching from the same server is one flow of weight ``w`` carrying
``w × document size`` bytes, which under weighted fair sharing is exactly
equivalent to ``w`` unit flows started at the same instant (see
:mod:`repro.simnet.linkmodel`).

Arrivals are aggregated at ``wave_interval_s`` granularity.  Every wave
tick the cohort decides how many eligible clients start a fetch:

* ``poisson`` — each client polls at exponential intervals with mean
  ``fetch_interval_s``; over one tick a client starts with probability
  ``p = 1 - exp(-tick / interval)``, so the batch is a Binomial(eligible, p)
  draw from the cohort's seeded stream: one inverse-transform sample from a
  single uniform pull for small cohorts, the Gaussian approximation from a
  single z-score beyond (see :mod:`repro.clients.sampling`).  Either way
  the draw costs one stream pull per wave, never one per client.
* ``deterministic`` — every eligible client fetches at every tick and the
  serving directory rotates with the wave index.  No randomness at all:
  a K-cohort run is *exactly* equal to the same population simulated as
  individual clients, which the conformance property pins.

One attempt is bounded by ``connection_timeout_s`` end to end (request and
response share the deadline).  A timeout or an explicit "not ready" reply
sends the batch to the failed pool; after ``retry_backoff_s`` it becomes
eligible again.  The cohort stops scheduling waves once every client is
fresh, so successful runs drain instead of ticking until ``max_time``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.clients.metrics import ClientMetrics
from repro.clients.sampling import binomial_from_uniform, gaussian_binomial
from repro.clients.workload import ClientWorkload, even_split
from repro.simnet.engine import EventHandle
from repro.simnet.message import Message
from repro.simnet.node import ProtocolNode
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import ensure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clients.waves import CohortWaveScheduler

#: A cohort (or mirror) asking a directory server for the signed consensus.
FETCH_MSG = "CLIENT/FETCH"
#: A directory server returning the signed consensus.
CONSENSUS_MSG = "CLIENT/CONSENSUS"
#: A directory server answering "no consensus available yet" (HTTP 404).
NOT_READY_MSG = "CLIENT/NOT_READY"

#: Cohorts above this size draw Binomial batches via the Gaussian
#: approximation; at or below it the draw is an exact Bernoulli sum.
_EXACT_BINOMIAL_LIMIT = 64


@dataclass(frozen=True)
class ConsensusFetchRequest:
    """Payload of a ``CLIENT/FETCH`` message.

    ``deadline`` is the absolute virtual time at which the requesting
    clients give up; the server bounds its response flow by it so a reply
    that cannot arrive in time is aborted like a closed connection.
    """

    requester: str
    attempt_id: int
    weight: int
    deadline: float


@dataclass(frozen=True)
class ConsensusFetchResponse:
    """Payload of a ``CLIENT/CONSENSUS`` or ``CLIENT/NOT_READY`` message."""

    attempt_id: int
    document: object = None


class ClientCohortNode(ProtocolNode):
    """``population`` dir-clients folded into one aggregate endpoint."""

    def __init__(
        self,
        name: str,
        population: int,
        workload: ClientWorkload,
        servers: Sequence[str],
        rng: DeterministicRNG,
        metrics: ClientMetrics,
    ) -> None:
        super().__init__(name=name)
        ensure(population >= 1, "cohort population must be at least 1")
        ensure(len(servers) >= 1, "cohort needs at least one directory server")
        self.population = population
        self.workload = workload
        self.servers = list(servers)
        self.rng = rng
        self.metrics = metrics
        # Counting distributions over interchangeable clients.
        self._stale = population  # never attempted
        self._retry_eligible = 0  # failed, backoff elapsed
        self._cooling = 0  # failed, waiting out the backoff
        self._fetching = 0  # attempt in flight
        self._fresh = 0  # hold the signed consensus
        self._wave_index = 0
        #: attempt id -> (weight, deadline timer handle)
        self._inflight: Dict[int, Tuple[int, EventHandle]] = {}
        # Poisson-mode cohorts desynchronize their server rotation with a
        # seeded offset so concurrent cohorts spread over the directory set;
        # deterministic mode keeps 0 so cohort splits never affect selection.
        self._rotation_offset = (
            rng.randint(0, len(self.servers) - 1) if workload.arrival == "poisson" else 0
        )
        #: Batched wave driver this cohort enrolls with, if one is attached
        #: before start; None means the cohort owns its own wave timer.
        self.wave_scheduler: Optional["CohortWaveScheduler"] = None

    # -- state reporting ---------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        """The cohort's counting distribution over client states."""
        return {
            "stale": self._stale,
            "fetching": self._fetching,
            "failed": self._cooling + self._retry_eligible,
            "fresh": self._fresh,
        }

    @property
    def fresh_clients(self) -> int:
        """Clients of this cohort holding the signed consensus."""
        return self._fresh

    @property
    def eligible_clients(self) -> int:
        """Clients that would start a fetch if drawn this wave."""
        return self._stale + self._retry_eligible

    @property
    def exact_binomial_limit(self) -> int:
        """Largest eligible count drawn exactly instead of approximated."""
        return _EXACT_BINOMIAL_LIMIT

    # -- lifecycle ---------------------------------------------------------
    def on_start(self) -> None:
        if self.wave_scheduler is not None:
            self.wave_scheduler.enroll(self, self.now + self.workload.wave_interval_s)
        else:
            self.set_timer(self.workload.wave_interval_s, self._on_wave)

    def _on_wave(self) -> None:
        self._run_wave(self._draw_batch(self.eligible_clients))
        if self._fresh < self.population:
            self.set_timer(self.workload.wave_interval_s, self._on_wave)

    # -- wave machinery ----------------------------------------------------
    def _run_wave(self, batch: int) -> None:
        """Advance the wave index and issue ``batch`` fetches, split across
        this wave's serving directories.  The draw happened upstream — in
        :meth:`_on_wave` (per-cohort timers) or batched across cohorts by a
        :class:`~repro.clients.waves.CohortWaveScheduler`."""
        self._wave_index += 1
        if batch > 0:
            for server, weight in self._split_batch(batch):
                self._start_fetch(server, weight)

    def _draw_batch(self, eligible: int) -> int:
        """How many of the ``eligible`` clients start a fetch this wave.

        One stream pull regardless of cohort size: an exact inverse-transform
        Binomial sample from a single uniform up to the exact limit, the
        Gaussian approximation from a single z-score beyond.
        """
        if eligible <= 0:
            return 0
        if self.workload.arrival == "deterministic":
            return eligible
        probability = 1.0 - math.exp(
            -self.workload.wave_interval_s / self.workload.fetch_interval_s
        )
        if eligible <= _EXACT_BINOMIAL_LIMIT:
            return binomial_from_uniform(eligible, probability, self.rng.random())
        return gaussian_binomial(eligible, probability, self.rng.gauss(0.0, 1.0))

    def _split_batch(self, batch: int) -> List[Tuple[str, int]]:
        """Split ``batch`` clients across this wave's serving directories.

        The wave's servers are a rotating window of ``servers_per_wave``
        entries; the batch is split into near-equal integer parts (earlier
        servers take the remainder).  Zero-weight parts are dropped.
        """
        count = min(self.workload.servers_per_wave, len(self.servers))
        start = (self._rotation_offset + (self._wave_index - 1) * count) % len(self.servers)
        parts: List[Tuple[str, int]] = []
        for position, weight in enumerate(even_split(batch, count)):
            if weight <= 0:
                continue
            parts.append((self.servers[(start + position) % len(self.servers)], weight))
        return parts

    # -- fetch attempts ----------------------------------------------------
    def _start_fetch(self, server: str, weight: int) -> None:
        taken_new = min(weight, self._stale)
        self._stale -= taken_new
        self._retry_eligible -= weight - taken_new
        self._fetching += weight
        self.metrics.record_attempts(weight)

        timeout = self.workload.connection_timeout_s
        attempt_id = self._require_network().simulator.next_serial()
        deadline_timer = self.set_timer(timeout, self._on_attempt_deadline, attempt_id)
        self._inflight[attempt_id] = (weight, deadline_timer)
        self.send(
            server,
            Message(
                msg_type=FETCH_MSG,
                payload=ConsensusFetchRequest(
                    requester=self.name,
                    attempt_id=attempt_id,
                    weight=weight,
                    deadline=self.now + timeout,
                ),
                size_bytes=self.workload.request_bytes * weight,
            ),
            timeout=timeout,
            on_timeout=self._on_request_timeout,
            weight=weight,
        )

    def on_message(self, message: Message, now: float) -> None:
        response = message.payload
        if not isinstance(response, ConsensusFetchResponse):
            return
        if message.msg_type == CONSENSUS_MSG:
            self._complete_attempt(response.attempt_id, now)
        elif message.msg_type == NOT_READY_MSG:
            self._fail_attempt(response.attempt_id, "not_ready")

    def _on_request_timeout(self, message: Message, destination: str) -> None:
        request = message.payload
        if isinstance(request, ConsensusFetchRequest):
            self._fail_attempt(request.attempt_id, "timeout")

    def _on_attempt_deadline(self, attempt_id: int) -> None:
        self._fail_attempt(attempt_id, "timeout")

    def _take_attempt(self, attempt_id: int) -> Optional[int]:
        entry = self._inflight.pop(attempt_id, None)
        if entry is None:
            # Already settled — e.g. a response landing (after propagation
            # latency) just past the deadline that failed the attempt.
            return None
        weight, deadline_timer = entry
        self.cancel_timer(deadline_timer)
        return weight

    def _complete_attempt(self, attempt_id: int, now: float) -> None:
        weight = self._take_attempt(attempt_id)
        if weight is None:
            return
        self._fetching -= weight
        self._fresh += weight
        self.metrics.record_success(weight, now)
        if self._fresh == self.population:
            self.log(
                "info",
                "All %d clients of this cohort hold a fresh consensus." % self.population,
            )

    def _fail_attempt(self, attempt_id: int, cause: str) -> None:
        weight = self._take_attempt(attempt_id)
        if weight is None:
            return
        self._fetching -= weight
        self._cooling += weight
        if cause == "timeout":
            self.metrics.record_timeout(weight)
        else:
            self.metrics.record_not_ready(weight)
        self.set_timer(self.workload.retry_backoff_s, self._end_backoff, weight)

    def _end_backoff(self, weight: int) -> None:
        self._cooling -= weight
        self._retry_eligible += weight
