"""Fault enforcement on the simulated network.

A :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into behaviour at the one seam every
protocol message and timer already crosses: :class:`~repro.simnet.network.SimNetwork`.
The network consults the injector at three deterministic points —

* **send initiation** (:meth:`FaultInjector.filter_send`): crash and
  partition suppression, withholding, seeded probabilistic loss, and
  equivocation rewriting;
* **delivery instant** (:meth:`FaultInjector.filter_delivery`): partitions
  and crashes re-checked, and probabilistic loss re-checked *conditionally*
  — a loss window that opened mid-flight exposes the message to the
  residual probability the send-instant draw did not cover — so a transfer
  in flight when a window opens is cut;
* **timer firing** (:meth:`FaultInjector.timer_suppressed`): a crashed
  authority's timers do not run (the process is down), which is what keeps a
  crashed lock-step authority from "acting" mid-outage.

All randomness (loss draws, jitter draws) derives from the run seed and the
plan's content hash, and is only consumed for messages that a declared
fault actually covers — so a run with an empty plan is bit-identical to a
run with no injector at all, and equal specs replay identically regardless
of worker count.  Each draw is *derived*, not streamed: it is a pure
function of the seed material plus a per-``(kind, sender, destination)``
sequence number, never of the global order in which the simulation happens
to reach the draw sites.  That makes fault randomness stable across
transport engines (the lazy shared scheduler reorders same-instant
completions relative to the legacy loop at float-rounding level), which the
old-vs-new conformance properties rely on; a shared stream would smear one
reordered delivery into every subsequent draw of the run.

The same property is what makes draws *partition-schedule-independent* for
the partition-parallel engine (``REPRO_SHARED_ENGINE=parallel``, see
``DESIGN-parallel.md``): a ``(kind, sender, destination)`` stream is
advanced only by that ordered pair's own traffic, and a pair's messages are
serialized by the event loop regardless of which partition its endpoints'
flows were sharded into — so changing ``REPRO_PARALLEL_PARTITIONS`` can
never shift a fault draw, and serial == parallel conformance holds under
random fault plans without any per-partition RNG surgery.

:meth:`FaultInjector.install` wires the injector into a network and uses
:meth:`~repro.simnet.engine.Simulator.schedule_window` to put fault-window
transitions on the event loop as Tor-style trace lines, so Figure-1 style
log extractions show the injected adversity.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

from repro.faults.byzantine import EquivocationRewriter
from repro.faults.plan import AuthorityFault, FaultPlan, LinkFault
from repro.simnet.message import Message
from repro.utils.validation import ensure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.network import SimNetwork

#: Drop causes tracked by :attr:`FaultInjector.drops_by_cause`.
DROP_CAUSES = ("crash", "partition", "loss", "withhold")


class FaultInjector:
    """Enforces a :class:`FaultPlan` over a :class:`SimNetwork`.

    Parameters
    ----------
    plan:
        The declarative plan to enforce.
    seed:
        The run seed; combined with the plan hash to seed the fault RNG.
    authority_names:
        ``authority_id -> simulator node name`` for every authority the plan
        references (unreferenced authorities may be omitted).
    rewriters:
        ``node name -> EquivocationRewriter`` for the plan's equivocators
        (see :func:`repro.faults.byzantine.build_rewriters`).
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        authority_names: Mapping[int, str],
        rewriters: Optional[Mapping[str, EquivocationRewriter]] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self._seed_material = "faults:%d:%s" % (seed, plan.plan_hash())
        self._draw_streams: Dict[Any, random.Random] = {}
        self._link_faults: Dict[str, LinkFault] = {}
        self._authority_faults: Dict[str, AuthorityFault] = {}
        for fault in plan.link_faults:
            ensure(
                fault.authority_id in authority_names,
                "no node name for faulted authority %d" % fault.authority_id,
            )
            self._link_faults[authority_names[fault.authority_id]] = fault
        for fault in plan.authority_faults:
            ensure(
                fault.authority_id in authority_names,
                "no node name for faulted authority %d" % fault.authority_id,
            )
            self._authority_faults[authority_names[fault.authority_id]] = fault
        self._rewriters: Dict[str, EquivocationRewriter] = dict(rewriters or {})
        self.messages_dropped = 0
        self.drops_by_cause: Dict[str, int] = {cause: 0 for cause in DROP_CAUSES}

    # -- state queries -----------------------------------------------------
    def is_down(self, node_name: str, now: float) -> bool:
        """True when ``node_name`` is inside one of its crash windows."""
        fault = self._authority_faults.get(node_name)
        return fault is not None and fault.down_at(now)

    def is_partitioned(self, node_name: str, now: float) -> bool:
        """True when ``node_name`` is inside one of its partition windows."""
        fault = self._link_faults.get(node_name)
        return fault is not None and fault.partitioned_at(now)

    def withholds(self, node_name: str) -> bool:
        """True when ``node_name`` is a vote-withholding Byzantine authority."""
        fault = self._authority_faults.get(node_name)
        return fault is not None and fault.byzantine == "withhold"

    # -- network hooks -----------------------------------------------------
    def filter_send(
        self, sender: str, destination: str, message: Message, now: float
    ) -> Optional[Message]:
        """The message the transport should carry, or None to drop it.

        Checked in severity order: crash, partition, withholding, then
        probabilistic loss; survivors of an equivocator are rewritten for
        their destination.
        """
        if self.is_down(sender, now) or self.is_down(destination, now):
            return self._drop("crash")
        if self.is_partitioned(sender, now) or self.is_partitioned(destination, now):
            return self._drop("partition")
        if self.withholds(sender):
            return self._drop("withhold")
        loss = self._loss_probability(sender, destination, now)
        if loss > 0.0 and self._derived_draw("loss", sender, destination) < loss:
            return self._drop("loss")
        rewriter = self._rewriters.get(sender)
        if rewriter is not None:
            message = rewriter.rewrite(destination, message)
        return message

    def filter_delivery(
        self,
        sender: str,
        destination: str,
        message: Message,
        now: float,
        sent_at: Optional[float] = None,
    ) -> bool:
        """False when the delivery must be cut at the delivery instant.

        ``sent_at`` is the instant the message entered the transport.  When
        given, probabilistic loss is re-checked for windows that opened
        mid-flight: the send-instant draw covered a loss exposure of
        ``p_sent``, so if the exposure at delivery is ``p_now > p_sent`` the
        message faces one extra draw against the conditional residual
        ``(p_now - p_sent) / (1 - p_sent)`` — which makes the *total* loss
        probability exactly ``p_now``, and consumes no draw at all when the
        exposure did not change (constant whole-run loss keeps its pre-fix
        trajectory bit-for-bit).  Without ``sent_at`` the check is skipped,
        matching the historical send-draw-only semantics.
        """
        if self.is_down(destination, now):
            self._drop("crash")
            return False
        if self.is_partitioned(sender, now) or self.is_partitioned(destination, now):
            self._drop("partition")
            return False
        if sent_at is not None:
            p_now = self._loss_probability(sender, destination, now)
            if p_now > 0.0:
                p_sent = self._loss_probability(sender, destination, sent_at)
                if p_now > p_sent:
                    residual = (p_now - p_sent) / (1.0 - p_sent)
                    if self._derived_draw("loss-delivery", sender, destination) < residual:
                        self._drop("loss")
                        return False
        return True

    def delivery_jitter(self, sender: str, destination: str, now: float) -> float:
        """Extra propagation latency for one delivery (0 on unjittered links).

        Jitter is a *windowed* degradation like probabilistic loss: a
        :class:`LinkFault` with ``loss_windows`` jitters deliveries only
        inside them (:meth:`LinkFault.jitter_at`); one without applies for
        the whole run.  Draws are only consumed while some covering fault is
        active, so runs outside every window are bit-identical to unjittered
        ones.
        """
        bound = 0.0
        for name in (sender, destination):
            fault = self._link_faults.get(name)
            if fault is not None:
                bound += fault.jitter_at(now)
        if bound <= 0.0:
            return 0.0
        return self._derived_draw("jitter", sender, destination) * bound

    def tcp_loss_event(
        self, sender: str, destination: str, now: float, segments: int = 1
    ) -> bool:
        """Whether a tcp ack round between the pair observes segment loss.

        The congestion-control seam for the ``tcp`` link model: crashes and
        partitions are certain loss (every in-flight segment dies), and a
        drop-typed fault with loss probability ``p`` loses at least one of
        ``segments`` independent segments with probability
        ``1 - (1 - p)^segments``.  Draws come from a dedicated
        ``"tcp-loss"`` per-pair stream (so transport ticks never perturb the
        message-level loss draws), are consumed only while a loss fault
        covers the pair, and do **not** count into ``drops_by_cause`` — a
        congestion signal is not a dropped message.
        """
        if self.is_down(sender, now) or self.is_down(destination, now):
            return True
        if self.is_partitioned(sender, now) or self.is_partitioned(destination, now):
            return True
        probability = self._loss_probability(sender, destination, now)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        window_loss = 1.0 - (1.0 - probability) ** max(1, segments)
        return self._derived_draw("tcp-loss", sender, destination) < window_loss

    def timer_suppressed(self, node_name: str, now: float) -> bool:
        """True when a timer of ``node_name`` fires while it is crashed."""
        return self.is_down(node_name, now)

    def boot_time(self, node_name: str, at: float) -> float:
        """When ``node_name`` may boot, given a requested start of ``at``.

        A node crashed at its boot instant starts late — at the end of the
        covering crash window (skipping through back-to-back windows) —
        instead of never; timers other than the boot are lost, not deferred.
        """
        fault = self._authority_faults.get(node_name)
        if fault is None:
            return at
        boot = at
        while fault.down_at(boot):
            boot = fault.down_until(boot)
        return boot

    # -- wiring ------------------------------------------------------------
    def install(self, network: "SimNetwork") -> None:
        """Attach to ``network`` and put fault-window transitions on its loop."""
        network.set_fault_injector(self)
        simulator = network.simulator
        trace = network.trace

        def transition(name: str, text: str) -> None:
            trace.record(simulator.now, name, "warn", text)

        for name, fault in sorted(self._authority_faults.items()):
            for start, end in fault.crash_windows:
                simulator.schedule_window(
                    start,
                    end,
                    lambda name=name: transition(name, "fault-injector: authority crashed."),
                    lambda name=name: transition(name, "fault-injector: authority restarted."),
                )
        for name, fault in sorted(self._link_faults.items()):
            for start, end in fault.partition_windows:
                simulator.schedule_window(
                    start,
                    end,
                    lambda name=name: transition(name, "fault-injector: partitioned from all peers."),
                    lambda name=name: transition(name, "fault-injector: partition healed."),
                )

    # -- accounting --------------------------------------------------------
    def fault_summary(self, end_time: float) -> Dict[str, Any]:
        """Fault accounting for :meth:`ProtocolRunResult.summary`."""
        return {
            "messages_dropped": self.messages_dropped,
            "drops_by_cause": dict(self.drops_by_cause),
            "partition_seconds": self.plan.partition_seconds(end_time),
            "authority_down_seconds": self.plan.down_seconds(end_time),
            "authorities_crashed": list(self.plan.crashing_authority_ids()),
            "authorities_equivocating": list(self.plan.byzantine_authority_ids("equivocate")),
            "authorities_withholding": list(self.plan.byzantine_authority_ids("withhold")),
        }

    # -- internals ---------------------------------------------------------
    def _derived_draw(self, kind: str, sender: str, destination: str) -> float:
        """The next uniform [0, 1) draw for one fault kind on one link pair.

        Deterministic given the spec: the value depends only on the seed
        material and how many ``kind`` draws this ordered pair has consumed
        (each key owns its own seeded stream, built once and drawn
        sequentially — the per-pair position *is* the derivation index), so
        unrelated traffic elsewhere in the run can never shift it.
        """
        key = (kind, sender, destination)
        stream = self._draw_streams.get(key)
        if stream is None:
            stream = random.Random(
                "%s|%s|%s|%s" % (self._seed_material, kind, sender, destination)
            )
            self._draw_streams[key] = stream
        return stream.random()

    def _drop(self, cause: str) -> None:
        self.messages_dropped += 1
        self.drops_by_cause[cause] += 1
        return None

    def _loss_probability(self, sender: str, destination: str, now: float) -> float:
        probability = 0.0
        for name in (sender, destination):
            fault = self._link_faults.get(name)
            if fault is None:
                continue
            link_loss = fault.loss_probability_at(now)
            if link_loss > 0.0:
                probability = 1.0 - (1.0 - probability) * (1.0 - link_loss)
        return probability
