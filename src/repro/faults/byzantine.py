"""Byzantine message rewriting for equivocating and withholding authorities.

An ``"equivocate"`` :class:`~repro.faults.plan.AuthorityFault` makes an
authority present *different* vote content to different peers — the classic
attack of Luo et al. that the paper's dissemination proofs are designed to
expose.  Enforcement is protocol-agnostic and happens at the network seam:
the :class:`~repro.faults.injector.FaultInjector` hands every outgoing
message of an equivocator to an :class:`EquivocationRewriter`, which swaps
the equivocator's own vote for a pre-generated alternate whenever the
destination falls in the second half of the (sorted) peer set.

The rewriter understands the vote-bearing payload shapes of all three
protocols:

* a bare :class:`~repro.directory.vote.VoteDocument` (``V3/VOTE``,
  ``LUO/LIST``);
* tuples of vote documents (``V3/VOTE_FETCH_RESPONSE``);
* Luo vote packages ``(sender_id, {authority_id: vote})``;
* ICPS ``DOCUMENT`` messages, whose alternate is re-signed with the
  equivocator's own keypair so honest trackers accept it and later detect
  the conflicting claims;
* ICPS ``FETCH_RESPONSE`` document maps.

Messages it does not understand (agreement votes, signature exchanges,
Dolev–Strong relays) pass through untouched — an equivocator misbehaves
about its *vote*, not about everything.

``"withhold"`` needs no rewriting: the injector simply suppresses every
outgoing message of a withholding authority.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.documents import Document
from repro.core.icps import ICPSMessage
from repro.core.proofs import sign_claim
from repro.crypto.keys import KeyPair
from repro.directory.vote import VoteDocument
from repro.simnet.message import Message
from repro.utils.validation import ensure


def alternate_document_for(vote: VoteDocument) -> Document:
    """Wrap an alternate vote the way :class:`PartialSyncAuthority` wraps its own."""
    return Document(
        data=vote.serialize().encode("utf-8"),
        label="vote-%d" % vote.authority_id,
        payload=vote,
        size_override=vote.size_bytes,
    )


class EquivocationRewriter:
    """Rewrites one equivocating authority's vote-bearing messages.

    Parameters
    ----------
    node_name:
        Simulator name of the equivocating authority.
    authority_id:
        Its integer authority id (vote payloads are matched on it).
    alternate_vote:
        The conflicting vote presented to the second half of the peers; must
        differ from the authority's genuine vote.
    keypair:
        The equivocator's keypair, used to produce a *valid* signature over
        the alternate ICPS document (equivocation with invalid signatures
        would just be discarded, not detected).
    all_node_names:
        Names of every node in the run; the lexicographically larger half of
        the *other* nodes receives the alternate vote.
    """

    def __init__(
        self,
        node_name: str,
        authority_id: int,
        alternate_vote: VoteDocument,
        keypair: KeyPair,
        all_node_names: Sequence[str],
    ) -> None:
        ensure(node_name in all_node_names, "equivocator %r not among run nodes" % node_name)
        self.node_name = node_name
        self.authority_id = authority_id
        self.alternate_vote = alternate_vote
        self.keypair = keypair
        peers = sorted(name for name in all_node_names if name != node_name)
        self._alternate_side = frozenset(peers[len(peers) // 2 :])
        self._alternate_document = alternate_document_for(alternate_vote)
        self._alternate_signature = sign_claim(
            keypair, node_name, self._alternate_document.digest()
        )

    def uses_alternate(self, destination: str) -> bool:
        """True when ``destination`` is served the alternate vote."""
        return destination in self._alternate_side

    # -- rewriting ---------------------------------------------------------
    def rewrite(self, destination: str, message: Message) -> Message:
        """The message ``destination`` should actually see.

        Returns ``message`` itself when the destination gets the genuine
        vote or the payload carries no vote of ours; otherwise builds a fresh
        :class:`Message` (broadcasts share payload objects, so the original
        is never mutated).
        """
        if not self.uses_alternate(destination):
            return message
        rewritten = self._rewrite_payload(message.payload)
        if rewritten is None:
            return message
        payload, size_bytes = rewritten
        clone = Message(
            msg_type=message.msg_type,
            sender=message.sender,
            payload=payload,
            size_bytes=size_bytes,
            metadata=dict(message.metadata),
        )
        return clone

    def _rewrite_payload(self, payload) -> Optional[Tuple[object, int]]:
        """(new payload, new wire size), or None when nothing needed swapping."""
        if isinstance(payload, VoteDocument):
            if payload.authority_id != self.authority_id:
                return None
            return self.alternate_vote, self.alternate_vote.size_bytes
        if isinstance(payload, (tuple, list)) and any(
            isinstance(entry, VoteDocument) for entry in payload
        ):
            return self._rewrite_vote_tuple(payload)
        if self._is_vote_package(payload):
            return self._rewrite_vote_package(payload)
        if isinstance(payload, ICPSMessage):
            return self._rewrite_icps(payload)
        return None

    def _rewrite_vote_tuple(self, payload) -> Optional[Tuple[object, int]]:
        swapped = False
        votes = []
        for entry in payload:
            if isinstance(entry, VoteDocument) and entry.authority_id == self.authority_id:
                votes.append(self.alternate_vote)
                swapped = True
            else:
                votes.append(entry)
        if not swapped:
            return None
        size = sum(v.size_bytes for v in votes if isinstance(v, VoteDocument))
        return tuple(votes), size

    @staticmethod
    def _is_vote_package(payload) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[0], int)
            and isinstance(payload[1], dict)
        )

    def _rewrite_vote_package(self, payload) -> Optional[Tuple[object, int]]:
        sender_id, package = payload
        if self.authority_id not in package:
            return None
        replaced = dict(package)
        replaced[self.authority_id] = self.alternate_vote
        size = sum(vote.size_bytes for vote in replaced.values())
        return (sender_id, replaced), size

    def _rewrite_icps(self, inner: ICPSMessage) -> Optional[Tuple[object, int]]:
        if inner.msg_type == "DOCUMENT" and inner.sender == self.node_name:
            clone = ICPSMessage(
                msg_type="DOCUMENT",
                sender=inner.sender,
                payload={
                    "document": self._alternate_document,
                    "signature": self._alternate_signature,
                },
            )
            return clone, clone.size_bytes
        if inner.msg_type == "FETCH_RESPONSE" and isinstance(inner.payload, dict):
            if self.node_name not in inner.payload:
                return None
            documents = dict(inner.payload)
            documents[self.node_name] = self._alternate_document
            clone = ICPSMessage(
                msg_type="FETCH_RESPONSE", sender=inner.sender, payload=documents
            )
            return clone, clone.size_bytes
        return None


def build_rewriters(
    equivocator_ids: Sequence[int],
    authority_names: Mapping[int, str],
    alternate_votes: Mapping[int, VoteDocument],
    keypairs: Mapping[int, KeyPair],
    all_node_names: Sequence[str],
) -> Dict[str, EquivocationRewriter]:
    """One :class:`EquivocationRewriter` per equivocating authority, by node name."""
    rewriters: Dict[str, EquivocationRewriter] = {}
    for authority_id in equivocator_ids:
        ensure(
            authority_id in alternate_votes,
            "no alternate vote prepared for equivocator %d" % authority_id,
        )
        name = authority_names[authority_id]
        rewriters[name] = EquivocationRewriter(
            node_name=name,
            authority_id=authority_id,
            alternate_vote=alternate_votes[authority_id],
            keypair=keypairs[authority_id],
            all_node_names=all_node_names,
        )
    return rewriters
