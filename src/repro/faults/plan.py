"""Declarative fault plans: frozen, hashable descriptions of adversity.

The paper's claims are all about protocol behaviour under adversity — DDoS
floods, lossy links, authorities that crash mid-run or lie.  This module
reifies adversity the same way :mod:`repro.runtime.spec` reifies run
configuration: as frozen, hashable, picklable data that attaches to a
:class:`~repro.runtime.spec.RunSpec`, participates in its content hash, and
therefore round-trips through the :class:`~repro.runtime.cache.ResultCache`.

Three layers of fault, two declarative types:

* :class:`LinkFault` — degradations of one authority's *links*: partition
  windows (the authority is cut off from every peer), independent per-message
  drop probability, and bounded uniform latency jitter.
* :class:`AuthorityFault` — degradations of the authority *itself*: crash
  windows (the process is down: ingress, egress, and timers are all dead until
  the window ends) and Byzantine behaviour (``"equivocate"`` — present
  different votes to different peers — or ``"withhold"`` — never send
  anything).
* :class:`FaultPlan` — a composable bundle of the above, at most one entry
  per authority per category.

This module deliberately imports nothing beyond the validation helpers:
:mod:`repro.runtime.spec` imports *us*, and enforcement (which needs the
simulator, documents, and keys) lives in :mod:`repro.faults.injector` /
:mod:`repro.faults.byzantine`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.utils.validation import ensure

#: Byzantine behaviours an :class:`AuthorityFault` can request.
BYZANTINE_MODES = ("equivocate", "withhold")

#: Serialization format version written by :meth:`FaultPlan.to_dict`.
FAULT_PLAN_FORMAT_VERSION = 1

Window = Tuple[float, float]


def _normalize_windows(windows: Iterable[Sequence[float]], name: str) -> Tuple[Window, ...]:
    """Validate and canonicalize ``(start, end)`` windows (sorted, non-overlapping)."""
    normalized = []
    for window in windows:
        ensure(
            len(tuple(window)) == 2,
            "%s windows must be (start, end) pairs, got %r" % (name, tuple(window)),
        )
        start, end = float(window[0]), float(window[1])
        ensure(start >= 0, "%s window start must be non-negative, got %r" % (name, start))
        ensure(end > start, "%s window end must be after its start, got %r" % (name, (start, end)))
        normalized.append((start, end))
    normalized.sort()
    for (_, earlier_end), (later_start, _) in zip(normalized, normalized[1:]):
        ensure(
            later_start >= earlier_end,
            "%s windows must not overlap, got %r" % (name, normalized),
        )
    return tuple(normalized)


def _windows_cover(windows: Tuple[Window, ...], time: float) -> bool:
    """True when ``time`` falls inside any ``[start, end)`` window."""
    return any(start <= time < end for start, end in windows)


def _windows_seconds(windows: Tuple[Window, ...], until: float) -> float:
    """Total seconds of window coverage clipped to ``[0, until]``."""
    return sum(max(0.0, min(end, until) - start) for start, end in windows if start < until)


@dataclass(frozen=True)
class LinkFault:
    """Degradations of one authority's network links.

    Attributes
    ----------
    authority_id:
        The authority whose links this fault degrades.
    partition_windows:
        ``(start, end)`` windows during which the authority is cut off from
        every peer: messages to or from it are dropped at send initiation and
        again at the delivery instant (a transfer in flight when the
        partition opens is cut).
    drop_probability:
        Independent probability that any single message to or from this
        authority is lost (drawn from the run's seeded fault RNG).
    loss_windows:
        ``(start, end)`` windows confining ``drop_probability`` *and*
        ``jitter_s``: outside every window the link is loss-free and
        jitter-free.  Empty (the default) means both degradations apply for
        the whole run.
    jitter_s:
        Upper bound of uniform extra propagation latency added to deliveries
        to or from this authority (confined by ``loss_windows`` when given).
    """

    authority_id: int
    partition_windows: Tuple[Window, ...] = ()
    drop_probability: float = 0.0
    loss_windows: Tuple[Window, ...] = ()
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        ensure(self.authority_id >= 0, "authority_id must be non-negative")
        ensure(
            0.0 <= self.drop_probability <= 1.0,
            "drop_probability must be within [0, 1], got %r" % (self.drop_probability,),
        )
        ensure(self.jitter_s >= 0, "jitter_s must be non-negative, got %r" % (self.jitter_s,))
        ensure(
            not self.loss_windows or self.drop_probability > 0.0 or self.jitter_s > 0.0,
            "loss_windows without a drop_probability or jitter_s have no effect",
        )
        object.__setattr__(
            self, "partition_windows", _normalize_windows(self.partition_windows, "partition")
        )
        object.__setattr__(self, "loss_windows", _normalize_windows(self.loss_windows, "loss"))

    @property
    def is_noop(self) -> bool:
        """True when this fault degrades nothing."""
        return (
            not self.partition_windows
            and self.drop_probability == 0.0
            and self.jitter_s == 0.0
        )

    def partitioned_at(self, time: float) -> bool:
        """True when the authority is partitioned at virtual time ``time``."""
        return _windows_cover(self.partition_windows, time)

    def loss_probability_at(self, time: float) -> float:
        """Message-loss probability on this link at virtual time ``time``."""
        if self.loss_windows and not _windows_cover(self.loss_windows, time):
            return 0.0
        return self.drop_probability

    def jitter_at(self, time: float) -> float:
        """Jitter bound on this link at virtual time ``time``.

        Bounded exactly like the loss probability: inside the fault's
        ``loss_windows`` when it declares any, for the whole run otherwise.
        """
        if self.loss_windows and not _windows_cover(self.loss_windows, time):
            return 0.0
        return self.jitter_s

    def key(self) -> Tuple:
        """Canonical tuple for hashing."""
        return (
            self.authority_id,
            self.partition_windows,
            float(self.drop_probability),
            self.loss_windows,
            float(self.jitter_s),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "authority_id": self.authority_id,
            "partition_windows": [list(window) for window in self.partition_windows],
            "drop_probability": self.drop_probability,
            "loss_windows": [list(window) for window in self.loss_windows],
            "jitter_s": self.jitter_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkFault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            authority_id=int(data["authority_id"]),
            partition_windows=tuple(tuple(w) for w in data.get("partition_windows", ())),
            drop_probability=float(data.get("drop_probability", 0.0)),
            loss_windows=tuple(tuple(w) for w in data.get("loss_windows", ())),
            jitter_s=float(data.get("jitter_s", 0.0)),
        )


@dataclass(frozen=True)
class AuthorityFault:
    """Degradations of one authority itself (crash windows, Byzantine modes).

    Attributes
    ----------
    authority_id:
        The faulty authority.
    crash_windows:
        Non-overlapping ``(start, end)`` windows during which the authority's
        process is down: it receives nothing, sends nothing, and timers that
        come due while it is down are *lost* (the process died holding them),
        not deferred.  When a window ends the process is back and reacts to
        incoming messages and any timers it sets afterwards; a boot
        (``on_start``) scheduled inside a window is the one exception — it is
        deferred to the window's end, so an authority crashed at t=0 joins
        the run late rather than never.
    byzantine:
        ``None`` for a merely crashing authority, ``"equivocate"`` to present
        different vote content to different halves of the peer set, or
        ``"withhold"`` to suppress every outgoing message while still
        receiving (a silent Byzantine observer).
    """

    authority_id: int
    crash_windows: Tuple[Window, ...] = ()
    byzantine: Optional[str] = None

    def __post_init__(self) -> None:
        ensure(self.authority_id >= 0, "authority_id must be non-negative")
        ensure(
            self.byzantine is None or self.byzantine in BYZANTINE_MODES,
            "byzantine must be None or one of %r, got %r" % (BYZANTINE_MODES, self.byzantine),
        )
        object.__setattr__(
            self, "crash_windows", _normalize_windows(self.crash_windows, "crash")
        )

    @property
    def is_noop(self) -> bool:
        """True when this fault degrades nothing."""
        return not self.crash_windows and self.byzantine is None

    def down_at(self, time: float) -> bool:
        """True when the authority is crashed at virtual time ``time``."""
        return _windows_cover(self.crash_windows, time)

    def down_until(self, time: float) -> float:
        """``time`` when the authority is up at ``time``, else its restart instant."""
        for start, end in self.crash_windows:
            if start <= time < end:
                return end
        return time

    def key(self) -> Tuple:
        """Canonical tuple for hashing."""
        return (self.authority_id, self.crash_windows, self.byzantine)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "authority_id": self.authority_id,
            "crash_windows": [list(window) for window in self.crash_windows],
            "byzantine": self.byzantine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AuthorityFault":
        """Inverse of :meth:`to_dict`."""
        return cls(
            authority_id=int(data["authority_id"]),
            crash_windows=tuple(tuple(w) for w in data.get("crash_windows", ())),
            byzantine=data.get("byzantine"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A composable bundle of link and authority faults for one run.

    At most one :class:`LinkFault` and one :class:`AuthorityFault` per
    authority; entries are canonicalized (sorted by authority id, no-ops
    removed) so two plans describing the same adversity compare and hash
    equal.  The empty plan is falsy and enforcement-free: a spec carrying it
    simulates bit-identically to one carrying no plan at all.
    """

    link_faults: Tuple[LinkFault, ...] = ()
    authority_faults: Tuple[AuthorityFault, ...] = ()

    def __post_init__(self) -> None:
        links = tuple(
            sorted((f for f in self.link_faults if not f.is_noop), key=lambda f: f.authority_id)
        )
        authorities = tuple(
            sorted(
                (f for f in self.authority_faults if not f.is_noop),
                key=lambda f: f.authority_id,
            )
        )
        for faults, label in ((links, "link"), (authorities, "authority")):
            seen = set()
            for fault in faults:
                ensure(
                    fault.authority_id not in seen,
                    "duplicate %s fault for authority %d" % (label, fault.authority_id),
                )
                seen.add(fault.authority_id)
        object.__setattr__(self, "link_faults", links)
        object.__setattr__(self, "authority_faults", authorities)

    # -- queries -----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.link_faults and not self.authority_faults

    def __bool__(self) -> bool:
        return not self.is_empty

    def link_fault_for(self, authority_id: int) -> Optional[LinkFault]:
        """The link fault declared for ``authority_id``, if any."""
        for fault in self.link_faults:
            if fault.authority_id == authority_id:
                return fault
        return None

    def authority_fault_for(self, authority_id: int) -> Optional[AuthorityFault]:
        """The authority fault declared for ``authority_id``, if any."""
        for fault in self.authority_faults:
            if fault.authority_id == authority_id:
                return fault
        return None

    def faulted_authority_ids(self) -> Tuple[int, ...]:
        """Sorted ids of every authority any fault references."""
        ids = {f.authority_id for f in self.link_faults}
        ids.update(f.authority_id for f in self.authority_faults)
        return tuple(sorted(ids))

    def crashing_authority_ids(self) -> Tuple[int, ...]:
        """Sorted ids of authorities with at least one crash window."""
        return tuple(
            sorted(f.authority_id for f in self.authority_faults if f.crash_windows)
        )

    def byzantine_authority_ids(self, mode: str) -> Tuple[int, ...]:
        """Sorted ids of authorities declared Byzantine with ``mode``."""
        ensure(mode in BYZANTINE_MODES, "unknown byzantine mode %r" % (mode,))
        return tuple(
            sorted(f.authority_id for f in self.authority_faults if f.byzantine == mode)
        )

    def last_fault_end(self) -> float:
        """End of the latest partition/loss/crash window (0.0 for window-less plans).

        Recovery-latency experiments measure consensus latency from this
        instant — the moment the injected adversity is fully over.  Unbounded
        degradations (whole-run loss or jitter) contribute nothing.
        """
        ends = [
            end
            for f in self.link_faults
            for _, end in f.partition_windows + f.loss_windows
        ]
        ends.extend(end for f in self.authority_faults for _, end in f.crash_windows)
        return max(ends) if ends else 0.0

    # -- accounting --------------------------------------------------------
    def partition_seconds(self, until: float) -> float:
        """Authority-seconds of partition within ``[0, until]``, summed over authorities."""
        ensure(until >= 0, "until must be non-negative")
        return sum(_windows_seconds(f.partition_windows, until) for f in self.link_faults)

    def down_seconds(self, until: float) -> float:
        """Authority-seconds of crash downtime within ``[0, until]``, summed over authorities."""
        ensure(until >= 0, "until must be non-negative")
        return sum(_windows_seconds(f.crash_windows, until) for f in self.authority_faults)

    # -- validation against a run -----------------------------------------
    def validate_for(self, authority_count: int) -> None:
        """Reject faults referencing authorities a run does not have."""
        for authority_id in self.faulted_authority_ids():
            ensure(
                authority_id < authority_count,
                "fault references unknown authority id %d (run has %d authorities)"
                % (authority_id, authority_count),
            )

    # -- composition -------------------------------------------------------
    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans; both may not declare faults for the same authority."""
        return FaultPlan(
            link_faults=self.link_faults + other.link_faults,
            authority_faults=self.authority_faults + other.authority_faults,
        )

    def __or__(self, other: "FaultPlan") -> "FaultPlan":
        return self.merged(other)

    # -- hashing and serialization ----------------------------------------
    def key(self) -> Tuple:
        """Canonical tuple of everything the plan injects."""
        return (
            tuple(fault.key() for fault in self.link_faults),
            tuple(fault.key() for fault in self.authority_faults),
        )

    def plan_hash(self) -> str:
        """Stable content hash: equal plans hash equally across processes."""
        material = repr(self.key()).encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "format": FAULT_PLAN_FORMAT_VERSION,
            "link_faults": [fault.to_dict() for fault in self.link_faults],
            "authority_faults": [fault.to_dict() for fault in self.authority_faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            link_faults=tuple(
                LinkFault.from_dict(entry) for entry in data.get("link_faults", ())
            ),
            authority_faults=tuple(
                AuthorityFault.from_dict(entry) for entry in data.get("authority_faults", ())
            ),
        )

    # -- convenience constructors ------------------------------------------
    @classmethod
    def partition(
        cls, authority_ids: Sequence[int], start: float, end: float
    ) -> "FaultPlan":
        """Partition ``authority_ids`` away from the rest over ``[start, end)``."""
        return cls(
            link_faults=tuple(
                LinkFault(authority_id=aid, partition_windows=((start, end),))
                for aid in authority_ids
            )
        )

    @classmethod
    def lossy_links(
        cls,
        authority_ids: Sequence[int],
        drop_probability: float,
        jitter_s: float = 0.0,
        windows: Sequence[Sequence[float]] = (),
    ) -> "FaultPlan":
        """Independent message loss (and optional jitter) on some authorities' links.

        ``windows`` confines the loss to ``(start, end)`` intervals; empty
        means the whole run.
        """
        return cls(
            link_faults=tuple(
                LinkFault(
                    authority_id=aid,
                    drop_probability=drop_probability,
                    loss_windows=tuple(tuple(w) for w in windows),
                    jitter_s=jitter_s,
                )
                for aid in authority_ids
            )
        )

    @classmethod
    def crash(cls, authority_id: int, windows: Sequence[Sequence[float]]) -> "FaultPlan":
        """Crash/restart one authority over the given windows."""
        return cls(
            authority_faults=(
                AuthorityFault(
                    authority_id=authority_id,
                    crash_windows=tuple(tuple(w) for w in windows),
                ),
            )
        )

    @classmethod
    def byzantine(cls, authority_id: int, mode: str) -> "FaultPlan":
        """Declare one authority Byzantine (``"equivocate"`` or ``"withhold"``)."""
        return cls(authority_faults=(AuthorityFault(authority_id=authority_id, byzantine=mode),))


#: The shared empty plan (the default on :class:`~repro.runtime.spec.RunSpec`).
EMPTY_FAULT_PLAN = FaultPlan()
