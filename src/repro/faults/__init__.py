"""Declarative fault injection: plans, enforcement, Byzantine rewriting.

The package splits cleanly into a *plan* half and an *enforcement* half:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`LinkFault` /
  :class:`AuthorityFault`: frozen, hashable descriptions of adversity
  (partition windows, message loss, latency jitter, crash/restart windows,
  Byzantine vote equivocation and withholding).  Plans attach to
  :class:`~repro.runtime.spec.RunSpec` exactly like bandwidth overrides do,
  participate in spec hashing, and therefore round-trip through the
  :class:`~repro.runtime.cache.ResultCache`.  This module has no simulator
  dependencies, so the runtime layer can import it freely.
* :mod:`repro.faults.injector` / :mod:`repro.faults.byzantine` — the
  :class:`FaultInjector` that enforces a plan at the
  :class:`~repro.simnet.network.SimNetwork` seam (send initiation, delivery
  instant, timer firing) with seeded, replayable randomness, plus the
  equivocation message rewriter.

See ``DESIGN-faults.md`` for the semantics and the cache-hashing
implications.
"""

from repro.faults.plan import (
    BYZANTINE_MODES,
    EMPTY_FAULT_PLAN,
    AuthorityFault,
    FaultPlan,
    LinkFault,
)

#: Enforcement-half names resolved lazily (PEP 562) so that importing the
#: plan layer — which `repro.runtime.spec` does on every runtime import —
#: does not drag the simulator/document/crypto layers in with it.
_LAZY_EXPORTS = {
    "FaultInjector": "repro.faults.injector",
    "EquivocationRewriter": "repro.faults.byzantine",
    "build_rewriters": "repro.faults.byzantine",
}

__all__ = [
    "BYZANTINE_MODES",
    "EMPTY_FAULT_PLAN",
    "AuthorityFault",
    "FaultPlan",
    "LinkFault",
    "FaultInjector",
    "EquivocationRewriter",
    "build_rewriters",
]


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
