"""Figure 12 (extension): recovery latency under declarative fault mixes.

The paper's adversity experiments stop at bandwidth starvation (Figures 1,
10, 11).  This experiment widens the threat model using the declarative
fault layer: every mix below is a frozen
:class:`~repro.faults.plan.FaultPlan` attached to a
:class:`~repro.runtime.spec.RunSpec`, so the whole grid executes, caches,
and parallelises through one :class:`~repro.runtime.executor.SweepExecutor`
like any other sweep — and is bit-identical at any worker count.

Default mixes (all three protocols each):

``authority-churn``
    Two authorities crash and restart in staggered windows.
``minority-partition``
    Two authorities are cut off from every peer early in the run, healing
    after three minutes.
``lossy-links``
    A majority of authorities suffer 5% independent message loss plus up to
    250 ms of extra jitter for the entire run.
``flash-flood``
    The paper's majority DDoS re-expressed as a fault plan
    (:meth:`~repro.attack.ddos.DDoSAttackPlan.fault_plan`): a total flood
    partitions 5 of 9 authorities for the first 300 s.  Unlike the
    bandwidth-override form (transfers crawl but survive), dropped messages
    are *gone* — so this mix also shows which protocols rely on
    retransmission to recover.
``flash-flood-tcp``
    The same flood with a sliver of residual bandwidth, run on the ``tcp``
    transport (every mix has a ``transport``; this is the only non-default
    one).  The residual turns the plan drop-typed (p ≈ 0.998 inside the
    window), and on ``tcp`` those drops feed
    :meth:`~repro.faults.injector.FaultInjector.tcp_loss_event`: the
    authorities' congestion windows collapse for the whole window, so the
    cell shows the fault → congestion-control coupling end-to-end.
``byzantine``
    One vote-equivocating authority plus one withholding authority.

For each (mix, protocol) cell the table reports success, consensus
latency, recovery latency measured from the end of the last fault window,
and the fault accounting (messages dropped, partition seconds, authority
down-seconds) from :attr:`ProtocolRunResult.fault_summary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.attack.ddos import DDoSAttackPlan
from repro.faults.plan import AuthorityFault, FaultPlan
from repro.protocols.base import DirectoryProtocolConfig, ProtocolRunResult
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec, SweepSpec, overrides_from_config
from repro.utils.validation import ensure


@dataclass(frozen=True)
class FaultMix:
    """A named fault plan swept by the experiment.

    ``transport`` selects the link model the mix runs under — almost always
    the default ``fair``, but drop-typed plans only couple into congestion
    control on ``tcp`` (see ``flash-flood-tcp``).
    """

    name: str
    plan: FaultPlan
    transport: str = "fair"


def default_fault_mixes(authority_count: int = 9) -> Tuple[FaultMix, ...]:
    """The standard mixes for ``authority_count`` authorities (≥ 5 required)."""
    ensure(authority_count >= 5, "fault mixes need at least 5 authorities")
    majority = authority_count // 2 + 1
    flood = DDoSAttackPlan(
        target_authority_ids=tuple(range(majority)),
        start=0.0,
        duration=300.0,
        residual_bandwidth_mbps=0.0,
    )
    # The drop-typed variant: a sliver of residual bandwidth turns the
    # plan from partition windows into per-message loss (p ≈ 0.998), the
    # form that drives tcp's multiplicative decrease.
    leaky_flood = DDoSAttackPlan(
        target_authority_ids=tuple(range(majority)),
        start=0.0,
        duration=300.0,
        residual_bandwidth_mbps=0.5,
    )
    return (
        FaultMix(
            "authority-churn",
            FaultPlan(
                authority_faults=(
                    AuthorityFault(authority_id=0, crash_windows=((30.0, 210.0),)),
                    AuthorityFault(authority_id=1, crash_windows=((120.0, 300.0),)),
                )
            ),
        ),
        FaultMix(
            "minority-partition",
            FaultPlan.partition((0, 1), start=10.0, end=190.0),
        ),
        FaultMix(
            "lossy-links",
            FaultPlan.lossy_links(
                tuple(range(majority)), drop_probability=0.05, jitter_s=0.25
            ),
        ),
        FaultMix("flash-flood", flood.fault_plan()),
        FaultMix("flash-flood-tcp", leaky_flood.fault_plan(), transport="tcp"),
        FaultMix(
            "byzantine",
            FaultPlan.byzantine(0, "equivocate").merged(
                FaultPlan.byzantine(1, "withhold")
            ),
        ),
    )


@dataclass
class Figure12Result:
    """Outcome of one protocol under one fault mix."""

    mix: str
    protocol: str
    success: bool
    latency: Optional[float]
    recovery_latency: Optional[float]
    fault_end: float
    messages_dropped: int
    partition_seconds: float
    authority_down_seconds: float

    @classmethod
    def from_run(
        cls, mix: FaultMix, spec: RunSpec, run: ProtocolRunResult
    ) -> "Figure12Result":
        """Fold a finished run and its spec into a table row."""
        fault_end = mix.plan.last_fault_end()
        recovery = run.latency_from(fault_end) if run.success else None
        if recovery is not None:
            # Consensus may complete while later fault windows are still
            # open (e.g. churn that only ever downs a minority); recovery
            # latency is "time past the end of all adversity", floored at 0.
            recovery = max(0.0, recovery)
        faults = run.fault_summary
        return cls(
            mix=mix.name,
            protocol=spec.protocol,
            success=run.success,
            latency=run.latency,
            recovery_latency=recovery,
            fault_end=fault_end,
            messages_dropped=int(faults.get("messages_dropped", 0)),
            partition_seconds=float(faults.get("partition_seconds", 0.0)),
            authority_down_seconds=float(faults.get("authority_down_seconds", 0.0)),
        )


def figure12_sweep(
    mixes: Sequence[FaultMix],
    protocols: Sequence[str] = PROTOCOL_NAMES,
    relay_count: int = 150,
    bandwidth_mbps: float = 250.0,
    authority_count: int = 9,
    seed: int = 7,
    engine: str = "hotstuff",
    config: Optional[DirectoryProtocolConfig] = None,
    max_time: float = 1500.0,
) -> Tuple[SweepSpec, List[Tuple[FaultMix, RunSpec]]]:
    """The (mix × protocol) grid as a :class:`SweepSpec` plus row bookkeeping."""
    config_overrides = overrides_from_config(config) if config is not None else ()
    cells: List[Tuple[FaultMix, RunSpec]] = []
    for mix in mixes:
        for protocol in protocols:
            spec = RunSpec(
                protocol=protocol,
                relay_count=relay_count,
                bandwidth_mbps=bandwidth_mbps,
                seed=seed,
                engine=engine,
                authority_count=authority_count,
                max_time=max_time,
                transport=mix.transport,
                config_overrides=config_overrides,
                fault_plan=mix.plan,
            )
            cells.append((mix, spec))
    sweep = SweepSpec(name="figure12-faults", runs=tuple(spec for _, spec in cells))
    return sweep, cells


def run_figure12(
    mixes: Optional[Sequence[FaultMix]] = None,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    relay_count: int = 150,
    bandwidth_mbps: float = 250.0,
    authority_count: int = 9,
    seed: int = 7,
    engine: str = "hotstuff",
    config: Optional[DirectoryProtocolConfig] = None,
    max_time: float = 1500.0,
    executor: Optional[SweepExecutor] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Figure12Result]:
    """Run every fault mix against every protocol and collect the rows."""
    mixes = tuple(mixes) if mixes is not None else default_fault_mixes(authority_count)
    executor = executor or SweepExecutor(workers=workers, cache=cache)
    sweep, cells = figure12_sweep(
        mixes,
        protocols=protocols,
        relay_count=relay_count,
        bandwidth_mbps=bandwidth_mbps,
        authority_count=authority_count,
        seed=seed,
        engine=engine,
        config=config,
        max_time=max_time,
    )
    runs = executor.run(sweep)
    return [
        Figure12Result.from_run(mix, spec, run)
        for (mix, spec), run in zip(cells, runs)
    ]


def render_figure12(results: Sequence[Figure12Result]) -> str:
    """Render the recovery-latency table across fault mixes."""
    rows = []
    for result in results:
        rows.append(
            (
                result.mix,
                result.protocol,
                "ok" if result.success else "FAIL",
                "%.1f s" % result.latency if result.latency is not None else "-",
                "%.1f s" % result.recovery_latency
                if result.recovery_latency is not None
                else "-",
                result.messages_dropped,
                "%.0f" % result.partition_seconds,
                "%.0f" % result.authority_down_seconds,
            )
        )
    return format_table(
        [
            "Fault mix",
            "Protocol",
            "Run",
            "Latency",
            "Recovery",
            "Dropped",
            "Partition s",
            "Down s",
        ],
        rows,
        title="Figure 12: consensus and recovery latency under injected fault mixes",
    )
