"""Figure 7: bandwidth an attacked authority needs vs. the number of relays.

For each relay count, 5 of the 9 authorities are limited to a candidate
bandwidth and a binary search finds the minimum at which the current
protocol still succeeds.  The resulting curve is (to first order) linear in
the relay count and crosses ≈ 10 Mbit/s around 8,000 relays — far above the
0.5 Mbit/s a host retains under DDoS, which is the paper's point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.bandwidth import (
    BandwidthRequirementResult,
    analytic_required_bandwidth_mbps,
    bandwidth_requirement_sweep,
)
from repro.analysis.reporting import format_table
from repro.attack.ddos import ATTACK_RESIDUAL_BANDWIDTH_MBPS
from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor

#: Relay counts reported in the paper's sweep.
DEFAULT_RELAY_COUNTS = (1000, 2000, 4000, 6000, 8000, 10000)


def run_figure7(
    relay_counts: Sequence[int] = DEFAULT_RELAY_COUNTS,
    attacked_count: int = 5,
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
    cache: Optional[ResultCache] = None,
) -> List[BandwidthRequirementResult]:
    """Run the bandwidth-requirement search over ``relay_counts``.

    Every binary-search probe executes through the shared sweep executor, so
    an attached cache makes re-running the figure free.
    """
    return bandwidth_requirement_sweep(
        relay_counts,
        attacked_count=attacked_count,
        config=config,
        seed=seed,
        executor=executor,
        cache=cache,
    )


def render_figure7(results: Sequence[BandwidthRequirementResult]) -> str:
    """Render the measured requirement next to the closed-form model."""
    rows = []
    for result in results:
        rows.append(
            (
                result.relay_count,
                round(result.required_mbps, 2),
                round(analytic_required_bandwidth_mbps(result.relay_count), 2),
                ATTACK_RESIDUAL_BANDWIDTH_MBPS,
            )
        )
    return format_table(
        ["Relays", "Required bandwidth (Mbit/s)", "Analytic model (Mbit/s)", "Under attack (Mbit/s)"],
        rows,
        title="Figure 7: bandwidth required by attacked authorities vs. number of relays",
    )
