"""Table 1: design comparison and communication complexity.

The analytic column instantiates the paper's big-O expressions; the measured
column comes from running each protocol on the simulator (at a modest relay
count so the synchronous protocol still succeeds) and summing the bytes the
transport delivered.  The three measurement runs are one
:class:`~repro.runtime.spec.SweepSpec` executed through the shared
:class:`~repro.runtime.executor.SweepExecutor` — byte accounting survives the
compact summary round-trip, so cached and parallel runs measure identically.
The benchmark checks the *ordering* the paper claims: synchronous ≫ ours >
current in document traffic, with ours close to current.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.complexity import ComplexityRow, complexity_comparison_table
from repro.analysis.reporting import format_table
from repro.protocols.base import DirectoryProtocolConfig
from repro.protocols.runner import scenario_from_spec
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import RunSpec, SweepSpec, overrides_from_config


def measure_protocol_bytes(
    relay_count: int = 1000,
    bandwidth_mbps: float = 250.0,
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, float]:
    """Total delivered bytes per protocol at one configuration."""
    executor = executor or SweepExecutor()
    sweep = SweepSpec.grid(
        "table1-traffic",
        protocols=("current", "synchronous", "ours"),
        bandwidths_mbps=(bandwidth_mbps,),
        relay_counts=(relay_count,),
        seed=seed,
        max_time=1800.0,
        config_overrides=overrides_from_config(config),
    )
    return {
        spec.protocol: result.stats.total_bytes_delivered
        for spec, result in zip(sweep.runs, executor.run(sweep))
    }


def run_table1(
    relay_count: int = 1000,
    measure: bool = True,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> List[ComplexityRow]:
    """Build Table 1 rows, optionally annotated with measured traffic."""
    scenario = scenario_from_spec(
        RunSpec(protocol="current", relay_count=relay_count, seed=seed)
    )
    document_bytes = scenario.votes[0].size_bytes
    measured = (
        measure_protocol_bytes(relay_count=relay_count, seed=seed, executor=executor)
        if measure
        else None
    )
    return complexity_comparison_table(
        n=len(scenario.authorities), document_bytes=document_bytes, measured=measured
    )


def render_table1(rows: Sequence[ComplexityRow]) -> str:
    """Render Table 1 as text."""
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row.protocol,
                row.network_model,
                row.security,
                row.complexity_expression,
                "%.1f MB" % (row.estimated_bytes / 1e6),
                "-" if row.measured_bytes is None else "%.1f MB" % (row.measured_bytes / 1e6),
            )
        )
    return format_table(
        ["Protocol", "Network model", "Security", "Complexity", "Analytic traffic", "Measured traffic"],
        table_rows,
        title="Table 1: comparison of Tor directory protocol designs",
    )
