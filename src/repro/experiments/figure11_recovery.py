"""Figure 11: recovery latency after a complete 5-minute DDoS.

Five authorities are knocked (almost) offline for the first 300 seconds, then
the network returns to its normal 250 Mbit/s.  The paper reports that the new
protocol produces a consensus within seconds of the attack ending, while the
two synchronous protocols fail the run entirely and have to wait for the
fallback re-run — 25 minutes until the next scheduled attempt plus the
10-minute protocol, i.e. 2,100 seconds.

Every attacked run (ours plus the two baselines, per relay count) is a frozen
:class:`~repro.runtime.spec.RunSpec` carrying the attack as bandwidth
overrides; the whole grid executes through one
:class:`~repro.runtime.executor.SweepExecutor`, so it parallelises and caches
like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.attack.ddos import DDoSAttackPlan
from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import RunSpec, overrides_from_config

#: Latency of the synchronous protocols' fallback path (25 min wait + 10 min run).
FALLBACK_LATENCY_SECONDS = 2100.0

#: Relay counts plotted in Figure 11.
DEFAULT_RELAY_COUNTS = (1000, 4000, 7000, 10000)


@dataclass
class Figure11Result:
    """Recovery latency of "ours" (and baseline outcomes) at one relay count."""

    relay_count: int
    attack_end: float
    ours_success: bool
    ours_latency_after_attack: Optional[float]
    current_success: bool
    synchronous_success: bool
    fallback_latency: float = FALLBACK_LATENCY_SECONDS


def run_figure11(
    relay_counts: Sequence[int] = DEFAULT_RELAY_COUNTS,
    attacked_count: int = 5,
    attack_duration: float = 300.0,
    residual_bandwidth_mbps: float = 0.05,
    baseline_bandwidth_mbps: float = 250.0,
    config: Optional[DirectoryProtocolConfig] = None,
    include_baselines: bool = True,
    engine: str = "hotstuff",
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Figure11Result]:
    """Run the full-DDoS recovery experiment for each relay count."""
    config = config or DirectoryProtocolConfig()
    executor = executor or SweepExecutor(workers=workers, cache=cache)
    config_overrides = overrides_from_config(config)
    attack = DDoSAttackPlan(
        target_authority_ids=tuple(range(attacked_count)),
        start=0.0,
        duration=attack_duration,
        residual_bandwidth_mbps=residual_bandwidth_mbps,
        baseline_bandwidth_mbps=baseline_bandwidth_mbps,
    )
    baseline_max_time = 4 * config.round_duration + 60

    specs: List[RunSpec] = []
    for relay_count in relay_counts:
        base = RunSpec(
            protocol="ours",
            relay_count=relay_count,
            bandwidth_mbps=baseline_bandwidth_mbps,
            seed=seed,
            engine=engine,
            max_time=attack.end + 1200.0,
            config_overrides=config_overrides,
            bandwidth_overrides=attack.bandwidth_overrides(),
        )
        specs.append(base)
        if include_baselines:
            for protocol in ("current", "synchronous"):
                specs.append(base.derive(protocol=protocol, max_time=baseline_max_time))

    runs = executor.run(specs)
    by_key = {
        (spec.relay_count, spec.protocol): run for spec, run in zip(specs, runs)
    }

    results: List[Figure11Result] = []
    for relay_count in relay_counts:
        ours = by_key[(relay_count, "ours")]
        current = by_key.get((relay_count, "current"))
        synchronous = by_key.get((relay_count, "synchronous"))
        results.append(
            Figure11Result(
                relay_count=relay_count,
                attack_end=attack.end,
                ours_success=ours.success,
                ours_latency_after_attack=ours.latency_from(attack.end),
                current_success=current.success if current is not None else False,
                synchronous_success=synchronous.success if synchronous is not None else False,
            )
        )
    return results


def render_figure11(results: Sequence[Figure11Result]) -> str:
    """Render the recovery latencies next to the baselines' fallback latency."""
    rows = []
    for result in results:
        rows.append(
            (
                result.relay_count,
                "%.1f s" % result.ours_latency_after_attack
                if result.ours_latency_after_attack is not None
                else "FAIL",
                "FAIL (%.0f s fallback)" % result.fallback_latency
                if not result.current_success
                else "ok",
                "FAIL (%.0f s fallback)" % result.fallback_latency
                if not result.synchronous_success
                else "ok",
            )
        )
    return format_table(
        ["Relays", "Ours (after attack ends)", "Current", "Synchronous"],
        rows,
        title="Figure 11: consensus latency after a 5-minute DDoS on 5 authorities",
    )
