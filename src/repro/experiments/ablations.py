"""Ablations of design choices called out in the DESIGN-*.md notes (not in
the paper): the transport model in DESIGN-transport.md, the document-size
calibration they run against in DESIGN-calibration.md.

Two knobs materially affect the reproduction's conclusions and are therefore
worth sweeping explicitly:

* the **transport link model** of the simulator (fair sharing vs. FIFO
  uplinks; see :mod:`repro.simnet.linkmodel`) — the attack and
  bandwidth-requirement results should be robust to this modelling choice;
  and
* the **agreement engine** used by the new protocol (HotStuff, PBFT,
  Tendermint) — the paper argues any view-based BFT protocol works; the
  ablation confirms the end-to-end latency is similar for all three.

Both ablations are spec grids executed through the shared
:class:`~repro.runtime.executor.SweepExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import RunSpec, overrides_from_config


@dataclass(frozen=True)
class AblationCell:
    """One ablation measurement."""

    variant: str
    protocol: str
    success: bool
    latency_s: Optional[float]


def run_scheduling_ablation(
    relay_count: int = 4000,
    bandwidth_mbps: float = 20.0,
    protocols: Sequence[str] = ("current", "ours"),
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> List[AblationCell]:
    """Compare fair-share and FIFO transport link models."""
    executor = executor or SweepExecutor()
    config_overrides = overrides_from_config(config)
    specs = [
        RunSpec(
            protocol=protocol,
            relay_count=relay_count,
            bandwidth_mbps=bandwidth_mbps,
            seed=seed,
            transport=transport,
            max_time=1800.0,
            config_overrides=config_overrides,
        )
        for transport in ("fair", "fifo")
        for protocol in protocols
    ]
    return [
        AblationCell(
            variant="transport=%s" % spec.transport,
            protocol=spec.protocol,
            success=result.success,
            latency_s=result.latency,
        )
        for spec, result in zip(specs, executor.run(specs))
    ]


def run_engine_ablation(
    relay_count: int = 4000,
    bandwidth_mbps: float = 20.0,
    engines: Sequence[str] = ("hotstuff", "pbft", "tendermint"),
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> List[AblationCell]:
    """Compare the three agreement engines inside the new protocol."""
    executor = executor or SweepExecutor()
    config_overrides = overrides_from_config(config)
    specs = [
        RunSpec(
            protocol="ours",
            relay_count=relay_count,
            bandwidth_mbps=bandwidth_mbps,
            seed=seed,
            engine=engine,
            max_time=1800.0,
            config_overrides=config_overrides,
        )
        for engine in engines
    ]
    return [
        AblationCell(
            variant="engine=%s" % spec.engine,
            protocol="ours",
            success=result.success,
            latency_s=result.latency,
        )
        for spec, result in zip(specs, executor.run(specs))
    ]


def render_ablation(cells: Sequence[AblationCell], title: str) -> str:
    """Render an ablation result table."""
    rows = [
        (
            cell.variant,
            cell.protocol,
            "ok" if cell.success else "FAIL",
            "-" if cell.latency_s is None else "%.1f s" % cell.latency_s,
        )
        for cell in cells
    ]
    return format_table(["Variant", "Protocol", "Outcome", "Latency"], rows, title=title)
