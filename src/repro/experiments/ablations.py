"""Ablations of design choices called out in DESIGN.md (not in the paper).

Two knobs materially affect the reproduction's conclusions and are therefore
worth sweeping explicitly:

* the **link scheduling policy** of the simulator (fair sharing vs. FIFO
  uplinks) — the attack and bandwidth-requirement results should be robust to
  this modelling choice; and
* the **agreement engine** used by the new protocol (HotStuff, PBFT,
  Tendermint) — the paper argues any view-based BFT protocol works; the
  ablation confirms the end-to-end latency is similar for all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.protocols.base import DirectoryProtocolConfig
from repro.protocols.runner import build_scenario, run_protocol


@dataclass(frozen=True)
class AblationCell:
    """One ablation measurement."""

    variant: str
    protocol: str
    success: bool
    latency_s: Optional[float]


def run_scheduling_ablation(
    relay_count: int = 4000,
    bandwidth_mbps: float = 20.0,
    protocols: Sequence[str] = ("current", "ours"),
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
) -> List[AblationCell]:
    """Compare fair-share and FIFO link scheduling."""
    config = config or DirectoryProtocolConfig()
    cells: List[AblationCell] = []
    for scheduling in ("fair", "fifo"):
        scenario = build_scenario(
            relay_count=relay_count,
            bandwidth_mbps=bandwidth_mbps,
            seed=seed,
            scheduling=scheduling,
        )
        for protocol in protocols:
            result = run_protocol(protocol, scenario, config=config, max_time=1800.0)
            cells.append(
                AblationCell(
                    variant="scheduling=%s" % scheduling,
                    protocol=protocol,
                    success=result.success,
                    latency_s=result.latency,
                )
            )
    return cells


def run_engine_ablation(
    relay_count: int = 4000,
    bandwidth_mbps: float = 20.0,
    engines: Sequence[str] = ("hotstuff", "pbft", "tendermint"),
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
) -> List[AblationCell]:
    """Compare the three agreement engines inside the new protocol."""
    config = config or DirectoryProtocolConfig()
    scenario = build_scenario(relay_count=relay_count, bandwidth_mbps=bandwidth_mbps, seed=seed)
    cells: List[AblationCell] = []
    for engine in engines:
        result = run_protocol("ours", scenario, config=config, max_time=1800.0, engine=engine)
        cells.append(
            AblationCell(
                variant="engine=%s" % engine,
                protocol="ours",
                success=result.success,
                latency_s=result.latency,
            )
        )
    return cells


def render_ablation(cells: Sequence[AblationCell], title: str) -> str:
    """Render an ablation result table."""
    rows = [
        (
            cell.variant,
            cell.protocol,
            "ok" if cell.success else "FAIL",
            "-" if cell.latency_s is None else "%.1f s" % cell.latency_s,
        )
        for cell in cells
    ]
    return format_table(["Variant", "Protocol", "Outcome", "Latency"], rows, title=title)
