"""Figure 1: the authority log while five authorities are under DDoS.

Runs the current protocol with the paper's headline attack (5 of 9
authorities throttled to 0.5 Mbit/s for the 300-second vote window) and
extracts one *unattacked* authority's Tor-style log, which reproduces the
"We're missing votes from 5 authorities … Asking every other authority for a
copy", "Giving up downloading votes from …", and "We don't have enough votes
to generate a consensus" notices of Figure 1.

The attacked run is a :class:`~repro.runtime.spec.RunSpec` executed through
:meth:`~repro.runtime.executor.SweepExecutor.run_one` in *full* mode: this is
the one experiment that needs the run's trace log, which compact cached
summaries deliberately drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attack.ddos import DDoSAttackPlan
from repro.directory.authority import authority_node_name
from repro.protocols.base import DirectoryProtocolConfig, ProtocolRunResult
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import RunSpec, overrides_from_config


@dataclass
class AttackDemoResult:
    """Outcome of the Figure 1 attack demonstration."""

    run: ProtocolRunResult
    attack: DDoSAttackPlan
    observer_authority: str
    log_text: str

    @property
    def attack_succeeded(self) -> bool:
        """True when the DDoS prevented a majority-signed consensus."""
        return not self.run.success


def run_attack_demo(
    relay_count: int = 8000,
    attacked_count: int = 5,
    residual_bandwidth_mbps: float = 0.5,
    baseline_bandwidth_mbps: float = 250.0,
    attack_duration: float = 300.0,
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> AttackDemoResult:
    """Run the headline attack against the current protocol and collect the log."""
    config = config or DirectoryProtocolConfig()
    executor = executor or SweepExecutor()
    attack = DDoSAttackPlan(
        target_authority_ids=tuple(range(attacked_count)),
        start=0.0,
        duration=attack_duration,
        residual_bandwidth_mbps=residual_bandwidth_mbps,
        baseline_bandwidth_mbps=baseline_bandwidth_mbps,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=relay_count,
        bandwidth_mbps=baseline_bandwidth_mbps,
        seed=seed,
        max_time=4 * config.round_duration + 60,
        config_overrides=overrides_from_config(config),
        bandwidth_overrides=attack.bandwidth_overrides(),
    )
    # Full mode keeps the trace log, which this experiment exists to print.
    result = executor.run_one(spec, full=True)

    # Observe from an authority that is NOT under attack (as in Figure 1):
    # targets are the first ``attacked_count`` ids, so the last one is clean.
    observer = authority_node_name(spec.authority_count - 1)
    log_text = result.trace.format(node=observer, min_level="info")
    return AttackDemoResult(
        run=result, attack=attack, observer_authority=observer, log_text=log_text
    )
