"""Figure 10: consensus latency of the three protocols across bandwidths.

Reproduces the five panels (50 / 20 / 10 / 1 / 0.5 Mbit/s): for each panel,
one latency-vs-relay-count series per protocol, with failures marked.  The
shape to check against the paper: the current protocol fails once the relay
count exceeds what its connection timeouts allow at the given bandwidth, the
synchronous protocol fails much earlier (its vote packages are ~n× larger),
and ours keeps producing a consensus all the way down to 0.5 Mbit/s, merely
taking longer.

The grid routes through :class:`~repro.runtime.executor.SweepExecutor`: pass
``workers`` to fan the cells out over a process pool and/or ``cache`` to skip
cells whose results are already on disk.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.latency import LatencyGrid, sweep_latency
from repro.analysis.reporting import format_table
from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor

#: Bandwidth panels of Figure 10 (Mbit/s).
FIGURE10_BANDWIDTHS = (50.0, 20.0, 10.0, 1.0, 0.5)

#: Default (coarse) relay-count grid; the paper sweeps 1,000–10,000.
DEFAULT_RELAY_COUNTS = (1000, 4000, 7000, 10000)


def run_figure10(
    bandwidths_mbps: Sequence[float] = FIGURE10_BANDWIDTHS,
    relay_counts: Sequence[int] = DEFAULT_RELAY_COUNTS,
    protocols: Sequence[str] = ("current", "synchronous", "ours"),
    config: Optional[DirectoryProtocolConfig] = None,
    engine: str = "hotstuff",
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> LatencyGrid:
    """Run the Figure 10 grid through the sweep executor."""
    return sweep_latency(
        protocols=protocols,
        bandwidths_mbps=bandwidths_mbps,
        relay_counts=relay_counts,
        config=config,
        engine=engine,
        seed=seed,
        executor=executor,
        workers=workers,
        cache=cache,
    )


def render_figure10(grid: LatencyGrid) -> str:
    """Render one table per bandwidth panel."""
    sections = []
    for bandwidth in sorted(grid.bandwidths(), reverse=True):
        rows = []
        relay_counts = sorted(
            {cell.relay_count for cell in grid.cells if cell.bandwidth_mbps == bandwidth}
        )
        for relay_count in relay_counts:
            row = [relay_count]
            for protocol in ("current", "synchronous", "ours"):
                cells = [
                    cell
                    for cell in grid.series(protocol, bandwidth)
                    if cell.relay_count == relay_count
                ]
                if not cells:
                    row.append("-")
                elif not cells[0].success:
                    row.append("FAIL")
                else:
                    row.append("%.1f s" % (cells[0].latency_s or 0.0))
            rows.append(row)
        sections.append(
            format_table(
                ["Relays", "Current", "Synchronous", "Ours"],
                rows,
                title="Figure 10 panel: %.1f Mbit/s" % bandwidth,
            )
        )
    return "\n\n".join(sections)
