"""Figure 13 (beyond the paper): what the DDoS does to Tor's *users*.

The paper's Figures 1/10/11 stop at the authorities: the attack prevents (or
delays) a signed consensus.  The user-visible harm the paper gestures at —
millions of dir-clients bootstrapping from stale or missing consensuses —
needs the consensus-*distribution* layer: this experiment runs the Figure-1
attack (a majority of authorities flooded to ~zero usable bandwidth for the
first 300 s) with a cohort-aggregated client population fetching the signed
consensus through a directory-mirror tier, and reports the recovery curve
clients actually experience:

* the fraction of clients holding a fresh consensus by the end of the run,
* p50/p99 time-to-fresh-consensus and mean staleness-seconds per client,
* the fetch success rate (failed attempts are the "giving up downloading
  networkstatus" lines a real client logs).

Populations sweep 10k → 10M modeled clients across the three protocols,
plus an *extreme* row at 100M clients in 1000 cohorts — and the whole
standard grid repeats under ``transport="tcp"`` on the vector engine, so
the committed recovery curve also exists under real congestion control
(slow start, fast recovery) rather than the idealized ``fair`` split.  Cohort aggregation
(32 cohorts for the standard rows; see ``DESIGN-clients.md``) keeps the
10M-client cells at thousands of simulator events, so the whole
three-protocol 10M row regenerates in seconds — and the extreme row leans
on the vectorized core (batched wave draws + the vector transport engine)
to fit the same 60 s three-protocol budget at 10× the population and 31×
the cohort grid.  ``benchmarks/test_bench_clients.py`` asserts both budgets
and commits the numbers as ``BENCH_clients.json``.

The extreme row is also where the mirror tier's *capacity* becomes the
story: 256 mirrors serving 100M clients cannot push everyone a consensus
within the run window, so even the partial-synchrony protocol leaves most
clients stale at t=1800 — the recovering fraction, not recovery of
everyone, is the signal.

Cells run serially and in-process (never through a result cache) because the
committed payload carries wall-clock timings, exactly like the scaling
sweep.
"""

from __future__ import annotations

import argparse
import json
import resource
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.analysis.reporting import format_table
from repro.attack.ddos import majority_attack_plan
from repro.clients.workload import ClientWorkload
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec
from repro.simnet.flows import effective_shared_engine, use_shared_engine
from repro.utils.validation import ensure

#: Client populations plotted by default: 10k to 10M modeled clients.
DEFAULT_POPULATIONS = (10_000, 100_000, 1_000_000, 10_000_000)

#: Cohort count used at the standard populations (event cost tracks cohorts
#: × waves, not clients, which is the whole point of the aggregation).
DEFAULT_COHORT_COUNT = 32

#: The extreme row: 100M modeled clients in 1000 cohorts, run on the vector
#: engine.  Populations at or above this threshold default to the extreme
#: cohort grid.
EXTREME_POPULATION = 100_000_000
EXTREME_COHORT_COUNT = 1_000

#: Directory-mirror tier size (the live network serves clients through
#: thousands of relay caches; 256 keeps per-mirror load realistic for the
#: populations swept here).
DEFAULT_MIRROR_COUNT = 256

#: Format version of the ``BENCH_clients.json`` payload.  Version 2: the
#: grid gains the 100M-client/1000-cohort extreme row, and cells carry the
#: scheduler ``engine`` and ``peak_rss_mb`` (process high-water mark at
#: cell end, cheapest cells first — growth is attributable to scale).
#: Version 3: cells carry ``transport`` and the committed payload gains a
#: full ``transport="tcp"`` grid on the vector engine — the realistic
#: congestion-controlled recovery curve the tcp vector policy makes
#: affordable at the 10M-client row.
BENCH_FORMAT_VERSION = 3


def cohort_count_for(population: int) -> int:
    """The default cohort grid for ``population`` (extreme rows get 1000)."""
    return EXTREME_COHORT_COUNT if population >= EXTREME_POPULATION else DEFAULT_COHORT_COUNT


@dataclass(frozen=True)
class Figure13Cell:
    """One timed (protocol × population) run of the client-recovery grid."""

    protocol: str
    population: int
    cohort_count: int
    mirror_count: int
    run_success: bool
    fresh_fraction: float
    fetch_success_rate: Optional[float]
    time_to_fresh_p50_s: Optional[float]
    time_to_fresh_p99_s: Optional[float]
    mean_staleness_s: float
    first_publish_time_s: Optional[float]
    fetch_attempts: int
    wall_clock_s: float
    virtual_end_s: float
    engine: str = "lazy"
    peak_rss_mb: float = 0.0
    transport: str = "fair"


def default_client_workload(
    population: int,
    cohort_count: int = DEFAULT_COHORT_COUNT,
    mirror_count: int = DEFAULT_MIRROR_COUNT,
) -> ClientWorkload:
    """The workload every Figure 13 cell uses, scaled to ``population``.

    Clients poll for a fresh consensus every ~5 minutes on average (Poisson),
    give up an attempt after the 18 s directory connection timeout, and back
    off two minutes after a failure — roughly a live client's schedule while
    bootstrapping.  Batches split across 8 mirrors per wave (at the default
    32-cohort grid) so directory load spreads like independent client
    arrivals would.

    Two knobs coarsen with the cohort grid so simulated-flow count stays
    bounded as the grid grows — they change aggregation granularity, never
    the modeled client behaviour:

    * ``servers_per_wave`` shrinks to hold cohorts × servers-per-wave (the
      flows admitted per tick) near the default 256;
    * ``wave_interval_s`` doubles past an 8×-default grid, halving tick
      count the same way the 32-cohort default already trades arrival
      granularity for event cost.

    At the default 32 cohorts both knobs keep their historical values, so
    standard-row specs (and their cache hashes) are unchanged.
    """
    servers_per_wave = max(
        1, min(8, (8 * DEFAULT_COHORT_COUNT) // max(1, cohort_count))
    )
    wave_interval_s = 10.0 if cohort_count <= 8 * DEFAULT_COHORT_COUNT else 20.0
    return ClientWorkload(
        population=population,
        cohort_count=cohort_count,
        arrival="poisson",
        fetch_interval_s=300.0,
        wave_interval_s=wave_interval_s,
        retry_backoff_s=120.0,
        connection_timeout_s=18.0,
        servers_per_wave=servers_per_wave,
        mirror_count=mirror_count,
    )


def figure13_spec(
    protocol: str,
    population: int,
    cohort_count: int = DEFAULT_COHORT_COUNT,
    mirror_count: int = DEFAULT_MIRROR_COUNT,
    relay_count: int = 120,
    seed: int = 7,
    max_time: float = 1800.0,
    residual_bandwidth_mbps: float = 0.05,
    transport: str = "fair",
) -> RunSpec:
    """One cell's frozen spec: the Figure-1 attack plus the client workload."""
    attack = majority_attack_plan(residual_bandwidth_mbps=residual_bandwidth_mbps)
    return RunSpec(
        protocol=protocol,
        relay_count=relay_count,
        seed=seed,
        max_time=max_time,
        transport=transport,
        bandwidth_overrides=attack.bandwidth_overrides(),
        client_workload=default_client_workload(
            population, cohort_count=cohort_count, mirror_count=mirror_count
        ),
    )


def run_figure13(
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    cohort_count: Optional[int] = None,
    mirror_count: int = DEFAULT_MIRROR_COUNT,
    relay_count: int = 120,
    seed: int = 7,
    max_time: float = 1800.0,
    engine: Optional[str] = None,
    transport: str = "fair",
    progress: Optional[Callable[[Figure13Cell], None]] = None,
) -> List[Figure13Cell]:
    """Execute the grid serially, timing each cell's wall clock.

    ``cohort_count`` of None applies the per-population default
    (:func:`cohort_count_for`: 32, or 1000 at the extreme population).
    ``engine`` of None runs the ambient shared engine; the extreme row is
    normally run with ``engine="vector"`` (downgrading to lazy without
    numpy).  ``transport`` selects the link model — ``"tcp"`` runs the
    recovery curve under real congestion control, affordable at the large
    populations because tcp now has a vector policy.  ``progress`` (if
    given) fires after each cell — a 12-cell grid with 10M clients is not
    instant, and silence reads as a hang.
    """
    from repro.protocols.runner import execute_spec

    ensure(len(populations) > 0, "need at least one population")
    ensure(len(protocols) > 0, "need at least one protocol")
    cells: List[Figure13Cell] = []
    for population in populations:
        cell_cohorts = cohort_count if cohort_count is not None else cohort_count_for(population)
        for protocol in protocols:
            spec = figure13_spec(
                protocol,
                population,
                cohort_count=cell_cohorts,
                mirror_count=mirror_count,
                relay_count=relay_count,
                seed=seed,
                max_time=max_time,
                transport=transport,
            )
            with use_shared_engine(engine) if engine is not None else nullcontext():
                effective = effective_shared_engine(transport=transport)
                started = time.perf_counter()
                result = execute_spec(spec)
                elapsed = time.perf_counter() - started
            clients = result.client_summary
            cell = Figure13Cell(
                protocol=protocol,
                population=population,
                cohort_count=cell_cohorts,
                mirror_count=mirror_count,
                run_success=result.success,
                fresh_fraction=clients["fresh_fraction"],
                fetch_success_rate=clients["fetch_success_rate"],
                time_to_fresh_p50_s=clients["time_to_fresh_p50_s"],
                time_to_fresh_p99_s=clients["time_to_fresh_p99_s"],
                mean_staleness_s=clients["mean_staleness_s"],
                first_publish_time_s=clients["first_publish_time_s"],
                fetch_attempts=clients["fetch_attempts"],
                wall_clock_s=elapsed,
                virtual_end_s=result.end_time,
                engine=effective,
                peak_rss_mb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
                transport=transport,
            )
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return cells


def render_figure13(cells: Sequence[Figure13Cell]) -> str:
    """Render the client-recovery table (one row per protocol × population)."""
    rows = []
    for cell in cells:
        rows.append(
            (
                "{:,}".format(cell.population),
                cell.protocol,
                cell.transport,
                "ok" if cell.run_success else "FAIL",
                "%.1f%%" % (100.0 * cell.fresh_fraction),
                "%.0f s" % cell.time_to_fresh_p50_s
                if cell.time_to_fresh_p50_s is not None
                else "never",
                "%.0f s" % cell.time_to_fresh_p99_s
                if cell.time_to_fresh_p99_s is not None
                else "never",
                "%.0f s" % cell.mean_staleness_s,
                "%.1f%%" % (100.0 * cell.fetch_success_rate)
                if cell.fetch_success_rate is not None
                else "n/a",
                "%.1f s" % cell.wall_clock_s,
            )
        )
    return format_table(
        [
            "Clients",
            "Protocol",
            "Transport",
            "Consensus",
            "Fresh at end",
            "p50 fresh",
            "p99 fresh",
            "Staleness",
            "Fetch ok",
            "Wall clock",
        ],
        rows,
        title="Figure 13: client recovery under the 5-minute DDoS on 5 authorities",
    )


def write_bench_json(
    cells: Sequence[Figure13Cell], path: Union[str, Path] = "BENCH_clients.json"
) -> Path:
    """Write the grid's cells (metrics + wall clocks) to ``path``."""
    path = Path(path)
    payload = {
        "format": BENCH_FORMAT_VERSION,
        "cells": [asdict(cell) for cell in cells],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the grid, print the table, emit the JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_clients.json", help="output path for the JSON payload"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single-population smoke (1M clients, 32 cohorts, all three "
        "protocols) for CI wall-clock budgets",
    )
    parser.add_argument(
        "--populations",
        type=int,
        nargs="+",
        default=None,
        help="override the population grid",
    )
    parser.add_argument(
        "--no-extreme",
        action="store_true",
        help="skip the 100M-client/1000-cohort vector-engine row",
    )
    parser.add_argument(
        "--transport",
        default=None,
        help="run the grid on one link model only (default: the fair grid "
        "plus a full tcp grid on the vector engine)",
    )
    args = parser.parse_args(argv)
    extreme = not args.no_extreme
    if args.populations is not None:
        populations: Sequence[int] = tuple(args.populations)
        extreme = False
    elif args.quick:
        populations = (1_000_000,)
        extreme = False
    else:
        populations = DEFAULT_POPULATIONS

    def progress(cell: Figure13Cell) -> None:
        print(
            "cell done: %s @ %s clients transport=%s — fresh %.1f%%, %.1f s wall"
            % (
                cell.protocol,
                "{:,}".format(cell.population),
                cell.transport,
                100.0 * cell.fresh_fraction,
                cell.wall_clock_s,
            )
        )

    from repro.simnet.vector_sched import vector_available

    if args.transport is not None:
        cells = run_figure13(
            populations=populations, transport=args.transport, progress=progress
        )
        extreme = False
    else:
        cells = run_figure13(populations=populations, progress=progress)
        # The realistic-transport grid: the same populations under tcp
        # congestion control, on the vector engine (downgrading to lazy
        # without numpy) — the curve DESIGN-transport.md documents.
        cells += run_figure13(
            populations=populations,
            engine="vector",
            transport="tcp",
            progress=progress,
        )
    if extreme and not vector_available():
        print("skipping the 100M-client row: the vector engine needs numpy "
              "(install the [perf] extra)")
        extreme = False
    if extreme:
        # The vectorized-core showcase row: 100M clients, 1000 cohorts, on
        # the vector engine.
        cells += run_figure13(
            populations=(EXTREME_POPULATION,), engine="vector", progress=progress
        )
    print(render_figure13(cells))
    out = write_bench_json(cells, args.out)
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    raise SystemExit(main())
