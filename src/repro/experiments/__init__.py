"""One module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning structured
results and a ``render_*`` helper that prints the same rows/series the paper
reports.  The benchmark suite under ``benchmarks/`` calls these functions so
that ``pytest benchmarks/ --benchmark-only`` regenerates every artefact; the
examples under ``examples/`` reuse them for human-readable walkthroughs.

Every module that executes protocol runs (Figures 1/7/10/11, Table 1, the
ablations) describes them as :class:`~repro.runtime.spec.RunSpec` grids and
routes them through a :class:`~repro.runtime.executor.SweepExecutor`; pass
``executor=`` (or ``workers=`` / ``cache=`` where exposed) to parallelise
grids across processes and reuse cached cells between artefacts.

Index (design notes live in the DESIGN-*.md files at the repo root:
DESIGN-transport.md, DESIGN-faults.md, DESIGN-clients.md,
DESIGN-calibration.md):

========  =====================================================  =========================
Artefact  What it shows                                           Module
========  =====================================================  =========================
Figure 1  Authority log while 5 authorities are DDoS-ed           figure1_attack_log
Figure 6  Tor relay count over time (avg ≈ 7141.79)               figure6_relay_counts
Figure 7  Bandwidth required by the current protocol vs relays    figure7_bandwidth
§4.3      Attack cost ($0.074 per run, $53.28 per month)          cost_table
Figure 10 Latency of Current / Synchronous / Ours across          figure10_latency
          bandwidths and relay counts
Figure 11 Recovery latency of Ours after a 5-minute DDoS          figure11_recovery
Figure 12 Recovery latency under declarative fault mixes          figure12_faults
          (churn, partitions, loss, crash/Byzantine authorities)
Table 1   Design comparison and communication complexity          table1_complexity
Table 2   Round complexity of the sub-protocols                   table2_rounds
(extra)   Ablations: transport link model, agreement engine       ablations
(extra)   Scaling sweep: transport wall-clock at 10×-paper N      scaling_sweep
Figure 13 Client recovery under the DDoS, 10k–10M dir-clients    figure13_clients
========  =====================================================  =========================
"""

from repro.experiments.figure1_attack_log import AttackDemoResult, run_attack_demo
from repro.experiments.figure6_relay_counts import run_figure6, render_figure6
from repro.experiments.figure7_bandwidth import run_figure7, render_figure7
from repro.experiments.figure10_latency import run_figure10, render_figure10
from repro.experiments.figure11_recovery import Figure11Result, run_figure11, render_figure11
from repro.experiments.figure12_faults import (
    FaultMix,
    Figure12Result,
    default_fault_mixes,
    run_figure12,
    render_figure12,
)
from repro.experiments.figure13_clients import (
    Figure13Cell,
    default_client_workload,
    figure13_spec,
    render_figure13,
    run_figure13,
)
from repro.experiments.table1_complexity import run_table1, render_table1
from repro.experiments.table2_rounds import run_table2, render_table2
from repro.experiments.cost_table import run_cost_analysis, render_cost_analysis
from repro.experiments.ablations import run_scheduling_ablation, run_engine_ablation
from repro.experiments.scaling_sweep import (
    ScalingCell,
    headline_speedups,
    render_scaling,
    run_scaling_sweep,
    scaling_specs,
    speedup_at,
    write_bench_json,
)

__all__ = [
    "AttackDemoResult",
    "run_attack_demo",
    "run_figure6",
    "render_figure6",
    "run_figure7",
    "render_figure7",
    "run_figure10",
    "render_figure10",
    "Figure11Result",
    "run_figure11",
    "render_figure11",
    "FaultMix",
    "Figure12Result",
    "default_fault_mixes",
    "run_figure12",
    "render_figure12",
    "Figure13Cell",
    "default_client_workload",
    "figure13_spec",
    "run_figure13",
    "render_figure13",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_cost_analysis",
    "render_cost_analysis",
    "run_scheduling_ablation",
    "run_engine_ablation",
    "ScalingCell",
    "headline_speedups",
    "scaling_specs",
    "run_scaling_sweep",
    "render_scaling",
    "speedup_at",
    "write_bench_json",
]
