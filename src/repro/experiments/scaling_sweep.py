"""Scaling sweep: transport-model wall-clock cost beyond 10×-paper node counts.

The paper evaluates nine directory authorities — the live Tor configuration.
The ROADMAP's north star is a simulator that scales far beyond that, and the
limiting factor is the transport.  Two levers attack it, and this sweep
measures both:

* **Link model.**  Under a shared model every flow's rate couples through
  link occupancy; the ``latency-only`` model (see
  :mod:`repro.simnet.linkmodel`) removes the coupling entirely, at the
  stated cost of losing congestion (the mechanism behind the paper's DDoS
  results).  It is the fast model for large-N protocol-behaviour studies,
  not for bandwidth-sensitive figures.
* **Scheduler engine.**  The paper-faithful shared models run on four
  engines: the default lazy-advance heap-driven scheduler
  (:mod:`repro.simnet.shared_sched`, O(touched flows) per event), the
  pre-lazy global-recompute loop surviving as ``legacy``, the vectorized
  structure-of-arrays scheduler (:mod:`repro.simnet.vector_sched`,
  batch rate recompute over numpy slot arrays — requires the ``[perf]``
  extra, silently downgrading to lazy without it), and the
  partition-parallel conservative-PDES scheduler
  (:mod:`repro.simnet.parallel_sched`, region-sharded slot arrays with
  partition-gated scans; same numpy requirement and downgrade).  The sweep
  times ``fair`` under all four, so the committed ``BENCH_scaling.json``
  carries the legacy→lazy, lazy→vector, and vector→parallel speedup tables
  that ``benchmarks/test_bench_scaling.py`` asserts against.

The grid runs the same consensus spec at growing authority counts — up to
300, beyond 33× the paper's nine — under ``fair``, ``latency-only``, and
``tcp``.  ``latency-only`` (engine-independent) and ``fair`` on the vector
engine run at every count; ``fair`` on the lazy engine stops at 120, on
the legacy engine at 90, the counts where each scalar loop is still
affordable — the 300-authority shared-transport cells exist *because* the
vector engine makes them tractable — and on the parallel engine runs at
the two largest counts (120, 300), where sharding has links to gate.
``tcp`` runs at :data:`DEFAULT_TCP_COUNTS` on the lazy engine *and* (numpy
present) the vector engine, pricing per-flow congestion control against
the memoryless ``fair`` model and the scalar ack-tick loop against the
vector policy's cohort ticks.  Cells run serially and in-process (never through a result
cache) so the timings measure simulation cost, not cache or pool behaviour.
:func:`write_bench_json` emits the numbers (format 6: tcp vector cells up
to 120 authorities and the ``speedup_tcp_lazy_to_vector`` table, on top of
format 5's per-cell ``phases`` wall-clock buckets and
``non_transport_floor_fair``, format 4's parallel cells with per-cell
``workers`` and ``speedup_fair_vector_to_parallel``, format 3's
300-authority cells, per-cell ``engine`` and ``peak_rss_mb``, and
``speedup_fair_lazy_to_vector``).
"""

from __future__ import annotations

import argparse
import json
import resource
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import format_table
from repro.runtime.spec import RunSpec
from repro.simnet.flows import effective_shared_engine, use_shared_engine
from repro.utils import phases as phase_timers
from repro.utils.validation import ensure

#: Authority count evaluated throughout the paper (the live Tor network).
PAPER_AUTHORITY_COUNT = 9

#: Default sweep: paper scale, intermediate points, 10× paper scale, the
#: 120-authority point the lazy engine made affordable, and the
#: 300-authority stretch goal the vector engine makes affordable.
DEFAULT_AUTHORITY_COUNTS = (9, 30, 90, 120, 300)

#: Transport models compared by default: the fair shared model the figures
#: use, the sharing-free fast model, and the congestion-controlled ``tcp``
#: model (lazy engine only, at :data:`DEFAULT_TCP_COUNTS`).
DEFAULT_TRANSPORTS = ("fair", "latency-only", "tcp")

#: Counts at which ``fair`` is additionally timed on the legacy engine for
#: the old-vs-new speedup table.  120+ is deliberately absent: the legacy
#: loop's whole-run cost grows roughly quadratically with concurrency and
#: the point of the table is made at 90.
DEFAULT_LEGACY_FAIR_COUNTS = (9, 30, 90)

#: Counts at which ``fair`` runs on the lazy engine.  300 is deliberately
#: absent from the default: the scalar per-touched-flow loop takes minutes
#: there, and the lazy→vector speedup table makes its point at 120.
DEFAULT_LAZY_FAIR_COUNTS = (9, 30, 90, 120)

#: Counts at which ``tcp`` cells run — on the lazy engine and (numpy
#: present) the vector engine, so the committed snapshot carries the
#: lazy→vector tcp speedup table.  120 is the headline point: broadcast
#: waves there are wide enough for the vector policy's cohort ack ticks to
#: amortise, which is what the ≥1.5× bar in ``test_bench_scaling.py``
#: asserts.  The CI perf-smoke budget asserts the tcp@30 cells.
DEFAULT_TCP_COUNTS = (9, 30, 120)

#: Counts at which ``fair`` additionally runs on the partition-parallel
#: engine.  Small counts are deliberately absent: sharding pays a constant
#: coordination cost per event instant, which only amortises where the
#: per-instant touched sets are large.
DEFAULT_PARALLEL_FAIR_COUNTS = (120, 300)

#: Format version of the ``BENCH_scaling.json`` payload.  Version 2: cells
#: carry the scheduler ``engine`` ("lazy"/"legacy"), the default grid
#: reaches 120 authorities, and ``speedup_fair_legacy_to_lazy`` reports the
#: old-engine→new-engine wall-clock ratio per authority count.  Version 3:
#: the grid reaches 300 authorities (``fair`` there on the vector engine
#: only), cells carry ``peak_rss_mb``, and ``speedup_fair_lazy_to_vector``
#: reports the scalar→vectorized wall-clock ratio per authority count.
#: Version 4: ``fair`` additionally runs on the partition-parallel engine
#: at :data:`DEFAULT_PARALLEL_FAIR_COUNTS`, cells carry ``workers`` (the
#: effective partition-worker count, 1 for every in-process engine), and
#: ``speedup_fair_vector_to_parallel`` reports the vector→parallel
#: wall-clock ratio per authority count.  Version 5: cells carry ``phases``
#: (exclusive wall-clock buckets — transport / protocol / crypto /
#: client_wave / other — from :mod:`repro.utils.phases`; the attribution
#: adds ~1–2 % overhead, paid by every cell so the buckets always sum to
#: the recorded wall clock) and ``non_transport_floor_fair`` reports each
#: fair cell's non-transport bucket total per ``engine@N`` — the floor the
#: batched-dispatch work shrinks and the tripwire tests pin.  Version 6:
#: ``tcp`` grew a vector policy — tcp cells run on the lazy *and* vector
#: engines up to 120 authorities and ``speedup_tcp_lazy_to_vector``
#: reports the scalar-ack-tick→cohort-tick wall-clock ratio per count.
BENCH_FORMAT_VERSION = 6


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set size in MiB (``ru_maxrss``).

    A high-water mark, not a per-cell measurement: a cell's value is the
    largest footprint *any* cell so far has needed, which is exactly the
    capacity-planning number a benchmark consumer wants (the grid runs
    cheapest-first, so growth across cells is attributable to scale).
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass(frozen=True)
class ScalingCell:
    """One timed run of the scaling grid."""

    protocol: str
    transport: str
    authority_count: int
    relay_count: int
    success: bool
    wall_clock_s: float
    virtual_end_s: float
    messages_sent: int
    engine: str = "lazy"
    peak_rss_mb: float = 0.0
    workers: int = 1
    #: Exclusive wall-clock buckets (transport / protocol / crypto /
    #: client_wave / other) from :mod:`repro.utils.phases`; format 5.
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def non_transport_floor_s(self) -> float:
        """Seconds of wall clock outside the ``transport`` bucket."""
        return phase_timers.non_transport_total(self.phases)


def scaling_specs(
    authority_counts: Sequence[int] = DEFAULT_AUTHORITY_COUNTS,
    protocols: Sequence[str] = ("current",),
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    relay_count: int = 200,
    bandwidth_mbps: float = 250.0,
    seed: int = 7,
    max_time: float = 600.0,
) -> List[RunSpec]:
    """The scaling grid, authority count outermost, transport innermost."""
    ensure(len(authority_counts) > 0, "need at least one authority count")
    ensure(len(transports) > 0, "need at least one transport")
    return [
        RunSpec(
            protocol=protocol,
            relay_count=relay_count,
            bandwidth_mbps=bandwidth_mbps,
            seed=seed,
            transport=transport,
            authority_count=authority_count,
            max_time=max_time,
        )
        for authority_count in authority_counts
        for protocol in protocols
        for transport in transports
    ]


def _timed_cell(spec: RunSpec, engine: str) -> ScalingCell:
    from repro.protocols.runner import execute_spec
    from repro.simnet.partition import effective_worker_count

    with use_shared_engine(engine):
        # Record what actually ran: a vector request on a numpy-less install
        # — or for a transport without a vector policy (tcp) — executes
        # (and must be labelled as) the lazy engine.
        effective = effective_shared_engine(transport=spec.transport)
        # The effective partition-worker fan-out: capped by cores and the
        # partition count, so a 4-worker request on a 1-core container is
        # honestly recorded (and labelled by --progress) as 1.
        workers = effective_worker_count() if effective == "parallel" else 1
        result, buckets, elapsed = phase_timers.profile(execute_spec, spec)
    return ScalingCell(
        protocol=spec.protocol,
        transport=spec.transport,
        authority_count=spec.authority_count,
        relay_count=spec.relay_count,
        success=result.success,
        wall_clock_s=elapsed,
        virtual_end_s=result.end_time,
        messages_sent=result.stats.messages_sent,
        engine=effective,
        peak_rss_mb=_peak_rss_mb(),
        workers=workers,
        # Rounded to the microsecond: the JSON is committed, and sub-µs
        # noise would churn every regeneration diff.
        phases={name: round(value, 6) for name, value in buckets.items()},
    )


def run_scaling_sweep(
    authority_counts: Sequence[int] = DEFAULT_AUTHORITY_COUNTS,
    protocols: Sequence[str] = ("current",),
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    relay_count: int = 200,
    bandwidth_mbps: float = 250.0,
    seed: int = 7,
    max_time: float = 600.0,
    legacy_fair_counts: Sequence[int] = DEFAULT_LEGACY_FAIR_COUNTS,
    lazy_fair_counts: Optional[Sequence[int]] = None,
    tcp_counts: Sequence[int] = DEFAULT_TCP_COUNTS,
    parallel_fair_counts: Sequence[int] = DEFAULT_PARALLEL_FAIR_COUNTS,
    progress: Optional[Callable[[ScalingCell], None]] = None,
) -> List[ScalingCell]:
    """Execute the scaling grid serially, timing each cell's wall clock.

    ``latency-only`` cells (engine-independent) run on the default lazy
    engine at every count.  ``fair`` cells run per engine schedule: lazy at
    ``lazy_fair_counts`` (default: every requested count ≤ 120), legacy at
    ``legacy_fair_counts``, vector at *every* count — the vector engine
    is what makes the largest shared-transport cells affordable at all —
    and parallel at ``parallel_fair_counts`` (default: the two largest
    grid points).
    On a numpy-less install the vector and parallel cells are *skipped*,
    not downgraded:
    a downgraded cell would be a duplicate lazy run, and at 300 authorities
    minutes of scalar loop for no information.
    ``tcp`` cells run on the lazy engine and (numpy present) the vector
    engine, only at ``tcp_counts`` — counts outside it are skipped, so
    small custom grids stay tcp-free unless asked.
    ``progress`` (if given) fires after each cell — the largest cells take
    minutes on slow machines and silence reads as a hang.
    """
    from repro.simnet.vector_sched import vector_available
    if lazy_fair_counts is None:
        lazy_fair_counts = tuple(
            count for count in authority_counts if count <= max(DEFAULT_LAZY_FAIR_COUNTS)
        )
    cells: List[ScalingCell] = []

    def _run(spec: RunSpec, engine: str) -> None:
        cell = _timed_cell(spec, engine)
        cells.append(cell)
        if progress is not None:
            progress(cell)

    for spec in scaling_specs(
        authority_counts=authority_counts,
        protocols=protocols,
        transports=transports,
        relay_count=relay_count,
        bandwidth_mbps=bandwidth_mbps,
        seed=seed,
        max_time=max_time,
    ):
        if spec.transport == "tcp":
            if spec.authority_count in tcp_counts:
                _run(spec, "lazy")
                if vector_available():
                    _run(spec, "vector")
            continue
        if spec.transport != "fair":
            _run(spec, "lazy")
            continue
        if spec.authority_count in lazy_fair_counts:
            _run(spec, "lazy")
        if spec.authority_count in legacy_fair_counts:
            _run(spec, "legacy")
        if vector_available():
            _run(spec, "vector")
            if spec.authority_count in parallel_fair_counts:
                _run(spec, "parallel")
    return cells


def _cell_lookup(
    cells: Sequence[ScalingCell], authority_count: int, protocol: str
) -> Dict[Tuple[str, str], ScalingCell]:
    return {
        (cell.transport, cell.engine): cell
        for cell in cells
        if cell.authority_count == authority_count and cell.protocol == protocol
    }


def speedup_at(
    cells: Sequence[ScalingCell],
    authority_count: int,
    protocol: str = "current",
    baseline: str = "fair",
    fast: str = "latency-only",
) -> Optional[float]:
    """Wall-clock speedup of ``fast`` over ``baseline`` at one grid point.

    Compares like with like: both cells on the default (lazy) engine.
    """
    by_key = _cell_lookup(cells, authority_count, protocol)
    baseline_cell = by_key.get((baseline, "lazy"))
    fast_cell = by_key.get((fast, "lazy"))
    if baseline_cell is None or fast_cell is None or fast_cell.wall_clock_s <= 0:
        return None
    return baseline_cell.wall_clock_s / fast_cell.wall_clock_s


def engine_speedup_at(
    cells: Sequence[ScalingCell],
    authority_count: int,
    protocol: str = "current",
    transport: str = "fair",
) -> Optional[float]:
    """Legacy-engine → lazy-engine wall-clock speedup at one grid point."""
    by_key = _cell_lookup(cells, authority_count, protocol)
    legacy = by_key.get((transport, "legacy"))
    lazy = by_key.get((transport, "lazy"))
    if legacy is None or lazy is None or lazy.wall_clock_s <= 0:
        return None
    return legacy.wall_clock_s / lazy.wall_clock_s


def headline_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's fair→latency-only speedup as (protocol, N, speedup)."""
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = speedup_at(cells, authority_count, protocol)
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def engine_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's legacy→lazy fair speedup as (protocol, N, speedup)."""
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = engine_speedup_at(cells, authority_count, protocol)
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def vector_speedup_at(
    cells: Sequence[ScalingCell],
    authority_count: int,
    protocol: str = "current",
    transport: str = "fair",
) -> Optional[float]:
    """Lazy-engine → vector-engine wall-clock speedup at one grid point.

    None where either engine's cell is absent — including numpy-less runs,
    where vector requests execute (and are labelled) as lazy cells.
    """
    by_key = _cell_lookup(cells, authority_count, protocol)
    lazy = by_key.get((transport, "lazy"))
    vector = by_key.get((transport, "vector"))
    if lazy is None or vector is None or vector.wall_clock_s <= 0:
        return None
    return lazy.wall_clock_s / vector.wall_clock_s


def vector_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's lazy→vector fair speedup as (protocol, N, speedup)."""
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = vector_speedup_at(cells, authority_count, protocol)
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def tcp_vector_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's lazy→vector *tcp* speedup as (protocol, N, speedup).

    The tcp counterpart of :func:`vector_speedups`: the ratio prices the
    scalar per-flow ack-tick loop against the vector policy's cohort
    ticks, and the committed snapshot's 120-authority entry is the ≥1.5×
    bar ``benchmarks/test_bench_scaling.py`` asserts.
    """
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = vector_speedup_at(
                cells, authority_count, protocol, transport="tcp"
            )
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def parallel_speedup_at(
    cells: Sequence[ScalingCell],
    authority_count: int,
    protocol: str = "current",
    transport: str = "fair",
) -> Optional[float]:
    """Vector-engine → parallel-engine wall-clock speedup at one grid point.

    None where either engine's cell is absent — including numpy-less runs
    (both engines skipped) and counts outside the parallel schedule.
    """
    by_key = _cell_lookup(cells, authority_count, protocol)
    vector = by_key.get((transport, "vector"))
    parallel = by_key.get((transport, "parallel"))
    if vector is None or parallel is None or parallel.wall_clock_s <= 0:
        return None
    return vector.wall_clock_s / parallel.wall_clock_s


def parallel_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's vector→parallel fair speedup as (protocol, N, speedup)."""
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = parallel_speedup_at(cells, authority_count, protocol)
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def render_scaling(cells: Sequence[ScalingCell]) -> str:
    """Render the sweep as a table with per-N speedup annotations."""
    rows = []
    for cell in cells:
        rows.append(
            (
                str(cell.authority_count),
                cell.protocol,
                cell.transport,
                cell.engine,
                "ok" if cell.success else "FAIL",
                "%.2f s" % cell.wall_clock_s,
                "%.0f s" % cell.virtual_end_s,
                str(cell.messages_sent),
            )
        )
    table = format_table(
        [
            "Authorities",
            "Protocol",
            "Transport",
            "Engine",
            "Outcome",
            "Wall clock",
            "Virtual",
            "Messages",
        ],
        rows,
        title="Scaling sweep: transport wall-clock cost vs. node count",
    )
    notes = [
        "N=%d %s: latency-only is %.1fx faster than fair"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in headline_speedups(cells)
    ]
    notes.extend(
        "N=%d %s: lazy fair engine is %.1fx faster than legacy"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in engine_speedups(cells)
    )
    notes.extend(
        "N=%d %s: vector fair engine is %.1fx faster than lazy"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in vector_speedups(cells)
    )
    notes.extend(
        "N=%d %s: vector tcp engine is %.1fx faster than lazy"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in tcp_vector_speedups(cells)
    )
    notes.extend(
        "N=%d %s: parallel fair engine is %.2fx the vector engine"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in parallel_speedups(cells)
    )
    return table + ("\n" + "\n".join(notes) if notes else "")


def write_bench_json(
    cells: Sequence[ScalingCell], path: Union[str, Path] = "BENCH_scaling.json"
) -> Path:
    """Write the sweep (cells + headline speedup tables) to ``path``."""
    path = Path(path)
    transport_speedups = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in headline_speedups(cells)
    }
    legacy_to_lazy = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in engine_speedups(cells)
    }
    lazy_to_vector = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in vector_speedups(cells)
    }
    tcp_lazy_to_vector = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in tcp_vector_speedups(cells)
    }
    vector_to_parallel = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in parallel_speedups(cells)
    }
    # The non-transport floor per fair cell, keyed engine@N: the seconds a
    # faster flow scheduler cannot remove.  Format 5's headline table — the
    # batched-dispatch work is judged by this shrinking across snapshots.
    floor_fair = {
        "%s@%d" % (cell.engine, cell.authority_count): round(
            cell.non_transport_floor_s, 6
        )
        for cell in cells
        if cell.transport == "fair" and cell.phases
    }
    payload = {
        "format": BENCH_FORMAT_VERSION,
        "paper_authority_count": PAPER_AUTHORITY_COUNT,
        "cells": [asdict(cell) for cell in cells],
        "speedup_fair_to_latency_only": transport_speedups,
        "speedup_fair_legacy_to_lazy": legacy_to_lazy,
        "speedup_fair_lazy_to_vector": lazy_to_vector,
        "speedup_tcp_lazy_to_vector": tcp_lazy_to_vector,
        "speedup_fair_vector_to_parallel": vector_to_parallel,
        "non_transport_floor_fair": floor_fair,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the sweep, print the table, emit the JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_scaling.json", help="output path for the JSON payload"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-N smoke (9, 18, and 30 authorities; lazy + vector "
        "fair cells, no legacy; tcp at 9 and 30) for CI wall-clock budgets",
    )
    args = parser.parse_args(argv)

    def progress(cell: ScalingCell) -> None:
        # Parallel cells carry their effective fan-out: a 4-worker request
        # on a 1-core machine honestly reads "workers=1".
        label = " workers=%d" % cell.workers if cell.engine == "parallel" else ""
        print(
            "cell done: %s@%d transport=%s engine=%s%s — %.2f s wall"
            % (
                cell.protocol,
                cell.authority_count,
                cell.transport,
                cell.engine,
                label,
                cell.wall_clock_s,
            )
        )

    if args.quick:
        cells = run_scaling_sweep(
            authority_counts=(9, 18, 30), legacy_fair_counts=(), progress=progress
        )
    else:
        cells = run_scaling_sweep(progress=progress)
    print(render_scaling(cells))
    out = write_bench_json(cells, args.out)
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    raise SystemExit(main())
