"""Scaling sweep: transport-model wall-clock cost at 10×-paper node counts.

The paper evaluates nine directory authorities — the live Tor configuration.
The ROADMAP's north star is a simulator that scales far beyond that, and the
limiting factor is the transport: under a shared link model every flow event
re-rates flows coupled through link occupancy, so per-event cost grows with
concurrency and whole-run cost roughly quadratically with it.  The
``latency-only`` link model (see :mod:`repro.simnet.linkmodel`) removes the
coupling entirely, turning every flow event into O(1) work.

This sweep measures that directly: the same consensus runs at growing
authority counts — up to 10× the paper's nine — under ``fair`` and
``latency-only``, timing each cell's wall clock.  Cells run serially and
in-process (never through a result cache) so the timings measure simulation
cost, not cache or pool behaviour.  :func:`write_bench_json` emits the
numbers, and the headline fair→latency-only speedups, to
``BENCH_scaling.json``; ``benchmarks/test_bench_scaling.py`` asserts the
≥3× speedup at the 10× point and CI runs a small-N smoke with a wall-clock
budget.

Accuracy caveat, stated plainly: ``latency-only`` is a *fast* model, not a
free lunch — with no bandwidth sharing, congestion effects (the mechanism
behind the paper's DDoS results) disappear, so it is for large-N protocol
behaviour studies, not for bandwidth-sensitive figures.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import format_table
from repro.runtime.spec import RunSpec
from repro.utils.validation import ensure

#: Authority count evaluated throughout the paper (the live Tor network).
PAPER_AUTHORITY_COUNT = 9

#: Default sweep: paper scale, an intermediate point, and 10× paper scale.
DEFAULT_AUTHORITY_COUNTS = (9, 30, 90)

#: Transport models compared by default: the TCP-like shared model the
#: figures use, and the sharing-free fast model.
DEFAULT_TRANSPORTS = ("fair", "latency-only")

#: Format version of the ``BENCH_scaling.json`` payload.
BENCH_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScalingCell:
    """One timed run of the scaling grid."""

    protocol: str
    transport: str
    authority_count: int
    relay_count: int
    success: bool
    wall_clock_s: float
    virtual_end_s: float
    messages_sent: int


def scaling_specs(
    authority_counts: Sequence[int] = DEFAULT_AUTHORITY_COUNTS,
    protocols: Sequence[str] = ("current",),
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    relay_count: int = 200,
    bandwidth_mbps: float = 250.0,
    seed: int = 7,
    max_time: float = 600.0,
) -> List[RunSpec]:
    """The scaling grid, authority count outermost, transport innermost."""
    ensure(len(authority_counts) > 0, "need at least one authority count")
    ensure(len(transports) > 0, "need at least one transport")
    return [
        RunSpec(
            protocol=protocol,
            relay_count=relay_count,
            bandwidth_mbps=bandwidth_mbps,
            seed=seed,
            transport=transport,
            authority_count=authority_count,
            max_time=max_time,
        )
        for authority_count in authority_counts
        for protocol in protocols
        for transport in transports
    ]


def run_scaling_sweep(
    authority_counts: Sequence[int] = DEFAULT_AUTHORITY_COUNTS,
    protocols: Sequence[str] = ("current",),
    transports: Sequence[str] = DEFAULT_TRANSPORTS,
    relay_count: int = 200,
    bandwidth_mbps: float = 250.0,
    seed: int = 7,
    max_time: float = 600.0,
) -> List[ScalingCell]:
    """Execute the scaling grid serially, timing each cell's wall clock."""
    from repro.protocols.runner import execute_spec

    cells: List[ScalingCell] = []
    for spec in scaling_specs(
        authority_counts=authority_counts,
        protocols=protocols,
        transports=transports,
        relay_count=relay_count,
        bandwidth_mbps=bandwidth_mbps,
        seed=seed,
        max_time=max_time,
    ):
        started = time.perf_counter()
        result = execute_spec(spec)
        elapsed = time.perf_counter() - started
        cells.append(
            ScalingCell(
                protocol=spec.protocol,
                transport=spec.transport,
                authority_count=spec.authority_count,
                relay_count=spec.relay_count,
                success=result.success,
                wall_clock_s=elapsed,
                virtual_end_s=result.end_time,
                messages_sent=result.stats.messages_sent,
            )
        )
    return cells


def speedup_at(
    cells: Sequence[ScalingCell],
    authority_count: int,
    protocol: str = "current",
    baseline: str = "fair",
    fast: str = "latency-only",
) -> Optional[float]:
    """Wall-clock speedup of ``fast`` over ``baseline`` at one grid point."""
    by_transport: Dict[str, ScalingCell] = {
        cell.transport: cell
        for cell in cells
        if cell.authority_count == authority_count and cell.protocol == protocol
    }
    if baseline not in by_transport or fast not in by_transport:
        return None
    fast_wall = by_transport[fast].wall_clock_s
    if fast_wall <= 0:
        return None
    return by_transport[baseline].wall_clock_s / fast_wall


def headline_speedups(
    cells: Sequence[ScalingCell],
) -> List[Tuple[str, int, float]]:
    """Every grid point's fair→latency-only speedup as (protocol, N, speedup)."""
    results: List[Tuple[str, int, float]] = []
    for authority_count in sorted({cell.authority_count for cell in cells}):
        for protocol in sorted({cell.protocol for cell in cells}):
            speedup = speedup_at(cells, authority_count, protocol)
            if speedup is not None:
                results.append((protocol, authority_count, speedup))
    return results


def render_scaling(cells: Sequence[ScalingCell]) -> str:
    """Render the sweep as a table with per-N speedup annotations."""
    rows = []
    for cell in cells:
        rows.append(
            (
                str(cell.authority_count),
                cell.protocol,
                cell.transport,
                "ok" if cell.success else "FAIL",
                "%.2f s" % cell.wall_clock_s,
                "%.0f s" % cell.virtual_end_s,
                str(cell.messages_sent),
            )
        )
    table = format_table(
        ["Authorities", "Protocol", "Transport", "Outcome", "Wall clock", "Virtual", "Messages"],
        rows,
        title="Scaling sweep: transport wall-clock cost vs. node count",
    )
    notes = [
        "N=%d %s: latency-only is %.1fx faster than fair"
        % (authority_count, protocol, speedup)
        for protocol, authority_count, speedup in headline_speedups(cells)
    ]
    return table + ("\n" + "\n".join(notes) if notes else "")


def write_bench_json(
    cells: Sequence[ScalingCell], path: Union[str, Path] = "BENCH_scaling.json"
) -> Path:
    """Write the sweep (cells + headline speedups) to ``path``."""
    path = Path(path)
    speedups = {
        "%s@%d" % (protocol, authority_count): speedup
        for protocol, authority_count, speedup in headline_speedups(cells)
    }
    payload = {
        "format": BENCH_FORMAT_VERSION,
        "paper_authority_count": PAPER_AUTHORITY_COUNT,
        "cells": [asdict(cell) for cell in cells],
        "speedup_fair_to_latency_only": speedups,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the sweep, print the table, emit the JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_scaling.json", help="output path for the JSON payload"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-N smoke (9 and 18 authorities) for CI wall-clock budgets",
    )
    args = parser.parse_args(argv)
    authority_counts = (9, 18) if args.quick else DEFAULT_AUTHORITY_COUNTS
    cells = run_scaling_sweep(authority_counts=authority_counts)
    print(render_scaling(cells))
    out = write_bench_json(cells, args.out)
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    raise SystemExit(main())
