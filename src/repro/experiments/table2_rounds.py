"""Table 2: round complexity of the new protocol's sub-protocols.

Two rounds of dissemination, the agreement engine's good-case rounds (five
for the HotStuff variant the paper uses), and two rounds of aggregation — a
total of nine, matching Appendix B.  The table is produced both from the
static engine metadata and cross-checked against an actual ICPS run driven in
lock-step by the benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.complexity import RoundComplexityRow, round_complexity_table
from repro.analysis.reporting import format_table


def run_table2(engine: str = "hotstuff") -> List[RoundComplexityRow]:
    """Build Table 2 rows for the chosen agreement engine."""
    return round_complexity_table(engine=engine)


def render_table2(rows: Sequence[RoundComplexityRow]) -> str:
    """Render Table 2 as text."""
    return format_table(
        ["Sub-protocol", "Rounds"],
        [(row.sub_protocol, row.rounds) for row in rows],
        title="Table 2: rounds of each sub-protocol (no GST, honest leader)",
    )
