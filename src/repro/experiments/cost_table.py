"""Section 4.3: the attack-cost estimate ($0.074 per run, $53.28 per month).

Combines the Figure 7 bandwidth requirement with the Jansen et al. stressor
price to reproduce the paper's headline cost numbers.  The bandwidth
requirement can either be supplied (e.g. measured by the Figure 7 search) or
default to the paper's 10 Mbit/s figure.
"""

from __future__ import annotations


from repro.analysis.reporting import format_table
from repro.attack.cost import AttackCostEstimate, AttackCostModel


def run_cost_analysis(
    required_bandwidth_mbps: float = 10.0,
    authority_link_mbps: float = 250.0,
    targets: int = 5,
    attack_seconds_per_run: float = 300.0,
) -> AttackCostEstimate:
    """Compute the attack-cost breakdown."""
    model = AttackCostModel(
        authority_link_mbps=authority_link_mbps,
        required_bandwidth_mbps=required_bandwidth_mbps,
        targets=targets,
        attack_seconds_per_run=attack_seconds_per_run,
    )
    return model.estimate()


def render_cost_analysis(estimate: AttackCostEstimate) -> str:
    """Render the cost breakdown as text."""
    rows = [
        ("Attack traffic per target", "%.0f Mbit/s" % estimate.traffic_per_target_mbps),
        ("Targets (majority of authorities)", str(estimate.targets)),
        ("Attack time per consensus run", "%.0f s" % estimate.attack_seconds_per_run),
        ("Cost per disrupted run", "$%.3f" % estimate.cost_per_run_usd),
        ("Cost per day", "$%.2f" % estimate.cost_per_day_usd),
        ("Cost per month (30 days)", "$%.2f" % estimate.cost_per_month_usd),
    ]
    return format_table(
        ["Quantity", "Value"],
        rows,
        title="Section 4.3: estimated cost of keeping the Tor directory protocol down",
    )
