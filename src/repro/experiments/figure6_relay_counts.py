"""Figure 6: the number of Tor relays over time (average ≈ 7141.79).

Tor Metrics is an online service; the reproduction synthesises a daily series
with the same time span, qualitative shape, and — by construction — the same
average, then reports the monthly averages that make up the plotted line.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.reporting import format_table
from repro.netgen.metrics import RelayCountSeries, TOR_METRICS_AVERAGE, synthesize_relay_counts


def run_figure6(seed: int = 2022) -> RelayCountSeries:
    """Synthesize the Figure 6 relay-count series."""
    return synthesize_relay_counts(seed=seed)


def render_figure6(series: RelayCountSeries) -> str:
    """Render the monthly averages plus the headline average."""
    rows: List[Tuple[str, float]] = series.monthly_averages()
    table = format_table(
        ["Month", "Average relays"],
        rows,
        title="Figure 6: Tor relay count over time (synthetic Tor Metrics series)",
    )
    summary = (
        "\nSeries average: %.2f (paper reports %.2f)\nMin: %.0f  Max: %.0f"
        % (series.average, TOR_METRICS_AVERAGE, series.minimum, series.maximum)
    )
    return table + summary
