"""Bandwidth requirements of the current directory protocol (Figure 7).

Figure 7 answers: *how much usable bandwidth must an attacked authority keep
for the directory protocol to survive?*  The paper measures this on Shadow by
throttling 5 of the 9 authorities and sweeping the throttle until the
protocol fails.  :func:`required_bandwidth_mbps` does the same on our
simulator with a binary search whose probes are
:class:`~repro.runtime.spec.RunSpec` instances executed through a
:class:`~repro.runtime.executor.SweepExecutor` (so a warm
:class:`~repro.runtime.cache.ResultCache` makes repeated searches free);
:func:`analytic_required_bandwidth_mbps` is the closed-form first-order model
(eight concurrent vote transfers must fit inside the directory connection
timeout) used to cross-check the simulation and to pick search bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.directory.vote import VOTE_HEADER_BYTES
from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import RunSpec, overrides_from_config
from repro.utils.units import bytes_per_s_to_mbps
from repro.utils.validation import ensure

#: Default per-relay vote-entry size (bytes) used by the closed-form model.
DEFAULT_PER_RELAY_BYTES = 390


@dataclass(frozen=True)
class BandwidthRequirementResult:
    """Result of the Figure 7 search at one relay count."""

    relay_count: int
    required_mbps: float
    search_low_mbps: float
    search_high_mbps: float
    iterations: int


def analytic_required_bandwidth_mbps(
    relay_count: int,
    per_relay_bytes: int = DEFAULT_PER_RELAY_BYTES,
    connection_timeout: float = 18.0,
    authority_count: int = 9,
) -> float:
    """First-order model: (n-1) concurrent vote pushes must finish within the timeout."""
    ensure(relay_count >= 0, "relay_count must be non-negative")
    vote_bytes = VOTE_HEADER_BYTES + relay_count * per_relay_bytes
    bytes_per_second = (authority_count - 1) * vote_bytes / connection_timeout
    return bytes_per_s_to_mbps(bytes_per_second)


def required_bandwidth_mbps(
    relay_count: int,
    attacked_count: int = 5,
    baseline_bandwidth_mbps: float = 250.0,
    config: Optional[DirectoryProtocolConfig] = None,
    tolerance_mbps: float = 0.5,
    max_iterations: int = 12,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> BandwidthRequirementResult:
    """Binary-search the minimum bandwidth of the attacked authorities.

    ``attacked_count`` authorities are limited to the candidate bandwidth
    while the rest keep ``baseline_bandwidth_mbps``; the search returns the
    smallest bandwidth (within ``tolerance_mbps``) at which the current
    protocol still produces a majority-signed consensus.  Each probe is a
    :class:`RunSpec` executed through ``executor`` (a fresh serial executor
    by default), so an attached cache is consulted per probe.
    """
    ensure(relay_count >= 1, "relay_count must be positive")
    config = config or DirectoryProtocolConfig()
    executor = executor or SweepExecutor()
    base_spec = RunSpec(
        protocol="current",
        relay_count=relay_count,
        bandwidth_mbps=baseline_bandwidth_mbps,
        seed=seed,
        max_time=4 * config.round_duration + 60,
        config_overrides=overrides_from_config(config),
    )
    attacked_ids = tuple(range(attacked_count))

    analytic = analytic_required_bandwidth_mbps(
        relay_count, connection_timeout=config.connection_timeout
    )
    low = 0.05
    high = max(4.0 * analytic, 2.0)

    def succeeds(mbps: float) -> bool:
        probe = base_spec.with_attacked_bandwidth(attacked_ids, mbps)
        return executor.run_one(probe).success

    # Widen the bracket if needed.
    iterations = 0
    while not succeeds(high) and high < baseline_bandwidth_mbps:
        high = min(high * 2, baseline_bandwidth_mbps)
        iterations += 1

    search_low, search_high = low, high
    while high - low > tolerance_mbps and iterations < max_iterations:
        mid = (low + high) / 2
        if succeeds(mid):
            high = mid
        else:
            low = mid
        iterations += 1

    return BandwidthRequirementResult(
        relay_count=relay_count,
        required_mbps=high,
        search_low_mbps=search_low,
        search_high_mbps=search_high,
        iterations=iterations,
    )


def bandwidth_requirement_sweep(
    relay_counts: Sequence[int],
    attacked_count: int = 5,
    config: Optional[DirectoryProtocolConfig] = None,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
    cache: Optional[ResultCache] = None,
) -> List[BandwidthRequirementResult]:
    """Run the Figure 7 search for every relay count in ``relay_counts``.

    The searches share one executor (binary-search probes are sequential
    within a relay count, but every probe lands in the shared cache).
    """
    executor = executor or SweepExecutor(cache=cache)
    return [
        required_bandwidth_mbps(
            relay_count,
            attacked_count=attacked_count,
            config=config,
            seed=seed,
            executor=executor,
        )
        for relay_count in relay_counts
    ]
