"""Analyses that turn simulation runs into the paper's tables and figures.

* :mod:`repro.analysis.bandwidth` — the Figure 7 search: the minimum
  bandwidth an attacked authority needs for the current protocol to still
  succeed, as a function of the relay count; plus the closed-form model used
  for sanity checks.
* :mod:`repro.analysis.complexity` — the Table 1 communication-complexity
  models and the Table 2 round counts, both analytic and as measured from
  simulator byte accounting.
* :mod:`repro.analysis.latency` — the Figure 10/11 sweep helpers.
* :mod:`repro.analysis.reporting` — plain-text table/series rendering used by
  the benchmarks and examples to print paper-style output.
"""

from repro.analysis.bandwidth import (
    BandwidthRequirementResult,
    analytic_required_bandwidth_mbps,
    bandwidth_requirement_sweep,
    required_bandwidth_mbps,
)
from repro.analysis.complexity import (
    ComplexityRow,
    RoundComplexityRow,
    communication_complexity_bytes,
    complexity_comparison_table,
    round_complexity_table,
)
from repro.analysis.latency import LatencyCell, LatencyGrid, latency_sweep_spec, sweep_latency
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "BandwidthRequirementResult",
    "analytic_required_bandwidth_mbps",
    "bandwidth_requirement_sweep",
    "required_bandwidth_mbps",
    "ComplexityRow",
    "RoundComplexityRow",
    "communication_complexity_bytes",
    "complexity_comparison_table",
    "round_complexity_table",
    "LatencyCell",
    "LatencyGrid",
    "latency_sweep_spec",
    "sweep_latency",
    "format_series",
    "format_table",
]
