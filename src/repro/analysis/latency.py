"""Latency sweeps across bandwidths, relay counts, and protocols (Figures 10/11).

:func:`sweep_latency` reifies the (protocol × bandwidth × relay count) grid
as a :class:`~repro.runtime.spec.SweepSpec` and hands it to a
:class:`~repro.runtime.executor.SweepExecutor` (serial, or parallel via
``workers``, cached via ``cache``), collecting each cell's success flag and
latency with the same accounting as the paper: summed per-round network time
for the two lock-step protocols, wall-clock time to a majority-signed
consensus for ours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import SweepSpec, overrides_from_config
from repro.utils.validation import ensure


@dataclass(frozen=True)
class LatencyCell:
    """One point of the Figure 10 grid."""

    protocol: str
    bandwidth_mbps: float
    relay_count: int
    success: bool
    latency_s: Optional[float]


@dataclass
class LatencyGrid:
    """All cells of a latency sweep, with convenience accessors."""

    cells: List[LatencyCell] = field(default_factory=list)

    def add(self, cell: LatencyCell) -> None:
        """Append one measurement."""
        self.cells.append(cell)

    def series(self, protocol: str, bandwidth_mbps: float) -> List[LatencyCell]:
        """One figure line: a protocol's latency vs. relay count at one bandwidth."""
        return sorted(
            (
                cell
                for cell in self.cells
                if cell.protocol == protocol and abs(cell.bandwidth_mbps - bandwidth_mbps) < 1e-9
            ),
            key=lambda cell: cell.relay_count,
        )

    def failure_threshold(self, protocol: str, bandwidth_mbps: float) -> Optional[int]:
        """Smallest relay count at which the protocol fails (None if it never fails)."""
        for cell in self.series(protocol, bandwidth_mbps):
            if not cell.success:
                return cell.relay_count
        return None

    def protocols(self) -> List[str]:
        """Protocols present in the grid."""
        return sorted({cell.protocol for cell in self.cells})

    def bandwidths(self) -> List[float]:
        """Bandwidth settings present in the grid."""
        return sorted({cell.bandwidth_mbps for cell in self.cells})


def latency_sweep_spec(
    protocols: Sequence[str] = ("current", "synchronous", "ours"),
    bandwidths_mbps: Sequence[float] = (50.0, 20.0, 10.0, 1.0, 0.5),
    relay_counts: Sequence[int] = (1000, 4000, 7000, 10000),
    config: Optional[DirectoryProtocolConfig] = None,
    max_time: float = 2000.0,
    seed: int = 7,
    engine: str = "hotstuff",
    transport: str = "fair",
) -> SweepSpec:
    """The Figure 10 grid as a reified sweep specification."""
    ensure(len(protocols) > 0, "need at least one protocol")
    return SweepSpec.grid(
        "figure10-latency",
        protocols=protocols,
        bandwidths_mbps=bandwidths_mbps,
        relay_counts=relay_counts,
        seed=seed,
        engine=engine,
        transport=transport,
        max_time=max_time,
        config_overrides=overrides_from_config(config),
    )


def sweep_latency(
    protocols: Sequence[str] = ("current", "synchronous", "ours"),
    bandwidths_mbps: Sequence[float] = (50.0, 20.0, 10.0, 1.0, 0.5),
    relay_counts: Sequence[int] = (1000, 4000, 7000, 10000),
    config: Optional[DirectoryProtocolConfig] = None,
    max_time: float = 2000.0,
    seed: int = 7,
    engine: str = "hotstuff",
    transport: str = "fair",
    executor: Optional[SweepExecutor] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> LatencyGrid:
    """Run the Figure 10 grid through the sweep executor and collect latencies."""
    sweep = latency_sweep_spec(
        protocols=protocols,
        bandwidths_mbps=bandwidths_mbps,
        relay_counts=relay_counts,
        config=config,
        max_time=max_time,
        seed=seed,
        engine=engine,
        transport=transport,
    )
    executor = executor or SweepExecutor(workers=workers, cache=cache)
    grid = LatencyGrid()
    for spec, result in zip(sweep.runs, executor.run(sweep)):
        grid.add(
            LatencyCell(
                protocol=spec.protocol,
                bandwidth_mbps=spec.bandwidth_mbps,
                relay_count=spec.relay_count,
                success=result.success,
                latency_s=result.latency,
            )
        )
    return grid
