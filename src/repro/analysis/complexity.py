"""Communication and round complexity (Tables 1 and 2).

Table 1 compares the three directory protocols' network model, security, and
communication complexity; Table 2 lists the round counts of the new
protocol's sub-protocols.  Both are reproduced two ways:

* **analytically** — closed-form byte counts as a function of ``n`` (number
  of authorities), ``d`` (document size), and ``κ`` (signature size), using
  the big-O expressions from the paper with explicit constants; and
* **empirically** — measured bytes from the simulator's per-run transfer
  accounting, which the Table 1 benchmark prints next to the analytic values
  so the scaling claims can be checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.consensus import ENGINE_REGISTRY
from repro.crypto.signatures import SIGNATURE_SIZE_BYTES
from repro.utils.validation import ensure


@dataclass(frozen=True)
class ComplexityRow:
    """One row of Table 1."""

    protocol: str
    network_model: str
    security: str
    complexity_expression: str
    estimated_bytes: float
    measured_bytes: Optional[float] = None


@dataclass(frozen=True)
class RoundComplexityRow:
    """One row of Table 2."""

    sub_protocol: str
    rounds: str


def communication_complexity_bytes(
    protocol: str,
    n: int,
    document_bytes: float,
    signature_bytes: float = SIGNATURE_SIZE_BYTES,
) -> float:
    """Closed-form total communication (bytes) for one protocol run.

    The expressions instantiate the paper's Table 1 asymptotics with unit
    constants:

    * current:      n²·d + n²·κ
    * synchronous:  n³·d + n⁴·κ   (every vote packs all n lists, Dolev–Strong relays)
    * ours:         n²·d + n⁴·κ   (dissemination + HotStuff over O(n²κ) input)
    """
    ensure(n >= 1, "n must be positive")
    ensure(document_bytes >= 0, "document size must be non-negative")
    if protocol == "current":
        return n * n * document_bytes + n * n * signature_bytes
    if protocol == "synchronous":
        return n ** 3 * document_bytes + n ** 4 * signature_bytes
    if protocol == "ours":
        return n * n * document_bytes + n ** 4 * signature_bytes
    raise ValueError("unknown protocol %r" % protocol)


def complexity_comparison_table(
    n: int = 9,
    document_bytes: float = 3_000_000.0,
    signature_bytes: float = SIGNATURE_SIZE_BYTES,
    measured: Optional[Dict[str, float]] = None,
) -> List[ComplexityRow]:
    """Build Table 1 rows (optionally annotated with measured bytes)."""
    measured = measured or {}
    rows = [
        ComplexityRow(
            protocol="Current",
            network_model="Bounded Synchrony",
            security="Insecure (attacks monitored)",
            complexity_expression="O(n^2 d + n^2 k)",
            estimated_bytes=communication_complexity_bytes("current", n, document_bytes, signature_bytes),
            measured_bytes=measured.get("current"),
        ),
        ComplexityRow(
            protocol="Synchronous (Luo et al.)",
            network_model="Bounded Synchrony",
            security="Secure (Interactive Consistency)",
            complexity_expression="O(n^3 d + n^4 k)",
            estimated_bytes=communication_complexity_bytes("synchronous", n, document_bytes, signature_bytes),
            measured_bytes=measured.get("synchronous"),
        ),
        ComplexityRow(
            protocol="Ours (Partial Synchrony)",
            network_model="Partial Synchrony",
            security="Secure (IC under Partial Synchrony)",
            complexity_expression="O(n^2 d + n^4 k)",
            estimated_bytes=communication_complexity_bytes("ours", n, document_bytes, signature_bytes),
            measured_bytes=measured.get("ours"),
        ),
    ]
    return rows


def round_complexity_table(engine: str = "hotstuff") -> List[RoundComplexityRow]:
    """Build Table 2 rows plus the end-to-end total for the chosen engine."""
    engine_cls = ENGINE_REGISTRY[engine]
    engine_rounds = engine_cls.good_case_rounds
    rows = [
        RoundComplexityRow(sub_protocol="Dissemination", rounds="2"),
        RoundComplexityRow(sub_protocol="Agreement (%s)" % engine_cls.name, rounds=str(engine_rounds)),
        RoundComplexityRow(sub_protocol="Aggregation", rounds="2"),
        RoundComplexityRow(sub_protocol="Total", rounds=str(2 + engine_rounds + 2)),
    ]
    return rows
