"""Plain-text rendering of tables and series.

The benchmarks regenerate every table and figure of the paper as text: rows
for tables, ``x -> y`` series for figures.  Keeping the renderer here avoids
each benchmark re-implementing column alignment.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    materialised: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[index]) for index, value in enumerate(values))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in materialised)
    return "\n".join(parts)


def format_series(
    x_label: str,
    y_label: str,
    points: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an x → y series (one figure line) as text."""
    rows = [(x, y) for x, y, *rest in [tuple(point) for point in points]]
    return format_table([x_label, y_label], rows, title=title)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)
