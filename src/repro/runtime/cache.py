"""Content-addressed on-disk cache of protocol-run summaries.

A :class:`ResultCache` maps a :class:`~repro.runtime.spec.RunSpec`'s content
hash to the JSON summary of its :class:`~repro.protocols.base.ProtocolRunResult`
(see ``ProtocolRunResult.summary()``).  Because equal specs describe
bit-identical simulations, a warm cache makes repeated sweeps — re-rendering
a figure, re-running a benchmark, widening a grid — near-free: only the new
cells execute.

The cache stores plain dicts, not result objects, so it has no import-time
dependency on the protocol layer and its files are stable, diffable JSON.
Corrupted or version-mismatched entries read as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.runtime.spec import RunSpec
from repro.utils.validation import ensure

#: On-disk entry format version; bump when the summary layout changes.
#: Version 2: summaries carry fault accounting (``stats.messages_dropped``
#: and the ``faults`` block) and specs serialize their fault plan.
#: Version 3: specs serialize the transport model (``transport`` replaces
#: ``scheduling``, spec format v3); older entries read as misses.
#: Version 4: the lazy-advance shared transport became the default engine
#: (spec format v4) — summaries for equal fair/fifo specs differ from v3
#: builds at float-rounding level, so v3 entries must read as misses
#: rather than mis-hit with stale trajectories.
#: Version 5: specs may carry a ``client_workload`` (spec format v5) and
#: summaries a ``clients`` block (result summary v3); older entries read
#: as misses.
#: Version 6: tcp grew Reno fast retransmit/recovery (every lossy tcp
#: trajectory differs from the Tahoe-era v5 build) and a vector policy —
#: v5 vector-request entries were keyed as lazy under the old downgrade,
#: so *all* v5 entries must read as misses rather than mis-hit tcp runs.
CACHE_FORMAT_VERSION = 6


class ResultCache:
    """Spec-hash → run-summary store backed by a directory of JSON files."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------
    def path_for(self, spec: RunSpec) -> Path:
        """The file that does/would hold ``spec``'s cached summary.

        The shared-scheduler engine is an execution flag, not a spec field,
        but fair/fifo summaries differ between engines at float-rounding
        level — so the non-default engine stores under a suffixed name.
        Runs under ``REPRO_SHARED_ENGINE=legacy`` (the conformance knob)
        therefore never hit entries produced by default runs, or vice versa.
        The *effective* engine is what matters: a ``vector`` request on a
        numpy-less install — or for a shared model without a vector policy
        (third-party models; fair/fifo/tcp all ship one) — runs the lazy
        engine and must hit lazy entries, while a tcp vector run stores
        under the ``.vector`` suffix like any other vectorized model.  The
        partition-parallel engine additionally keys on its partition count:
        trajectories agree across partition counts only to float rounding,
        so a 2-partition run must never hit a 4-partition entry (and the
        1-partition configuration *is* the lazy engine, which
        ``effective_shared_engine`` already reports as ``"lazy"``).
        """
        from repro.simnet.flows import effective_shared_engine

        digest = spec.spec_hash()
        engine = effective_shared_engine(transport=spec.transport)
        if engine == "parallel":
            from repro.simnet.partition import resolve_partition_count

            engine = "parallel%d" % resolve_partition_count()
        suffix = "" if engine == "lazy" else ".%s" % engine
        return self.root / digest[:2] / ("%s%s.json" % (digest, suffix))

    # -- store/load --------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The cached summary for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_FORMAT_VERSION:
            return None
        summary = entry.get("summary")
        return summary if isinstance(summary, dict) else None

    def put(self, spec: RunSpec, summary: Dict[str, Any]) -> Path:
        """Store ``summary`` for ``spec`` (atomic write; returns the path)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "spec": spec.to_dict(),
            "summary": summary,
        }
        # Write-then-rename so parallel writers never expose a torn file.
        descriptor, temp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance -------------------------------------------------------
    def __contains__(self, spec: RunSpec) -> bool:
        return self.get(spec) is not None

    def _entry_paths(self) -> Iterator[Path]:
        return self.root.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_entries: int) -> int:
        """Evict least-recently-written entries down to ``max_entries``.

        LRU is approximated by file modification time (``put`` rewrites an
        entry's file, refreshing it).  Entries that vanish mid-prune — a
        concurrent ``clear`` or another pruner — are skipped, and concurrent
        writers' ``*.tmp`` staging files are never touched (only ``*.json``
        entries are considered).  Returns how many entries were removed;
        a cache at or under the limit is a no-op.
        """
        ensure(max_entries >= 0, "max_entries must be non-negative")
        stamped = []
        for path in self._entry_paths():
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue  # removed concurrently
        excess = len(stamped) - max_entries
        if excess <= 0:
            return 0
        stamped.sort(key=lambda entry: (entry[0], str(entry[1])))
        removed = 0
        for _mtime, path in stamped[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue  # removed concurrently
        return removed
