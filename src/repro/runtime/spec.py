"""Run specifications: frozen, hashable descriptions of protocol runs.

Every figure/table of the paper is a grid of *independent* protocol runs, so
run configuration is reified into data:

* :class:`RunSpec` — everything one run needs (protocol, engine, relay count,
  bandwidth, seed, transport model, timeout overrides, per-authority
  bandwidth overrides).  Specs are frozen dataclasses: hashable, picklable
  across process boundaries, and content-addressable via
  :meth:`RunSpec.spec_hash`.  The ``transport`` field selects a registered
  link model (see :mod:`repro.simnet.linkmodel`) and joins the spec hash, so
  runs under different transport models cache independently.
* :class:`BandwidthOverride` — a declarative replacement of one authority's
  bandwidth schedule (baseline rate plus throttling windows), which is how
  DDoS attacks and the Figure 7 search are expressed at the spec level.
* :class:`~repro.faults.plan.FaultPlan` (attached via ``fault_plan``) — the
  declarative fault layer: partitions, message loss, latency jitter,
  crash/restart windows, Byzantine authorities.  Plans participate in
  :meth:`RunSpec.key` exactly like bandwidth overrides do, so a faulted run
  hashes differently from its fault-free twin and caches independently.
* :class:`SweepSpec` — a named grid of RunSpecs, built with
  :meth:`SweepSpec.grid` in the (bandwidth × relay count × protocol) order
  the paper's figures use.

The module deliberately imports nothing from :mod:`repro.protocols` at module
level (the protocol runner imports *us*); the only lazy touch point is
:meth:`RunSpec.protocol_config`, which materialises a
``DirectoryProtocolConfig`` from the spec's override pairs.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.clients.workload import ClientWorkload
from repro.faults.plan import EMPTY_FAULT_PLAN, FaultPlan
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.linkmodel import link_model_names
from repro.utils.validation import ensure, ensure_type

#: Names accepted by the protocol runner, matching the paper's legend.
PROTOCOL_NAMES = ("current", "synchronous", "ours")

#: Default cap on how many relays are materialised per vote in large sweeps.
DEFAULT_CONTENT_RELAY_CAP = 120

#: Serialization format version written by :meth:`RunSpec.to_dict`.
#: Version 2 added the declarative ``fault_plan``.  Version 3 renamed the
#: ``scheduling`` field to ``transport`` (validated against the link-model
#: registry); :meth:`RunSpec.from_dict` still reads v2 dicts.  Version 4
#: has the *same field layout* as v3 — the bump marks the lazy-advance
#: shared transport becoming the default engine, after which equal specs
#: produce float trajectories that differ from v3 builds at rounding level
#: (summary-level equivalence is pinned by the old-vs-new conformance
#: properties; golden traces were regenerated, GOLDEN format 2).
#: Version 5 added the optional ``client_workload`` (the consensus-
#: distribution layer).  The workload joins :meth:`RunSpec.key` only when
#: present, so specs *without* one hash exactly as they did under v4.
#: :meth:`RunSpec.from_dict` reads v2 through v4 dicts unchanged.
SPEC_FORMAT_VERSION = 5


@dataclass(frozen=True)
class BandwidthOverride:
    """Declarative replacement of one authority's bandwidth schedule.

    Attributes
    ----------
    authority_id:
        The authority whose link this override replaces.
    base_mbps:
        Baseline link capacity outside all windows (Mbit/s).
    windows:
        ``(start, end, mbps)`` throttling windows applied on top of the
        baseline — the spec-level form of a DDoS attack window.
    """

    authority_id: int
    base_mbps: float
    windows: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        ensure(self.authority_id >= 0, "authority_id must be non-negative")
        ensure(self.base_mbps > 0, "base_mbps must be positive")
        windows = tuple(
            tuple(float(part) for part in window) for window in self.windows
        )
        for window in windows:
            ensure(
                len(window) == 3,
                "bandwidth windows must be (start, end, mbps) triples, got %r" % (window,),
            )
            start, end, mbps = window
            ensure(start >= 0, "bandwidth window start must be non-negative, got %r" % (start,))
            ensure(end > start, "bandwidth window end must be after its start, got %r" % (window,))
            ensure(mbps >= 0, "bandwidth window rate must be non-negative, got %r" % (mbps,))
        object.__setattr__(self, "windows", windows)

    def schedule(self) -> BandwidthSchedule:
        """Materialise this override as a simulator bandwidth schedule."""
        schedule = BandwidthSchedule.constant_mbps(self.base_mbps)
        for start, end, mbps in self.windows:
            schedule = schedule.with_window_mbps(start, end, mbps)
        return schedule

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "authority_id": self.authority_id,
            "base_mbps": self.base_mbps,
            "windows": [list(window) for window in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BandwidthOverride":
        """Inverse of :meth:`to_dict`."""
        return cls(
            authority_id=int(data["authority_id"]),
            base_mbps=float(data["base_mbps"]),
            windows=tuple(tuple(window) for window in data.get("windows", ())),
        )


def _canonical_value(value: Any) -> Any:
    """Normalize a config-override value for hashing.

    ``DirectoryProtocolConfig(connection_timeout=30)`` and ``...=30.0``
    compare equal, so their specs must hash equally too: ints and floats
    collapse to float (bools excepted — they are ints but mean flags).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


def overrides_from_config(config: Any) -> Tuple[Tuple[str, Any], ...]:
    """Reduce a ``DirectoryProtocolConfig`` to its non-default field pairs.

    The pairs are sorted by field name so that two configs with the same
    values always produce the same spec hash.  ``None`` maps to no overrides.
    """
    if config is None:
        return ()
    default = type(config)()
    return tuple(
        sorted(
            (field_.name, getattr(config, field_.name))
            for field_ in dataclasses.fields(config)
            if getattr(config, field_.name) != getattr(default, field_.name)
        )
    )


@dataclass(frozen=True)
class RunSpec:
    """A frozen, hashable description of one directory-protocol run.

    Two equal specs describe bit-identical simulations: the runner derives
    every stochastic input from ``seed`` and the spec fields, so a spec's
    content hash can address a cached result.
    """

    protocol: str
    relay_count: int
    bandwidth_mbps: float = 250.0
    seed: int = 7
    engine: str = "hotstuff"
    transport: str = "fair"
    authority_count: int = 9
    content_relay_cap: int = DEFAULT_CONTENT_RELAY_CAP
    max_time: float = 3600.0
    delta: float = 30.0
    view_timeout: float = 30.0
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    bandwidth_overrides: Tuple[BandwidthOverride, ...] = ()
    fault_plan: FaultPlan = EMPTY_FAULT_PLAN
    #: Dir-client population fetching the signed consensus (the consensus-
    #: distribution layer); None keeps the run client-free and the spec hash
    #: identical to pre-v5 builds.
    client_workload: Optional[ClientWorkload] = None

    def __post_init__(self) -> None:
        ensure(
            self.protocol in PROTOCOL_NAMES,
            "unknown protocol %r; expected one of %r" % (self.protocol, PROTOCOL_NAMES),
        )
        ensure(self.relay_count >= 1, "relay_count must be at least 1")
        ensure(self.bandwidth_mbps > 0, "bandwidth_mbps must be positive")
        ensure(
            self.transport in link_model_names(),
            "unknown transport %r; expected one of %r"
            % (self.transport, link_model_names()),
        )
        ensure(self.authority_count >= 1, "authority_count must be at least 1")
        ensure(self.max_time > 0, "max_time must be positive")
        object.__setattr__(
            self,
            "config_overrides",
            tuple(sorted((str(name), value) for name, value in self.config_overrides)),
        )
        object.__setattr__(self, "bandwidth_overrides", tuple(self.bandwidth_overrides))
        for override in self.bandwidth_overrides:
            ensure(
                override.authority_id < self.authority_count,
                "bandwidth override references unknown authority id %d (run has %d authorities)"
                % (override.authority_id, self.authority_count),
            )
        ensure_type(self.fault_plan, FaultPlan, "fault_plan")
        self.fault_plan.validate_for(self.authority_count)
        if self.client_workload is not None:
            ensure_type(self.client_workload, ClientWorkload, "client_workload")

    # -- derived configuration --------------------------------------------
    def protocol_config(self):
        """The ``DirectoryProtocolConfig`` this spec's overrides describe."""
        from repro.protocols.base import DirectoryProtocolConfig

        return DirectoryProtocolConfig(**dict(self.config_overrides))

    # -- deprecated aliases ------------------------------------------------
    @property
    def scheduling(self) -> str:
        """Deprecated pre-v3 name of :attr:`transport` (kept for callers)."""
        return self.transport

    # -- spec derivation ---------------------------------------------------
    def derive(self, **changes: Any) -> "RunSpec":
        """Return a copy with the given fields replaced (validated anew).

        Accepts the deprecated ``scheduling`` keyword as an alias for
        ``transport``.
        """
        if "scheduling" in changes:
            changes["transport"] = changes.pop("scheduling")
        return replace(self, **changes)

    def with_config(self, config: Any) -> "RunSpec":
        """Return a copy whose config overrides mirror ``config``."""
        return replace(self, config_overrides=overrides_from_config(config))

    def with_overrides(self, *overrides: BandwidthOverride) -> "RunSpec":
        """Return a copy with extra per-authority bandwidth overrides appended."""
        return replace(
            self, bandwidth_overrides=self.bandwidth_overrides + tuple(overrides)
        )

    def with_attacked_bandwidth(
        self, authority_ids: Sequence[int], mbps: float
    ) -> "RunSpec":
        """Return a copy where ``authority_ids`` get a constant ``mbps`` link."""
        return self.with_overrides(
            *(
                BandwidthOverride(authority_id=authority_id, base_mbps=mbps)
                for authority_id in authority_ids
            )
        )

    def with_faults(self, plan: FaultPlan) -> "RunSpec":
        """Return a copy with ``plan`` merged into the existing fault plan."""
        return replace(self, fault_plan=self.fault_plan.merged(plan))

    def with_clients(self, workload: Optional[ClientWorkload]) -> "RunSpec":
        """Return a copy with ``workload`` as its dir-client population."""
        return replace(self, client_workload=workload)

    # -- hashing and serialization ----------------------------------------
    def key(self) -> Tuple:
        """Canonical tuple of everything that defines this run.

        The client workload is appended *only when present*: a spec without
        one keys (and therefore hashes and caches) exactly as it did before
        the distribution layer existed.
        """
        base = (
            self.protocol,
            self.relay_count,
            float(self.bandwidth_mbps),
            self.seed,
            self.engine,
            self.transport,
            self.authority_count,
            self.content_relay_cap,
            float(self.max_time),
            float(self.delta),
            float(self.view_timeout),
            tuple((name, _canonical_value(value)) for name, value in self.config_overrides),
            tuple(
                (o.authority_id, float(o.base_mbps), o.windows)
                for o in self.bandwidth_overrides
            ),
            self.fault_plan.key(),
        )
        if self.client_workload is None:
            return base
        return base + (self.client_workload.key(),)

    def spec_hash(self) -> str:
        """Stable content hash: equal specs hash equally across processes."""
        material = repr(self.key()).encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        data = {
            "format": SPEC_FORMAT_VERSION,
            "protocol": self.protocol,
            "relay_count": self.relay_count,
            "bandwidth_mbps": self.bandwidth_mbps,
            "seed": self.seed,
            "engine": self.engine,
            "transport": self.transport,
            "authority_count": self.authority_count,
            "content_relay_cap": self.content_relay_cap,
            "max_time": self.max_time,
            "delta": self.delta,
            "view_timeout": self.view_timeout,
            "config_overrides": [[name, value] for name, value in self.config_overrides],
            "bandwidth_overrides": [o.to_dict() for o in self.bandwidth_overrides],
            "fault_plan": self.fault_plan.to_dict(),
        }
        if self.client_workload is not None:
            data["client_workload"] = self.client_workload.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            protocol=data["protocol"],
            relay_count=int(data["relay_count"]),
            bandwidth_mbps=float(data["bandwidth_mbps"]),
            seed=int(data["seed"]),
            engine=data["engine"],
            # v2 dicts (and the committed golden specs) carry "scheduling".
            transport=data.get("transport", data.get("scheduling", "fair")),
            authority_count=int(data["authority_count"]),
            content_relay_cap=int(data["content_relay_cap"]),
            max_time=float(data["max_time"]),
            delta=float(data["delta"]),
            view_timeout=float(data["view_timeout"]),
            config_overrides=tuple(
                (name, value) for name, value in data.get("config_overrides", ())
            ),
            bandwidth_overrides=tuple(
                BandwidthOverride.from_dict(entry)
                for entry in data.get("bandwidth_overrides", ())
            ),
            fault_plan=FaultPlan.from_dict(data.get("fault_plan", {})),
            client_workload=(
                ClientWorkload.from_dict(data["client_workload"])
                if data.get("client_workload")
                else None
            ),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of :class:`RunSpec` instances."""

    name: str
    runs: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        ensure(bool(self.name), "sweep needs a name")
        runs = tuple(self.runs)
        ensure(len(runs) >= 1, "sweep %r needs at least one run" % (self.name,))
        for run in runs:
            ensure_type(run, RunSpec, "sweep member")
        object.__setattr__(self, "runs", runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.runs)

    def sweep_hash(self) -> str:
        """Content hash over the ordered member specs."""
        material = repr(tuple(spec.spec_hash() for spec in self.runs)).encode("utf-8")
        return hashlib.sha256(material).hexdigest()

    @classmethod
    def grid(
        cls,
        name: str,
        protocols: Sequence[str],
        bandwidths_mbps: Sequence[float],
        relay_counts: Sequence[int],
        **common: Any,
    ) -> "SweepSpec":
        """Build the (bandwidth × relay count × protocol) product grid.

        The iteration order matches the paper's figure loops: bandwidth
        outermost, relay count next, protocol innermost.  ``common`` keyword
        arguments are forwarded to every :class:`RunSpec`.
        """
        ensure(len(protocols) > 0, "need at least one protocol")
        ensure(len(bandwidths_mbps) > 0, "need at least one bandwidth")
        ensure(len(relay_counts) > 0, "need at least one relay count")
        runs: List[RunSpec] = []
        for bandwidth in bandwidths_mbps:
            for relay_count in relay_counts:
                for protocol in protocols:
                    runs.append(
                        RunSpec(
                            protocol=protocol,
                            relay_count=relay_count,
                            bandwidth_mbps=bandwidth,
                            **common,
                        )
                    )
        return cls(name=name, runs=tuple(runs))
