"""Run orchestration: reified run configuration, sweep execution, caching.

The paper's evaluation is a pile of independent protocol runs (Figures 6, 7,
10, 11; Tables 1, 2; the ablations).  This package turns "one run" into data
and "many runs" into an executor:

* :class:`~repro.runtime.spec.RunSpec` / :class:`~repro.runtime.spec.SweepSpec`
  — frozen, hashable, picklable descriptions of runs and grids of runs;
* :class:`~repro.runtime.executor.SweepExecutor` — executes grids serially or
  over a ``multiprocessing`` pool with deterministic per-run seeding (results
  are identical for any worker count);
* :class:`~repro.runtime.cache.ResultCache` — a content-addressed on-disk
  store of run summaries, so repeated sweeps execute nothing.

Every experiment module, analysis sweep, benchmark, and example routes its
protocol runs through this layer; it is also the seam future sharding or
multi-backend execution plugs into.
"""

from repro.clients.workload import ClientWorkload
from repro.faults.plan import AuthorityFault, FaultPlan, LinkFault
from repro.runtime.spec import (
    DEFAULT_CONTENT_RELAY_CAP,
    PROTOCOL_NAMES,
    BandwidthOverride,
    RunSpec,
    SweepSpec,
    overrides_from_config,
)
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor, execute_spec_summary

__all__ = [
    "DEFAULT_CONTENT_RELAY_CAP",
    "PROTOCOL_NAMES",
    "AuthorityFault",
    "BandwidthOverride",
    "ClientWorkload",
    "FaultPlan",
    "LinkFault",
    "RunSpec",
    "SweepSpec",
    "overrides_from_config",
    "ResultCache",
    "SweepExecutor",
    "execute_spec_summary",
]
