"""Sweep execution: serial or multi-process fan-out of RunSpec grids.

:class:`SweepExecutor` is the single entry point every experiment, analysis
sweep, benchmark, and example routes protocol runs through:

* **cache first** — with a :class:`~repro.runtime.cache.ResultCache` attached,
  cells whose spec hash is already on disk are never re-executed;
* **deterministic parallelism** — cache misses fan out over a
  ``multiprocessing`` pool; every stochastic input of a run is derived from
  its spec (notably ``spec.seed``), so results are bit-identical regardless
  of worker count or completion order, and are always returned in submission
  order;
* **cheap transport** — workers return compact
  ``ProtocolRunResult.summary()`` dicts rather than full results (which drag
  a whole trace log across the process boundary).

Duplicate specs inside one sweep are executed once and fanned back out to
every position that requested them.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec, SweepSpec
from repro.utils.validation import ensure

Sweep = Union[SweepSpec, Sequence[RunSpec]]

#: Progress callback: ``on_result(index, spec, summary, cached)`` fires once
#: per sweep position as its summary becomes available — ``index`` is the
#: position in the submitted sweep, ``summary`` the raw summary dict, and
#: ``cached`` whether it came from the result cache instead of an execution.
OnResult = Callable[[int, RunSpec, Dict[str, Any], bool], None]


def execute_spec_summary(spec: RunSpec) -> Dict[str, Any]:
    """Execute one run and return its compact summary (the pool worker).

    Imports the protocol layer lazily: the runtime package must stay
    importable without it, and ``fork`` workers inherit the parent's modules
    anyway.
    """
    from repro.protocols.runner import execute_spec

    return execute_spec(spec).summary()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits loaded modules); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def cap_partition_workers() -> None:
    """Pin the parallel engine to in-process mode inside a sweep worker.

    A sweep already fans runs out across ``SweepExecutor.workers`` processes;
    if each run then spawned its own ``REPRO_PARALLEL_WORKERS`` partition
    workers, a 4×4 configuration would contend 16 processes for the machine
    (nested pool explosion).  Sweep workers therefore run the parallel
    engine in-process — but with the *same partition count* the parent
    would have used: ``REPRO_PARALLEL_WORKERS`` doubles as the default
    partition count, so capping it alone would silently change partition
    trajectories and cache keys between serial and parallel sweeps.  The
    resolved count is pinned explicitly before the worker cap is applied.

    Runs as a pool initializer (once per worker process); safe to call
    in-process too, where it is a deliberate no-op unless a parallel worker
    pool was actually requested.
    """
    from repro.simnet.partition import (
        PARTITION_ENV,
        WORKERS_ENV,
        resolve_partition_count,
    )

    if os.environ.get(WORKERS_ENV) is None:
        return  # nothing requested: nothing to cap, and no env to distort
    os.environ[PARTITION_ENV] = str(resolve_partition_count())
    os.environ[WORKERS_ENV] = "1"


def sweep_worker_setup() -> None:
    """Pool initializer run once in every sweep worker process.

    Beyond capping nested parallelism (:func:`cap_partition_workers`), drops
    the process-global caches a ``fork`` worker inherits from the parent —
    notably the aggregation relay-map memo, whose entries the parent built
    for *its* runs and which the child would otherwise keep alive (and
    un-share, copy-on-write) for the whole sweep.
    """
    cap_partition_workers()
    from repro.directory.aggregate import clear_aggregation_caches

    clear_aggregation_caches()


class SweepExecutor:
    """Executes RunSpec grids serially or across a worker pool.

    Parameters
    ----------
    workers:
        Pool size; 1 executes in-process (no pool, no pickling).
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely; misses
        are stored after execution, so a repeated sweep is pure cache reads.
    on_result:
        Optional progress callback (see :data:`OnResult`), stdlib-only:
        fires in-process once per sweep position as its summary becomes
        available — cache hits during the scan, then executions as they
        finish — so a 120-authority or 10M-client grid is not silent for
        minutes.  A per-call ``on_result`` to :meth:`run`/:meth:`run_summaries`
        overrides the constructor default.

    The counters ``executed_runs`` / ``cache_hits`` accumulate across calls
    (a warm-cache re-run is asserted as ``executed_runs == 0`` in the tests).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        on_result: Optional[OnResult] = None,
    ) -> None:
        ensure(workers >= 1, "workers must be at least 1")
        self.workers = workers
        self.cache = cache
        self.on_result = on_result
        self.executed_runs = 0
        self.cache_hits = 0

    # -- public API --------------------------------------------------------
    def run(
        self, sweep: Sweep, on_result: Optional[OnResult] = None
    ) -> List["ProtocolRunResult"]:
        """Execute ``sweep`` and return results in submission order."""
        from repro.protocols.base import ProtocolRunResult

        return [
            ProtocolRunResult.from_summary(summary)
            for summary in self.run_summaries(sweep, on_result=on_result)
        ]

    def run_one(self, spec: RunSpec, full: bool = False) -> "ProtocolRunResult":
        """Execute a single spec.

        With ``full=True`` the run always executes in-process and the
        returned result keeps its trace log and live stats (needed by the
        Figure 1 log extraction); the compact summary is still written to the
        cache so later sweeps hit it.
        """
        from repro.protocols.base import ProtocolRunResult

        if full:
            from repro.protocols.runner import execute_spec

            result = execute_spec(spec)
            self.executed_runs += 1
            if self.cache is not None:
                self.cache.put(spec, result.summary())
            # Full runs are observable like any other execution.
            if self.on_result is not None:
                self.on_result(0, spec, result.summary(), False)
            return result
        return ProtocolRunResult.from_summary(self.run_summaries([spec])[0])

    def run_summaries(
        self, sweep: Sweep, on_result: Optional[OnResult] = None
    ) -> List[Dict[str, Any]]:
        """Like :meth:`run` but returns the raw summary dicts."""
        on_result = on_result if on_result is not None else self.on_result
        specs = list(sweep.runs) if isinstance(sweep, SweepSpec) else list(sweep)
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)

        # Resolve cache hits and collapse duplicate specs to one execution.
        pending: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                self.cache_hits += 1
                if on_result is not None:
                    on_result(index, spec, cached, True)
            else:
                pending.setdefault(spec, []).append(index)

        if pending:
            unique = list(pending)
            for spec, summary in self._execute(unique):
                self.executed_runs += 1
                if self.cache is not None:
                    self.cache.put(spec, summary)
                for index in pending[spec]:
                    results[index] = summary
                    if on_result is not None:
                        on_result(index, spec, summary, False)
        return results  # type: ignore[return-value]

    # -- internals ---------------------------------------------------------
    def _execute(self, specs: List[RunSpec]):
        """Yield ``(spec, summary)`` pairs in submission order as they finish.

        Serial execution yields after each in-process run; pool execution
        uses ``imap`` (ordered, chunk size 1) so progress callbacks fire as
        results stream back rather than after the whole ``map``.
        """
        if self.workers == 1 or len(specs) == 1:
            for spec in specs:
                yield spec, execute_spec_summary(spec)
            return
        context = _pool_context()
        with context.Pool(
            processes=min(self.workers, len(specs)),
            initializer=sweep_worker_setup,
        ) as pool:
            for spec, summary in zip(specs, pool.imap(execute_spec_summary, specs, chunksize=1)):
                yield spec, summary
