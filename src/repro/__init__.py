"""Reproduction of "Five Minutes of DDoS Brings down Tor" (EUROSYS 2026).

The library has three layers:

* **substrates** — a deterministic discrete-event network simulator
  (:mod:`repro.simnet`), the Tor directory data model and aggregation
  algorithm (:mod:`repro.directory`), synthetic network/workload generation
  (:mod:`repro.netgen`), view-based BFT engines (:mod:`repro.consensus`), and
  a small crypto layer (:mod:`repro.crypto`);
* **the paper's contribution** — Interactive Consistency under Partial
  Synchrony (:mod:`repro.core`) and the three directory protocols wired onto
  the simulator (:mod:`repro.protocols`): the current v3 protocol, Luo et
  al.'s synchronous protocol, and the new partial-synchrony protocol;
* **evaluation** — the DDoS attack and cost models (:mod:`repro.attack`),
  analyses (:mod:`repro.analysis`), one module per paper figure/table
  (:mod:`repro.experiments`), and the run-orchestration layer
  (:mod:`repro.runtime`): frozen :class:`~repro.runtime.spec.RunSpec`
  descriptions of runs, a serial/parallel
  :class:`~repro.runtime.executor.SweepExecutor`, and a content-addressed
  on-disk :class:`~repro.runtime.cache.ResultCache`.

Quick start::

    from repro.runtime import RunSpec, SweepExecutor
    from repro.attack import majority_attack_plan

    attack = majority_attack_plan()                      # 5 of 9 authorities, 300 s
    spec = RunSpec(protocol="current", relay_count=8000, max_time=660.0)
    attacked = spec.with_overrides(*attack.bandwidth_overrides())

    executor = SweepExecutor(workers=2)
    for result in executor.run([attacked, attacked.derive(protocol="ours")]):
        print(result.protocol, result.success)           # current fails, ours recovers
"""

__version__ = "1.1.0"

from repro.core import ICPSConfig, ICPSNode, ICPSOutput, Document
from repro.protocols import (
    DirectoryProtocolConfig,
    ProtocolRunResult,
    Scenario,
    build_scenario,
    execute_spec,
    run_protocol,
    scenario_from_spec,
)
from repro.runtime import (
    BandwidthOverride,
    ResultCache,
    RunSpec,
    SweepExecutor,
    SweepSpec,
)
from repro.attack import AttackCostModel, DDoSAttackPlan, majority_attack_plan

__all__ = [
    "__version__",
    "ICPSConfig",
    "ICPSNode",
    "ICPSOutput",
    "Document",
    "DirectoryProtocolConfig",
    "ProtocolRunResult",
    "Scenario",
    "build_scenario",
    "execute_spec",
    "run_protocol",
    "scenario_from_spec",
    "BandwidthOverride",
    "ResultCache",
    "RunSpec",
    "SweepExecutor",
    "SweepSpec",
    "AttackCostModel",
    "DDoSAttackPlan",
    "majority_attack_plan",
]
