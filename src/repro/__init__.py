"""Reproduction of "Five Minutes of DDoS Brings down Tor" (EUROSYS 2026).

The library has three layers:

* **substrates** — a deterministic discrete-event network simulator
  (:mod:`repro.simnet`), the Tor directory data model and aggregation
  algorithm (:mod:`repro.directory`), synthetic network/workload generation
  (:mod:`repro.netgen`), view-based BFT engines (:mod:`repro.consensus`), and
  a small crypto layer (:mod:`repro.crypto`);
* **the paper's contribution** — Interactive Consistency under Partial
  Synchrony (:mod:`repro.core`) and the three directory protocols wired onto
  the simulator (:mod:`repro.protocols`): the current v3 protocol, Luo et
  al.'s synchronous protocol, and the new partial-synchrony protocol;
* **evaluation** — the DDoS attack and cost models (:mod:`repro.attack`),
  analyses (:mod:`repro.analysis`), and one module per paper figure/table
  (:mod:`repro.experiments`).

Quick start::

    from repro.protocols import build_scenario, run_protocol
    from repro.attack import majority_attack_plan

    scenario = build_scenario(relay_count=8000, bandwidth_mbps=250)
    attack = majority_attack_plan()                      # 5 of 9 authorities, 300 s
    attacked = scenario.with_bandwidth_schedules(attack.schedules())

    print(run_protocol("current", attacked).success)     # False: the attack works
    print(run_protocol("ours", attacked).success)        # True: ICPS recovers
"""

__version__ = "1.0.0"

from repro.core import ICPSConfig, ICPSNode, ICPSOutput, Document
from repro.protocols import (
    DirectoryProtocolConfig,
    ProtocolRunResult,
    Scenario,
    build_scenario,
    run_protocol,
)
from repro.attack import AttackCostModel, DDoSAttackPlan, majority_attack_plan

__all__ = [
    "__version__",
    "ICPSConfig",
    "ICPSNode",
    "ICPSOutput",
    "Document",
    "DirectoryProtocolConfig",
    "ProtocolRunResult",
    "Scenario",
    "build_scenario",
    "run_protocol",
    "AttackCostModel",
    "DDoSAttackPlan",
    "majority_attack_plan",
]
