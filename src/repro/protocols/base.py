"""Shared configuration, outcome types, and the authority-node base class."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.keys import KeyRing
from repro.directory.aggregate import AggregationConfig, aggregate_votes
from repro.directory.authority import DirectoryAuthority
from repro.directory.consensus_doc import ConsensusDocument
from repro.directory.vote import VoteDocument
from repro.simnet.message import Message
from repro.simnet.network import TransferStats
from repro.simnet.node import ProtocolNode
from repro.simnet.trace import TraceLog
from repro.utils.validation import ensure


@dataclass(frozen=True)
class DirectoryProtocolConfig:
    """Parameters shared by all directory protocols.

    Attributes
    ----------
    round_duration:
        Lock-step round length for the synchronous protocols (150 s live).
    connection_timeout:
        Directory connection timeout: a vote push or fetch that has not
        completed within this window is abandoned (what produces the
        "Giving up downloading votes" lines in Figure 1).
    package_transfer_timeout:
        Transfer window for the synchronous (Luo et al.) protocol's large
        vote packages, which are streamed within a round rather than going
        through the dir-client request path.  Calibrated so the protocol's
        failure threshold lands near the paper's (~2,000 relays at 10 Mbit/s).
    consensus_interval:
        Period between consensus runs (3600 s live); used for lifetime rules
        and the attack-cost model.
    signature_size_bytes:
        Modelled wire size of a detached consensus signature message.
    inclusion_rule:
        Relay-inclusion rule handed to the aggregation algorithm.
    """

    round_duration: float = 150.0
    connection_timeout: float = 18.0
    package_transfer_timeout: float = 45.0
    consensus_interval: float = 3600.0
    signature_size_bytes: int = 512
    inclusion_rule: str = "at-least-half"

    def __post_init__(self) -> None:
        ensure(self.round_duration > 0, "round_duration must be positive")
        ensure(self.connection_timeout > 0, "connection_timeout must be positive")
        ensure(self.package_transfer_timeout > 0, "package_transfer_timeout must be positive")
        ensure(self.consensus_interval > 0, "consensus_interval must be positive")

    def aggregation_config(self) -> AggregationConfig:
        """The aggregation configuration used when computing a consensus."""
        return AggregationConfig(
            inclusion_rule=self.inclusion_rule,
            voting_interval=self.consensus_interval,
        )


@dataclass
class AuthorityOutcome:
    """What one authority ended up with after a protocol run."""

    authority_id: int
    success: bool = False
    consensus_digest: Optional[str] = None
    signature_count: int = 0
    votes_held: int = 0
    completion_time: Optional[float] = None
    network_latency: Optional[float] = None
    failure_reason: Optional[str] = None


#: Format version of :meth:`ProtocolRunResult.summary` payloads.
#: Version 2 added fault accounting (``stats.messages_dropped`` + ``faults``).
#: Version 3 added the consensus-distribution layer's ``clients`` block
#: (empty for runs without a client workload).
RESULT_SUMMARY_VERSION = 3


@dataclass
class ProtocolRunResult:
    """Aggregate result of one directory-protocol run on the simulator."""

    protocol: str
    success: bool
    latency: Optional[float]
    outcomes: Dict[int, AuthorityOutcome]
    stats: TransferStats
    trace: TraceLog
    start_time: float
    end_time: float
    relay_count: int = 0
    #: Fault accounting from the run's :class:`~repro.faults.injector.FaultInjector`
    #: (empty for fault-free runs): messages dropped (with a by-cause
    #: breakdown), partition and crash authority-seconds, and which
    #: authorities were crashed / Byzantine.
    fault_summary: Dict[str, Any] = field(default_factory=dict)
    #: Client-side metrics from the run's
    #: :class:`~repro.clients.distribution.ConsensusDistribution` (empty for
    #: runs without a :class:`~repro.clients.workload.ClientWorkload`): state
    #: counts, fetch success rate, p50/p99 time-to-fresh, staleness-seconds.
    client_summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def successful_authorities(self) -> List[int]:
        """IDs of authorities that obtained a fully signed consensus."""
        return sorted(aid for aid, outcome in self.outcomes.items() if outcome.success)

    def latency_from(self, reference_time: float) -> Optional[float]:
        """Mean completion latency measured from ``reference_time`` (Figure 11)."""
        times = [
            outcome.completion_time - reference_time
            for outcome in self.outcomes.values()
            if outcome.success and outcome.completion_time is not None
        ]
        if not times:
            return None
        return sum(times) / len(times)

    # -- compact serialization --------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A compact, JSON-serializable summary of this run.

        Keeps every per-authority outcome and the byte/message accounting
        (what the figures and Table 1 consume) but drops the trace log, which
        is what makes summaries cheap to cache on disk and to ship across
        process boundaries from sweep workers.
        """
        return {
            "version": RESULT_SUMMARY_VERSION,
            "protocol": self.protocol,
            "success": self.success,
            "latency": self.latency,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "relay_count": self.relay_count,
            "outcomes": [
                asdict(self.outcomes[authority_id]) for authority_id in sorted(self.outcomes)
            ],
            "stats": {
                "bytes_sent": dict(self.stats.bytes_sent),
                "bytes_delivered": dict(self.stats.bytes_delivered),
                "bytes_by_type": dict(self.stats.bytes_by_type),
                "messages_sent": self.stats.messages_sent,
                "messages_delivered": self.stats.messages_delivered,
                "messages_timed_out": self.stats.messages_timed_out,
                "messages_dropped": self.stats.messages_dropped,
            },
            "faults": dict(self.fault_summary),
            "clients": dict(self.client_summary),
        }

    @classmethod
    def from_summary(cls, data: Dict[str, Any]) -> "ProtocolRunResult":
        """Rebuild a result from :meth:`summary` output.

        The reconstruction round-trips everything except the trace log, which
        comes back empty (use ``SweepExecutor.run_one(spec, full=True)`` when
        a run's log is needed).
        """
        version = data.get("version")
        ensure(
            version == RESULT_SUMMARY_VERSION,
            "unsupported result summary version %r" % (version,),
        )
        outcomes = {
            int(entry["authority_id"]): AuthorityOutcome(**entry)
            for entry in data["outcomes"]
        }
        stats_data = data["stats"]
        stats = TransferStats(
            bytes_sent=dict(stats_data["bytes_sent"]),
            bytes_delivered=dict(stats_data["bytes_delivered"]),
            bytes_by_type=dict(stats_data["bytes_by_type"]),
            messages_sent=stats_data["messages_sent"],
            messages_delivered=stats_data["messages_delivered"],
            messages_timed_out=stats_data["messages_timed_out"],
            messages_dropped=stats_data.get("messages_dropped", 0),
        )
        return cls(
            protocol=data["protocol"],
            success=data["success"],
            latency=data["latency"],
            outcomes=outcomes,
            stats=stats,
            trace=TraceLog(),
            start_time=data["start_time"],
            end_time=data["end_time"],
            relay_count=data.get("relay_count", 0),
            fault_summary=dict(data.get("faults", {})),
            client_summary=dict(data.get("clients", {})),
        )


class DirectoryAuthorityNode(ProtocolNode):
    """Base class for the per-protocol authority implementations.

    Holds the authority's identity, its vote, the shared key ring, and the
    outcome record; provides the consensus computation + signing helper that
    all three protocols share (they differ only in *which* votes reach the
    aggregation and *when*).

    Authorities are also the origin servers of the consensus-*distribution*
    layer: a run no longer terminates at signing.  Two seams carry that:

    * **Consensus-published hook** — listeners registered with
      :meth:`add_consensus_listener` fire inside :meth:`record_success`, the
      moment this authority holds a majority-signed consensus it can serve.
    * **Client service** — with a service attached
      (:meth:`attach_client_service`, done by
      :class:`~repro.clients.distribution.ConsensusDistribution`), incoming
      ``CLIENT/*`` messages are routed to it instead of the protocol's own
      ``on_message``, so the three protocol implementations stay oblivious
      to the client plane.  Without a service the node behaves exactly as
      before.
    """

    def __init__(
        self,
        authority: DirectoryAuthority,
        peers: Sequence[DirectoryAuthority],
        vote: VoteDocument,
        ring: KeyRing,
        config: DirectoryProtocolConfig,
    ) -> None:
        super().__init__(name=authority.name)
        self.authority = authority
        self.peers = [peer for peer in peers if peer.authority_id != authority.authority_id]
        self.all_authorities = sorted(peers, key=lambda a: a.authority_id)
        self.vote = vote
        self.ring = ring
        self.config = config
        self.outcome = AuthorityOutcome(authority_id=authority.authority_id)
        self.consensus: Optional[ConsensusDocument] = None
        self._client_service = None
        self._consensus_listeners: List[Any] = []

    # -- common helpers ----------------------------------------------------
    @property
    def total_authorities(self) -> int:
        """Number of directory authorities in the run."""
        return len(self.all_authorities)

    @property
    def majority(self) -> int:
        """Strict majority of authorities (5 of 9 on the live network)."""
        return self.total_authorities // 2 + 1

    def peer_names(self) -> List[str]:
        """Simulator node names of every other authority."""
        return [peer.name for peer in self.peers]

    def peer_by_name(self, name: str) -> Optional[DirectoryAuthority]:
        """Look up a peer authority by simulator node name."""
        for peer in self.all_authorities:
            if peer.name == name:
                return peer
        return None

    def compute_consensus(self, votes: Sequence[VoteDocument]) -> ConsensusDocument:
        """Aggregate ``votes`` and attach this authority's signature."""
        consensus = aggregate_votes(
            list(votes),
            config=self.config.aggregation_config(),
            valid_after=self.vote.valid_after,
        )
        consensus.sign_with(
            self.authority.authority_id, self.authority.fingerprint, self.authority.keypair
        )
        self.consensus = consensus
        return consensus

    # -- consensus distribution seams ---------------------------------------
    def attach_client_service(self, service) -> None:
        """Route this node's ``CLIENT/*`` messages to ``service``.

        ``service`` needs one method,
        ``handle_fetch(server_node, message, now)`` (see
        :class:`~repro.clients.distribution.ConsensusDistribution`).
        ``None`` detaches.
        """
        self._client_service = service

    def add_consensus_listener(self, listener) -> None:
        """Register ``listener(node, consensus, time)`` for publication.

        Fires inside :meth:`record_success` — the instant this authority
        holds a consensus with a majority of signatures.
        """
        self._consensus_listeners.append(listener)

    def serveable_consensus(self) -> Optional[ConsensusDocument]:
        """The consensus this authority can serve to dir-clients, if any.

        An authority serves only a *fully valid* consensus — one its own run
        declared successful (majority signatures over its digest) — matching
        a live authority answering consensus requests only once the document
        is signed.
        """
        return self.consensus if self.outcome.success else None

    def receive(self, message: Message) -> None:
        """Deliver ``message``, routing the client plane to the service."""
        if self._client_service is not None and message.msg_type.startswith("CLIENT/"):
            self._client_service.handle_fetch(self, message, self.now)
            return
        super().receive(message)

    def record_success(self, completion_time: float, network_latency: Optional[float] = None) -> None:
        """Mark this authority's run as successful and publish the consensus."""
        self.outcome.success = True
        self.outcome.completion_time = completion_time
        self.outcome.network_latency = network_latency
        if self.consensus is not None:
            self.outcome.consensus_digest = self.consensus.digest_hex()
            for listener in self._consensus_listeners:
                listener(self, self.consensus, completion_time)

    def record_failure(self, reason: str) -> None:
        """Mark this authority's run as failed (idempotent, keeps first reason)."""
        if self.outcome.success:
            return
        if self.outcome.failure_reason is None:
            self.outcome.failure_reason = reason
