"""Directory protocols wired onto the network simulator.

Three protocols are implemented, matching the three columns of the paper's
evaluation (Figure 10, Table 1):

* :mod:`repro.protocols.current_v3` — the deployed version-3 directory
  protocol: four 150-second lock-step rounds (vote, fetch votes, signature,
  fetch signatures) with per-connection timeouts;
* :mod:`repro.protocols.synchronous_luo` — Luo et al.'s synchronous fix:
  propose round, vote round (each vote packs every received list), a
  Dolev–Strong style synchronisation round, then signatures;
* :mod:`repro.protocols.partialsync` — the paper's new protocol: an
  :class:`~repro.core.icps.ICPSNode` per authority (dissemination, view-based
  agreement, aggregation) followed by Tor-level consensus signing.

:mod:`repro.protocols.runner` builds simulator scenarios (authorities, votes,
link schedules, attacks) and runs any of the three, returning a uniform
:class:`~repro.protocols.base.ProtocolRunResult`.  Runs are usually described
by a frozen :class:`~repro.runtime.spec.RunSpec` and executed through
:func:`~repro.protocols.runner.execute_spec` (directly or via the
:class:`~repro.runtime.executor.SweepExecutor`).
"""

from repro.protocols.base import (
    AuthorityOutcome,
    DirectoryProtocolConfig,
    ProtocolRunResult,
)
from repro.protocols.current_v3 import CurrentProtocolAuthority
from repro.protocols.synchronous_luo import SynchronousLuoAuthority
from repro.protocols.partialsync import PartialSyncAuthority
from repro.protocols.runner import (
    PROTOCOL_NAMES,
    Scenario,
    build_scenario,
    execute_spec,
    run_protocol,
    scenario_from_spec,
)

__all__ = [
    "AuthorityOutcome",
    "DirectoryProtocolConfig",
    "ProtocolRunResult",
    "CurrentProtocolAuthority",
    "SynchronousLuoAuthority",
    "PartialSyncAuthority",
    "PROTOCOL_NAMES",
    "Scenario",
    "build_scenario",
    "execute_spec",
    "run_protocol",
    "scenario_from_spec",
]
