"""Luo et al.'s synchronous directory protocol (the "Synchronous" baseline).

Structure reproduced from Figure 5 of the paper:

1. **Propose round** — each authority sends its own relay list (vote) to
   every other authority.
2. **Vote round** — each authority packs *all* the lists it received into a
   vote package and sends the package to every other authority (this is the
   O(n³·d) step that makes the protocol much more bandwidth-hungry than the
   current one).
3. **Synchronize round(s)** — a Dolev–Strong style exchange over the vote
   package of a designated authority: holders of the package relay it along
   with an extended signature chain so that every correct authority ends the
   round holding the same package.
4. **Signature round** — authorities compute the consensus from the lists in
   the agreed package, sign it, and exchange signatures.

The protocol keeps the deployed 150-second lock-step rounds and the same
per-connection timeouts as the current protocol, so its much larger vote
packages are exactly what makes it fail at lower relay counts in Figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.signatures import SignatureChain, verify
from repro.directory.consensus_doc import ConsensusSignature
from repro.directory.vote import VoteDocument
from repro.protocols.base import DirectoryAuthorityNode
from repro.simnet.message import Message

#: Signature-chain context for the Dolev–Strong exchange.
_DS_CONTEXT = "luo/dolev-strong"


class SynchronousLuoAuthority(DirectoryAuthorityNode):
    """One directory authority running Luo et al.'s synchronous protocol."""

    #: Authority ID whose vote package is the Dolev–Strong subject.
    designated_sender_id = 0

    def on_start(self) -> None:
        self._start_time = self.now
        self.lists: Dict[int, VoteDocument] = {self.authority.authority_id: self.vote}
        self._list_receipt_times: Dict[int, float] = {}
        self._packages: Dict[int, Dict[int, VoteDocument]] = {}
        self._package_receipt_times: Dict[int, float] = {}
        self._vote_round_start: Optional[float] = None
        self._agreed_package: Optional[Dict[int, VoteDocument]] = None
        self._signatures: Dict[str, Dict[int, ConsensusSignature]] = {}
        self._signature_receipt_times: List[float] = []
        self._signature_round_start: Optional[float] = None

        self.log("notice", "Time to send our relay list (propose round).")
        self.broadcast_message(
            Message(msg_type="LUO/LIST", payload=self.vote, size_bytes=self.vote.size_bytes),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.connection_timeout,
        )

        round_length = self.config.round_duration
        self.set_timer_at(self._start_time + round_length, self._vote_round)
        self.set_timer_at(self._start_time + 2 * round_length, self._synchronize_round)
        self.set_timer_at(self._start_time + 3 * round_length, self._signature_round)
        self.set_timer_at(self._start_time + 4 * round_length, self._finalize)

    # -- message handling ----------------------------------------------------
    def on_message(self, message: Message, now: float) -> None:
        if message.msg_type == "LUO/LIST":
            self._store_list(message.payload, now)
        elif message.msg_type == "LUO/VOTE_PACKAGE":
            self._store_package(message.payload, now)
        elif message.msg_type == "LUO/DS_RELAY":
            self._on_ds_relay(message, now)
        elif message.msg_type == "LUO/SIGNATURE":
            self._store_signature(message.payload, now)

    def _store_list(self, vote: VoteDocument, now: float) -> None:
        if not isinstance(vote, VoteDocument) or vote.authority_id in self.lists:
            return
        self.lists[vote.authority_id] = vote
        self._list_receipt_times[vote.authority_id] = now

    def _store_package(self, payload: Tuple[int, Dict[int, VoteDocument]], now: float) -> None:
        sender_id, package = payload
        if sender_id in self._packages:
            return
        self._packages[sender_id] = dict(package)
        self._package_receipt_times[sender_id] = now
        # Lists inside packages also count as received lists.
        for vote in package.values():
            self._store_list(vote, now)

    def _store_signature(self, record: ConsensusSignature, now: float) -> None:
        if not isinstance(record, ConsensusSignature):
            return
        if not verify(self.ring, record.signature):
            return
        digest = record.signature.message
        key = digest.hex().upper() if isinstance(digest, bytes) else str(digest)
        per_digest = self._signatures.setdefault(key, {})
        if record.authority_id not in per_digest:
            per_digest[record.authority_id] = record
            self._signature_receipt_times.append(now)

    # -- round 2: pack and broadcast all received lists ---------------------------
    def _vote_round(self) -> None:
        self._vote_round_start = self.now
        package = dict(self.lists)
        self.log(
            "notice",
            "Time to vote: packing %d relay lists into our vote." % len(package),
        )
        package_size = sum(vote.size_bytes for vote in package.values())
        self.broadcast_message(
            Message(
                msg_type="LUO/VOTE_PACKAGE",
                payload=(self.authority.authority_id, package),
                size_bytes=package_size,
            ),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.package_transfer_timeout,
        )
        self._packages[self.authority.authority_id] = package

    # -- round 3: Dolev–Strong synchronisation over the designated package -----------
    def _synchronize_round(self) -> None:
        self.log("notice", "Time to synchronize on the designated vote.")
        package = self._packages.get(self.designated_sender_id)
        if package is None:
            self.log("warn", "We do not hold the designated vote package to relay.")
            return
        digest = self._package_digest(package)
        chain = SignatureChain.initial(self.authority.keypair, _DS_CONTEXT, digest)
        package_size = sum(vote.size_bytes for vote in package.values())
        self.broadcast_message(
            Message(
                msg_type="LUO/DS_RELAY",
                payload=(self.designated_sender_id, package, chain),
                size_bytes=package_size + chain.size_bytes,
            ),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.package_transfer_timeout,
        )

    def _on_ds_relay(self, message: Message, now: float) -> None:
        sender_id, package, chain = message.payload
        if not isinstance(chain, SignatureChain):
            return
        digest = self._package_digest(package)
        if chain.value_digest != digest:
            return
        if sender_id not in self._packages:
            self._packages[sender_id] = dict(package)
            for vote in package.values():
                self._store_list(vote, now)

    @staticmethod
    def _package_digest(package: Dict[int, VoteDocument]) -> bytes:
        from repro.crypto.digest import sha256_digest

        member_digests = "".join(
            package[authority_id].digest_hex() for authority_id in sorted(package)
        )
        return sha256_digest(member_digests)

    # -- round 4: compute consensus from the agreed package and sign -----------------------
    def _signature_round(self) -> None:
        self._signature_round_start = self.now
        self.log("notice", "Time to compute a consensus from the agreed vote.")
        package = self._packages.get(self.designated_sender_id)
        if package is None or len(package) < self.majority:
            held = 0 if package is None else len(package)
            self.log(
                "warn",
                "We don't have enough relay lists to generate a consensus: %d of %d"
                % (held, self.majority),
            )
            self.record_failure("agreed vote has %d of %d lists" % (held, self.majority))
            self.outcome.votes_held = held
            return
        self._agreed_package = package
        self.outcome.votes_held = len(package)
        consensus = self.compute_consensus(list(package.values()))
        own_record = consensus.signatures[0]
        self._store_signature(own_record, self.now)
        self.broadcast_message(
            Message(
                msg_type="LUO/SIGNATURE",
                payload=own_record,
                size_bytes=self.config.signature_size_bytes,
            ),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.connection_timeout,
        )

    # -- finalisation ----------------------------------------------------------------------------
    def _finalize(self) -> None:
        if self.consensus is None:
            self.record_failure("no consensus computed")
            self.log("warn", "No consensus document at the end of the voting period.")
            return
        digest_key = self.consensus.digest_hex()
        matching = self._signatures.get(digest_key, {})
        self.outcome.signature_count = len(matching)
        if len(matching) >= self.majority:
            self.record_success(self.now, self._network_latency())
            self.log(
                "notice",
                "Consensus is valid with %d of %d signatures." % (len(matching), self.total_authorities),
            )
        else:
            self.record_failure(
                "only %d of %d required signatures" % (len(matching), self.majority)
            )
            self.log(
                "warn",
                "Consensus does not have a majority of signatures: %d of %d."
                % (len(matching), self.majority),
            )

    def _network_latency(self) -> Optional[float]:
        """Sum of the active network time of the list, vote-package, and signature exchanges."""
        if not self._list_receipt_times:
            return None
        list_time = max(self._list_receipt_times.values()) - self._start_time
        package_time = 0.0
        if self._package_receipt_times and self._vote_round_start is not None:
            package_time = max(self._package_receipt_times.values()) - self._vote_round_start
        signature_time = 0.0
        if self._signature_receipt_times and self._signature_round_start is not None:
            signature_time = max(self._signature_receipt_times) - self._signature_round_start
        return max(list_time, 0.0) + max(package_time, 0.0) + max(signature_time, 0.0)
