"""Scenario construction and protocol execution on the network simulator.

The module has two halves, split so run configuration can be reified:

* **Scenario construction** (pure, spec-driven): a :class:`Scenario` bundles
  everything one directory-protocol run needs — authority identities and
  keys, one vote per authority, pairwise latencies, and a bandwidth schedule
  per authority (constant for plain sweeps, windowed for DDoS experiments).
  :func:`build_scenario` assembles one from explicit arguments;
  :func:`scenario_from_spec` is the factory that derives the same thing from
  a frozen :class:`~repro.runtime.spec.RunSpec`, applying its declarative
  bandwidth overrides and fault plan (including pre-generating the
  conflicting votes any equivocating authorities will present).
* **Execution**: :func:`run_protocol` instantiates the requested protocol's
  authority nodes on a fresh simulator, runs it, and returns a
  :class:`~repro.protocols.base.ProtocolRunResult`; :func:`execute_spec` is
  the spec-level composition (``scenario_from_spec`` + ``run_protocol``) that
  :class:`~repro.runtime.executor.SweepExecutor` workers call.

Large sweeps (Figures 7 and 10 go up to 10,000 relays) materialise a capped
sample of relays per vote and use ``padded_relay_count`` so the bandwidth
model still sees full-size documents; see DESIGN-calibration.md for the
calibration discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.clients.distribution import ConsensusDistribution
from repro.clients.workload import ClientWorkload
from repro.crypto.keys import KeyRing
from repro.directory.authority import DirectoryAuthority, make_authorities
from repro.directory.vote import VoteDocument
from repro.faults.byzantine import build_rewriters
from repro.faults.injector import FaultInjector
from repro.faults.plan import EMPTY_FAULT_PLAN, FaultPlan
from repro.netgen.relaygen import RelayPopulationConfig, generate_population
from repro.netgen.topology_gen import AuthorityTopology, generate_topology
from repro.netgen.views import AuthorityViewConfig, generate_authority_votes
from repro.protocols.base import DirectoryProtocolConfig, ProtocolRunResult
from repro.protocols.current_v3 import CurrentProtocolAuthority
from repro.protocols.partialsync import PartialSyncAuthority
from repro.protocols.synchronous_luo import SynchronousLuoAuthority
from repro.runtime.spec import DEFAULT_CONTENT_RELAY_CAP, PROTOCOL_NAMES, RunSpec
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.network import LinkConfig, SimNetwork
from repro.utils.validation import ValidationError, ensure

#: Seed offset used to derive an equivocator's conflicting alternate vote.
_ALTERNATE_VOTE_SEED_OFFSET = 7919


@dataclass
class Scenario:
    """Everything needed to run one directory-protocol instance."""

    authorities: List[DirectoryAuthority]
    ring: KeyRing
    votes: Dict[int, VoteDocument]
    topology: AuthorityTopology
    bandwidth_schedules: Dict[int, BandwidthSchedule]
    relay_count: int
    transport: str = "fair"
    seed: int = 7
    fault_plan: FaultPlan = EMPTY_FAULT_PLAN
    #: Conflicting votes presented by equivocating authorities (authority id →
    #: alternate vote); populated only when the fault plan declares equivocators.
    alternate_votes: Dict[int, VoteDocument] = field(default_factory=dict)
    #: Dir-client population fetching the signed consensus (None: the run
    #: has no client side, exactly the pre-distribution behaviour).
    client_workload: Optional[ClientWorkload] = None

    def with_bandwidth_schedules(self, schedules: Dict[int, BandwidthSchedule]) -> "Scenario":
        """Return a copy with some authorities' bandwidth schedules replaced."""
        merged = dict(self.bandwidth_schedules)
        merged.update(schedules)
        return replace(self, bandwidth_schedules=merged)


def build_scenario(
    relay_count: int,
    bandwidth_mbps: float = 250.0,
    authority_count: int = 9,
    seed: int = 7,
    content_relay_cap: int = DEFAULT_CONTENT_RELAY_CAP,
    transport: str = "fair",
    view_config: Optional[AuthorityViewConfig] = None,
    fault_plan: FaultPlan = EMPTY_FAULT_PLAN,
) -> Scenario:
    """Build a scenario with ``relay_count`` relays and uniform authority bandwidth."""
    ensure(relay_count >= 1, "relay_count must be at least 1")
    ensure(bandwidth_mbps > 0, "bandwidth_mbps must be positive")
    fault_plan.validate_for(authority_count)
    authorities, ring = make_authorities(authority_count, seed=seed)
    materialised = min(relay_count, content_relay_cap)
    population = generate_population(
        RelayPopulationConfig(relay_count=materialised, seed=seed)
    )
    votes = generate_authority_votes(
        population,
        authorities,
        config=view_config or AuthorityViewConfig(seed=seed),
        padded_relay_count=relay_count,
    )
    alternate_votes: Dict[int, VoteDocument] = {}
    equivocators = fault_plan.byzantine_authority_ids("equivocate")
    if equivocators:
        # A different view seed yields conflicting-but-plausible vote content
        # for the equivocators to present to the second half of their peers.
        conflicting = generate_authority_votes(
            population,
            authorities,
            config=AuthorityViewConfig(seed=seed + _ALTERNATE_VOTE_SEED_OFFSET),
            padded_relay_count=relay_count,
        )
        alternate_votes = {aid: conflicting[aid] for aid in equivocators}
    topology = generate_topology(authorities, bandwidth_mbps=bandwidth_mbps, seed=seed)
    schedules = {
        authority.authority_id: BandwidthSchedule.constant_mbps(bandwidth_mbps)
        for authority in authorities
    }
    return Scenario(
        authorities=authorities,
        ring=ring,
        votes=votes,
        topology=topology,
        bandwidth_schedules=schedules,
        relay_count=relay_count,
        transport=transport,
        seed=seed,
        fault_plan=fault_plan,
        alternate_votes=alternate_votes,
    )


def scenario_from_spec(spec: RunSpec) -> Scenario:
    """Build the :class:`Scenario` a :class:`~repro.runtime.spec.RunSpec` describes.

    Pure with respect to the spec: equal specs produce identical scenarios
    (every stochastic input derives from ``spec.seed``), which is what makes
    spec hashes valid cache keys.
    """
    scenario = build_scenario(
        relay_count=spec.relay_count,
        bandwidth_mbps=spec.bandwidth_mbps,
        authority_count=spec.authority_count,
        seed=spec.seed,
        content_relay_cap=spec.content_relay_cap,
        transport=spec.transport,
        fault_plan=spec.fault_plan,
    )
    if spec.bandwidth_overrides:
        scenario = scenario.with_bandwidth_schedules(
            {
                override.authority_id: override.schedule()
                for override in spec.bandwidth_overrides
            }
        )
    if spec.client_workload is not None:
        scenario = replace(scenario, client_workload=spec.client_workload)
    return scenario


def execute_spec(spec: RunSpec) -> ProtocolRunResult:
    """Run the protocol instance ``spec`` describes, end to end."""
    return run_protocol(
        spec.protocol,
        scenario_from_spec(spec),
        config=spec.protocol_config(),
        max_time=spec.max_time,
        engine=spec.engine,
        delta=spec.delta,
        view_timeout=spec.view_timeout,
    )


def _make_authority_node(
    protocol: str,
    authority: DirectoryAuthority,
    scenario: Scenario,
    config: DirectoryProtocolConfig,
    engine: str,
    delta: float,
    view_timeout: float,
):
    vote = scenario.votes[authority.authority_id]
    if protocol == "current":
        return CurrentProtocolAuthority(authority, scenario.authorities, vote, scenario.ring, config)
    if protocol == "synchronous":
        return SynchronousLuoAuthority(authority, scenario.authorities, vote, scenario.ring, config)
    if protocol == "ours":
        return PartialSyncAuthority(
            authority,
            scenario.authorities,
            vote,
            scenario.ring,
            config,
            engine=engine,
            delta=delta,
            view_timeout=view_timeout,
        )
    raise ValidationError("unknown protocol %r; expected one of %r" % (protocol, PROTOCOL_NAMES))


def run_protocol(
    protocol: str,
    scenario: Scenario,
    config: Optional[DirectoryProtocolConfig] = None,
    max_time: float = 3600.0,
    engine: str = "hotstuff",
    delta: float = 30.0,
    view_timeout: float = 30.0,
) -> ProtocolRunResult:
    """Run ``protocol`` ("current", "synchronous", or "ours") over ``scenario``."""
    config = config or DirectoryProtocolConfig()
    network = SimNetwork(transport=scenario.transport)
    nodes = []
    for authority in scenario.authorities:
        node = _make_authority_node(
            protocol, authority, scenario, config, engine, delta, view_timeout
        )
        schedule = scenario.bandwidth_schedules[authority.authority_id]
        network.add_node(node, LinkConfig.symmetric(schedule))
        nodes.append(node)

    for i, a in enumerate(scenario.authorities):
        for b in scenario.authorities[i + 1 :]:
            network.set_latency(
                a.name, b.name, scenario.topology.latency_between(a.authority_id, b.authority_id)
            )

    injector = _install_fault_injector(scenario, network)

    # The consensus-distribution layer: cohort (and mirror) nodes join the
    # network before start() so their wave/poll timers boot with everyone
    # else, and the authorities publish into the distribution hook instead
    # of the run terminating at signing.
    distribution: Optional[ConsensusDistribution] = None
    if scenario.client_workload is not None:
        distribution = ConsensusDistribution(
            scenario.client_workload, network, nodes, seed=scenario.seed
        )

    network.start(at=0.0)
    end_time = network.run(until=max_time)

    outcomes = {node.authority.authority_id: node.outcome for node in nodes}
    successes = [outcome for outcome in outcomes.values() if outcome.success]
    run_success = len(successes) >= (len(scenario.authorities) // 2 + 1)

    latency: Optional[float] = None
    if run_success:
        if protocol == "ours":
            values = [
                outcome.completion_time
                for outcome in successes
                if outcome.completion_time is not None
            ]
        else:
            values = [
                outcome.network_latency
                for outcome in successes
                if outcome.network_latency is not None
            ]
        if values:
            latency = sum(values) / len(values)

    return ProtocolRunResult(
        protocol=protocol,
        success=run_success,
        latency=latency,
        outcomes=outcomes,
        stats=network.stats,
        trace=network.trace,
        start_time=0.0,
        end_time=end_time,
        relay_count=scenario.relay_count,
        fault_summary=injector.fault_summary(end_time) if injector is not None else {},
        client_summary=distribution.summary(end_time) if distribution is not None else {},
    )


def _install_fault_injector(
    scenario: Scenario, network: SimNetwork
) -> Optional[FaultInjector]:
    """Build and attach the scenario's fault injector (None for empty plans).

    With an empty plan no injector is attached at all, so fault-free runs
    stay bit-identical to runs executed before the fault layer existed.
    """
    plan = scenario.fault_plan
    if plan.is_empty:
        return None
    authority_names = {a.authority_id: a.name for a in scenario.authorities}
    rewriters = build_rewriters(
        plan.byzantine_authority_ids("equivocate"),
        authority_names,
        scenario.alternate_votes,
        {a.authority_id: a.keypair for a in scenario.authorities},
        [a.name for a in scenario.authorities],
    )
    injector = FaultInjector(
        plan,
        seed=scenario.seed,
        authority_names=authority_names,
        rewriters=rewriters,
    )
    injector.install(network)
    return injector
