"""The paper's new directory protocol (the "Ours" column).

Each authority hosts an :class:`~repro.core.icps.ICPSNode` — dissemination,
view-based agreement (HotStuff by default), and document aggregation — on top
of the network simulator.  Once ICPS outputs the agreed vote vector, the
authority runs the standard Tor aggregation algorithm over the delivered
votes, signs the resulting consensus document, and exchanges signatures with
its peers exactly as the current protocol does.

There are no lock-step rounds: document transfers may take arbitrarily long
(the dissemination phase has no hard deadline), and only the small agreement
messages need the partial-synchrony timers — which is why this protocol keeps
working at bandwidths where the two synchronous baselines fail.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    DecideAction,
    SendAction,
    SetTimerAction,
)
from repro.core.documents import Document
from repro.core.icps import ICPSConfig, ICPSMessage, ICPSNode, ICPSOutput
from repro.crypto.keys import KeyRing
from repro.crypto.signatures import verify
from repro.directory.authority import DirectoryAuthority
from repro.directory.consensus_doc import ConsensusSignature
from repro.directory.vote import VoteDocument
from repro.protocols.base import DirectoryAuthorityNode, DirectoryProtocolConfig
from repro.simnet.message import Message, SharedPayload


class PartialSyncAuthority(DirectoryAuthorityNode):
    """One directory authority running the partial-synchrony (ICPS) protocol."""

    def __init__(
        self,
        authority: DirectoryAuthority,
        peers: Sequence[DirectoryAuthority],
        vote: VoteDocument,
        ring: KeyRing,
        config: DirectoryProtocolConfig,
        engine: str = "hotstuff",
        delta: float = 30.0,
        view_timeout: float = 30.0,
    ) -> None:
        super().__init__(authority, peers, vote, ring, config)
        node_names = tuple(auth.name for auth in self.all_authorities)
        self.icps = ICPSNode(
            ICPSConfig(
                node_id=authority.name,
                nodes=node_names,
                delta=delta,
                engine=engine,
                view_timeout=view_timeout,
                fetch_retry_interval=max(delta, 15.0),
            ),
            ring=ring,
            keypair=authority.keypair,
        )
        self._signatures: Dict[str, Dict[int, ConsensusSignature]] = {}
        self._authority_by_name = {auth.name: auth for auth in self.all_authorities}

    # -- lifecycle ------------------------------------------------------------
    def on_start(self) -> None:
        self._start_time = self.now
        document = Document(
            data=self.vote.serialize().encode("utf-8"),
            label="vote-%d" % self.authority.authority_id,
            payload=self.vote,
            size_override=self.vote.size_bytes,
        )
        self.log("notice", "Disseminating our vote (%d bytes) to all authorities." % document.size_bytes)
        self._execute(self.icps.start(document))

    # -- message handling --------------------------------------------------------
    def on_message(self, message: Message, now: float) -> None:
        if message.msg_type == "ICPS":
            self._execute(self.icps.on_message(message.payload))
        elif message.msg_type == "PS/SIGNATURE":
            self._store_signature(message.payload)

    def _on_icps_timer(self, timer_id: str) -> None:
        self._execute(self.icps.on_timeout(timer_id))

    # -- action execution ------------------------------------------------------------
    def _execute(self, actions: List[Action]) -> None:
        for action in actions:
            if isinstance(action, SendAction):
                self._send_icps(action.to, action.message)
            elif isinstance(action, BroadcastAction):
                self._broadcast_icps(action.message)
            elif isinstance(action, SetTimerAction):
                self.set_timer(action.duration, self._on_icps_timer, action.timer_id)
            elif isinstance(action, DecideAction) and isinstance(action.value, ICPSOutput):
                self._on_icps_output(action.value)

    def _send_icps(self, destination: str, icps_message: ICPSMessage) -> None:
        self.send(
            destination,
            Message(msg_type="ICPS", payload=icps_message, size_bytes=icps_message.size_bytes),
        )

    def _broadcast_icps(self, icps_message: ICPSMessage) -> None:
        # Size the payload once for the whole burst: pricing a PROPOSAL walks
        # every entry, so doing it per destination is O(N^2) work per round.
        self.broadcast_message(
            Message(
                msg_type="ICPS",
                payload=SharedPayload(icps_message, icps_message.size_bytes),
            ),
            targets=[peer.name for peer in self.peers],
        )

    # -- Tor-level aggregation and signing --------------------------------------------
    def _on_icps_output(self, output: ICPSOutput) -> None:
        votes: List[VoteDocument] = []
        for node_name, document in sorted(output.documents.items()):
            if document is None:
                continue
            vote = document.payload
            if isinstance(vote, VoteDocument):
                votes.append(vote)
        self.outcome.votes_held = len(votes)
        if len(votes) < self.majority:
            self.record_failure("agreed vector holds %d of %d votes" % (len(votes), self.majority))
            self.log(
                "warn",
                "Agreed vote vector only contains %d votes; cannot build a consensus." % len(votes),
            )
            return
        consensus = self.compute_consensus(votes)
        own_record = consensus.signatures[0]
        self._store_signature(own_record)
        self.log(
            "notice",
            "Interactive consistency reached with %d votes; broadcasting consensus signature."
            % len(votes),
        )
        self.broadcast_message(
            Message(
                msg_type="PS/SIGNATURE",
                payload=own_record,
                size_bytes=self.config.signature_size_bytes,
            ),
            targets=[peer.name for peer in self.peers],
        )
        self._check_completion()

    def _store_signature(self, record: ConsensusSignature) -> None:
        if not isinstance(record, ConsensusSignature):
            return
        if not verify(self.ring, record.signature):
            return
        digest = record.signature.message
        key = digest.hex().upper() if isinstance(digest, bytes) else str(digest)
        per_digest = self._signatures.setdefault(key, {})
        per_digest.setdefault(record.authority_id, record)
        self._check_completion()

    def _check_completion(self) -> None:
        if self.outcome.success or self.consensus is None:
            return
        digest_key = self.consensus.digest_hex()
        matching = self._signatures.get(digest_key, {})
        self.outcome.signature_count = len(matching)
        if len(matching) >= self.majority:
            self.record_success(self.now, network_latency=self.now - self._start_time)
            self.log(
                "notice",
                "Consensus is valid with %d of %d signatures (%.1f s after protocol start)."
                % (len(matching), self.total_authorities, self.now - self._start_time),
            )
