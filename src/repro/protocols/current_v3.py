"""The deployed Tor directory protocol, version 3 (the "Current" baseline).

Four lock-step rounds of ``round_duration`` seconds each (150 s live):

1. **Perform Vote** — each authority pushes its vote document to every other
   authority.
2. **Fetch Votes** — authorities missing votes request them from every other
   authority (this is where Figure 1's "We're missing votes from 5
   authorities … Asking every other authority for a copy" lines come from).
3. **Send Signature** — authorities holding at least a majority of votes
   aggregate them, sign the resulting consensus, and push the signature.
4. **Fetch Signatures** — authorities re-exchange signatures.

At the end of round 4, an authority's run is successful iff it computed a
consensus and holds valid signatures from a strict majority of authorities
over that exact consensus digest.  Because the aggregation input is "whatever
votes arrived in time", authorities whose vote sets diverge produce different
consensuses whose signatures do not add up — which is exactly the failure
mode the DDoS attack triggers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.signatures import verify
from repro.directory.consensus_doc import ConsensusSignature
from repro.directory.vote import VoteDocument
from repro.protocols.base import DirectoryAuthorityNode
from repro.simnet.message import Message


class CurrentProtocolAuthority(DirectoryAuthorityNode):
    """One directory authority running the current v3 protocol."""

    def on_start(self) -> None:
        self._start_time = self.now
        self.votes: Dict[int, VoteDocument] = {self.authority.authority_id: self.vote}
        self._vote_receipt_times: Dict[int, float] = {}
        self._signatures: Dict[str, Dict[int, ConsensusSignature]] = {}
        self._signature_receipt_times: List[float] = []
        self._consensus_round_start: Optional[float] = None
        self._fetch_requested_from: List[str] = []

        self.log("notice", "Time to vote.")
        self.broadcast_message(
            Message(
                msg_type="V3/VOTE",
                payload=self.vote,
                size_bytes=self.vote.size_bytes,
            ),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.connection_timeout,
            on_timeout=self._on_vote_push_timeout,
        )

        round_length = self.config.round_duration
        self.set_timer_at(self._start_time + round_length, self._fetch_votes_round)
        self.set_timer_at(self._start_time + 2 * round_length, self._compute_consensus_round)
        self.set_timer_at(self._start_time + 3 * round_length, self._fetch_signatures_round)
        self.set_timer_at(self._start_time + 4 * round_length, self._finalize)

    # -- message handling ---------------------------------------------------
    def on_message(self, message: Message, now: float) -> None:
        if message.msg_type == "V3/VOTE":
            self._store_vote(message.payload, now)
        elif message.msg_type == "V3/VOTE_FETCH":
            self._serve_vote_fetch(message)
        elif message.msg_type == "V3/VOTE_FETCH_RESPONSE":
            for vote in message.payload:
                self._store_vote(vote, now)
        elif message.msg_type in ("V3/SIGNATURE", "V3/SIGNATURE_FETCH_RESPONSE"):
            self._store_signature(message.payload, now)
        elif message.msg_type == "V3/SIGNATURE_FETCH":
            self._serve_signature_fetch(message)

    def _store_vote(self, vote: VoteDocument, now: float) -> None:
        if not isinstance(vote, VoteDocument):
            return
        if vote.authority_id in self.votes:
            return
        self.votes[vote.authority_id] = vote
        self._vote_receipt_times[vote.authority_id] = now

    def _store_signature(self, record: ConsensusSignature, now: float) -> None:
        if not isinstance(record, ConsensusSignature):
            return
        if not verify(self.ring, record.signature):
            return
        digest = record.signature.message
        key = digest.hex().upper() if isinstance(digest, bytes) else str(digest)
        per_digest = self._signatures.setdefault(key, {})
        if record.authority_id not in per_digest:
            per_digest[record.authority_id] = record
            self._signature_receipt_times.append(now)

    # -- round 1 helpers -------------------------------------------------------
    def _on_vote_push_timeout(self, message: Message, destination: str) -> None:
        self.log(
            "info",
            "connection_dir_server_request_failed(): Giving up uploading our vote to %s"
            % self._address_of(destination),
        )

    def _address_of(self, node_name: str) -> str:
        peer = self.peer_by_name(node_name)
        return peer.address if peer is not None else node_name

    # -- round 2: fetch missing votes --------------------------------------------
    def _fetch_votes_round(self) -> None:
        self.log("notice", "Time to fetch any votes that we're missing.")
        missing = [
            authority
            for authority in self.all_authorities
            if authority.authority_id not in self.votes
        ]
        if not missing:
            return
        fingerprints = " ".join(authority.fingerprint for authority in missing)
        self.log(
            "notice",
            "We're missing votes from %d authorities (%s). Asking every other authority for a copy."
            % (len(missing), fingerprints),
        )
        missing_ids = [authority.authority_id for authority in missing]
        peer_names = [peer.name for peer in self.peers]
        self._fetch_requested_from.extend(peer_names)
        self.broadcast_message(
            Message(msg_type="V3/VOTE_FETCH", payload=tuple(missing_ids), size_bytes=512),
            targets=peer_names,
            timeout=self.config.connection_timeout,
        )
        self.set_timer(self.config.connection_timeout, self._report_failed_fetches, set(missing_ids))

    def _report_failed_fetches(self, requested_ids: set) -> None:
        still_missing = requested_ids - set(self.votes)
        if not still_missing:
            return
        for peer in self.peers:
            self.log(
                "info",
                "connection_dir_client_request_failed(): Giving up downloading votes from %s"
                % self._address_of(peer.name),
            )

    def _serve_vote_fetch(self, message: Message) -> None:
        requested = message.payload or ()
        available = [self.votes[aid] for aid in requested if aid in self.votes]
        if not available:
            return
        self.send(
            message.sender,
            Message(
                msg_type="V3/VOTE_FETCH_RESPONSE",
                payload=tuple(available),
                size_bytes=sum(vote.size_bytes for vote in available),
            ),
            timeout=self.config.connection_timeout,
        )

    # -- round 3: compute + sign consensus -------------------------------------------
    def _compute_consensus_round(self) -> None:
        self._consensus_round_start = self.now
        self.log("notice", "Time to compute a consensus.")
        if len(self.votes) < self.majority:
            self.log(
                "warn",
                "We don't have enough votes to generate a consensus: %d of %d"
                % (len(self.votes), self.majority),
            )
            self.record_failure("not enough votes: %d of %d" % (len(self.votes), self.majority))
            self.outcome.votes_held = len(self.votes)
            return
        self.outcome.votes_held = len(self.votes)
        consensus = self.compute_consensus(list(self.votes.values()))
        own_record = consensus.signatures[0]
        self._store_signature(own_record, self.now)
        self.log(
            "notice",
            "Consensus computed; broadcasting signature over digest %s."
            % consensus.digest_hex()[:16],
        )
        self.broadcast_message(
            Message(
                msg_type="V3/SIGNATURE",
                payload=own_record,
                size_bytes=self.config.signature_size_bytes,
            ),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.connection_timeout,
        )

    # -- round 4: fetch signatures ---------------------------------------------------------
    def _fetch_signatures_round(self) -> None:
        if self.consensus is None:
            return
        self.log("notice", "Time to fetch any signatures that we're missing.")
        self.broadcast_message(
            Message(msg_type="V3/SIGNATURE_FETCH", payload=None, size_bytes=256),
            targets=[peer.name for peer in self.peers],
            timeout=self.config.connection_timeout,
        )

    def _serve_signature_fetch(self, message: Message) -> None:
        if self.consensus is None:
            return
        own_record = next(
            (
                record
                for record in self.consensus.signatures
                if record.authority_id == self.authority.authority_id
            ),
            None,
        )
        if own_record is None:
            return
        self.send(
            message.sender,
            Message(
                msg_type="V3/SIGNATURE_FETCH_RESPONSE",
                payload=own_record,
                size_bytes=self.config.signature_size_bytes,
            ),
            timeout=self.config.connection_timeout,
        )

    # -- finalisation ----------------------------------------------------------------------------
    def _finalize(self) -> None:
        if self.consensus is None:
            self.record_failure("no consensus computed")
            self.log("warn", "No consensus document at the end of the voting period.")
            return
        digest_key = self.consensus.digest_hex()
        matching = self._signatures.get(digest_key, {})
        self.outcome.signature_count = len(matching)
        if len(matching) >= self.majority:
            network_latency = self._network_latency()
            self.record_success(self.now, network_latency)
            self.log(
                "notice",
                "Consensus is valid with %d of %d signatures." % (len(matching), self.total_authorities),
            )
        else:
            self.record_failure(
                "only %d of %d required signatures" % (len(matching), self.majority)
            )
            self.log(
                "warn",
                "Consensus does not have a majority of signatures: %d of %d."
                % (len(matching), self.majority),
            )

    def _network_latency(self) -> Optional[float]:
        """The paper's "network time": vote-round plus signature-round activity."""
        if not self._vote_receipt_times:
            return None
        vote_time = max(self._vote_receipt_times.values()) - self._start_time
        signature_time = 0.0
        if self._signature_receipt_times and self._consensus_round_start is not None:
            signature_time = max(self._signature_receipt_times) - self._consensus_round_start
        return max(vote_time, 0.0) + max(signature_time, 0.0)
