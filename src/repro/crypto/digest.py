"""Message digests.

Vote and consensus documents are identified by their SHA-256 digest, exactly
as Tor identifies documents by digest in the directory protocol.  The digest
of a document is what the dissemination sub-protocol circulates in place of
the full document, which is the key to the new protocol's low agreement-phase
bandwidth.
"""

from __future__ import annotations

import hashlib
from typing import Union

#: Size of a digest in bytes (SHA-256).
DIGEST_SIZE_BYTES = 32


def _as_bytes(data: Union[str, bytes]) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    if isinstance(data, bytes):
        return data
    raise TypeError("digest input must be str or bytes, got %r" % type(data).__name__)


def sha256_digest(data: Union[str, bytes]) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    return hashlib.sha256(_as_bytes(data)).digest()


def digest_hex(data: Union[str, bytes]) -> str:
    """Return the SHA-256 digest of ``data`` as an uppercase hex string."""
    return hashlib.sha256(_as_bytes(data)).hexdigest().upper()
