"""Signatures and signature chains.

The protocols sign three kinds of payloads:

* ``DOCUMENT`` digests in the dissemination sub-protocol (``σ_i(i, h_i)``),
* consensus documents in the aggregation phase, and
* Dolev–Strong relay chains in the synchronous baseline.

:class:`Signature` carries the signer, the payload context, and the HMAC tag;
:func:`verify` recomputes the tag against the key ring.  A fixed
``SIGNATURE_SIZE_BYTES`` models the wire size κ used in the paper's
communication-complexity analysis (Ed25519 signature plus key material,
~96 bytes, rounded up to 128 to cover framing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.crypto.keys import KeyPair, KeyRing
from repro.utils import phases
from repro.utils.memo import instance_memo

#: Modelled wire size of one signature (κ in the paper's analysis).
SIGNATURE_SIZE_BYTES = 128


def _canonical_payload(context: str, message: Union[str, bytes, None]) -> bytes:
    if message is None:
        body = b"\x00<bottom>"
    elif isinstance(message, str):
        body = message.encode("utf-8")
    elif isinstance(message, bytes):
        body = message
    else:
        raise TypeError("signature payload must be str, bytes, or None")
    return context.encode("utf-8") + b"|" + body


@dataclass(frozen=True)
class Signature:
    """A signature by ``signer`` over ``(context, message)``.

    ``message`` may be ``None`` to represent a signature over ⊥ (the
    dissemination protocol signs "I did not receive a document from j").
    """

    signer: str
    context: str
    message: Optional[bytes]
    tag: bytes

    @property
    def size_bytes(self) -> int:
        """Wire size of this signature."""
        return SIGNATURE_SIZE_BYTES

    def canonical_payload(self) -> bytes:
        """The exact byte string the tag was computed over (memoized).

        The same signature object is verified once per receiving peer —
        claims travel inside proposals and digest-vector proofs to everyone —
        so the canonical payload is built once per signature instead of once
        per verification.
        """
        return instance_memo(
            self, "_payload", lambda: _canonical_payload(self.context, self.message)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "Signature(signer=%r, context=%r)" % (self.signer, self.context)


def sign(pair: KeyPair, context: str, message: Union[str, bytes, None]) -> Signature:
    """Sign ``(context, message)`` with ``pair``."""
    if phases.ENABLED:
        phases.enter(phases.CRYPTO)
        try:
            return _sign(pair, context, message)
        finally:
            phases.leave()
    return _sign(pair, context, message)


def _sign(pair: KeyPair, context: str, message: Union[str, bytes, None]) -> Signature:
    payload = _canonical_payload(context, message)
    normalized = None if message is None else (
        message.encode("utf-8") if isinstance(message, str) else bytes(message)
    )
    return Signature(
        signer=pair.owner,
        context=context,
        message=normalized,
        tag=pair.mac(payload),
    )


def verify(ring: KeyRing, signature: Signature) -> bool:
    """Return True iff ``signature`` verifies against the key ring.

    Unknown signers and tampered payloads both fail verification rather than
    raising, because the protocols treat bad signatures as Byzantine input to
    be discarded.

    The verdict is memoized per key pair on the signature instance: within a
    run the same ``Signature`` object travels by reference to every receiver
    (consensus signatures are verified once per authority that stores them),
    so the HMAC is recomputed only when the verifying key actually differs —
    a key rotation or a different ring's pair for the same signer recomputes.
    """
    if signature.signer not in ring:
        return False
    pair = ring.get(signature.signer)
    memo = signature.__dict__.get("_verify_memo")
    if memo is None:
        memo = {}
        object.__setattr__(signature, "_verify_memo", memo)
    verdict = memo.get(pair)
    if verdict is None:
        if phases.ENABLED:
            phases.enter(phases.CRYPTO)
            try:
                expected = pair.mac(signature.canonical_payload())
            finally:
                phases.leave()
        else:
            expected = pair.mac(signature.canonical_payload())
        verdict = _constant_time_eq(expected, signature.tag)
        memo[pair] = verdict
    return verdict


def _constant_time_eq(left: bytes, right: bytes) -> bool:
    if len(left) != len(right):
        return False
    result = 0
    for a, b in zip(left, right):
        result |= a ^ b
    return result == 0


@dataclass(frozen=True)
class SignatureChain:
    """A Dolev–Strong signature chain over a single value.

    A chain of length ``r`` proves that the value has passed through ``r``
    distinct signers, the first of which must be the designated sender.  The
    synchronous baseline (Luo et al.) accepts a value in round ``r`` only if it
    carries a valid chain of length at least ``r``.
    """

    value_digest: bytes
    signatures: Tuple[Signature, ...]

    @property
    def length(self) -> int:
        """Number of signatures in the chain."""
        return len(self.signatures)

    @property
    def size_bytes(self) -> int:
        """Wire size of the chain (used for bandwidth accounting)."""
        return len(self.value_digest) + sum(sig.size_bytes for sig in self.signatures)

    def signers(self) -> Tuple[str, ...]:
        """The ordered tuple of signer identifiers."""
        return tuple(sig.signer for sig in self.signatures)

    def extend(self, pair: KeyPair, context: str) -> "SignatureChain":
        """Return a new chain with ``pair``'s signature appended."""
        new_sig = sign(pair, context, self.value_digest)
        return SignatureChain(self.value_digest, self.signatures + (new_sig,))

    def is_valid(
        self,
        ring: KeyRing,
        context: str,
        designated_sender: str,
        minimum_length: int,
    ) -> bool:
        """Validate the chain per the Dolev–Strong acceptance rule.

        The chain must (1) be at least ``minimum_length`` long, (2) start with
        the designated sender, (3) contain pairwise-distinct signers, and
        (4) contain only signatures that verify over the value digest.
        """
        if self.length < minimum_length:
            return False
        if not self.signatures:
            return False
        if self.signatures[0].signer != designated_sender:
            return False
        seen = set()
        for sig in self.signatures:
            if sig.signer in seen:
                return False
            seen.add(sig.signer)
            if sig.message != self.value_digest or sig.context != context:
                return False
            if not verify(ring, sig):
                return False
        return True

    @classmethod
    def initial(cls, pair: KeyPair, context: str, value_digest: bytes) -> "SignatureChain":
        """Create the sender's initial chain of length one."""
        return cls(value_digest, (sign(pair, context, value_digest),))
