"""Cryptographic substrate for the reproduction.

The directory protocols only need four primitives:

* collision-resistant digests of documents (:func:`sha256_digest`),
* per-authority signing keys (:class:`KeyPair`, :class:`KeyRing`),
* unforgeable, verifiable signatures (:class:`Signature`, :func:`sign`,
  :func:`verify`), and
* signature *chains* for the Dolev–Strong broadcast used by the synchronous
  baseline (:class:`SignatureChain`).

Real Tor uses RSA/Ed25519; inside a closed simulation an HMAC construction
keyed by a secret only the signer holds provides the same unforgeability
semantics while remaining dependency-free and fast.  Signature size is
modelled explicitly (``SIGNATURE_SIZE_BYTES``) because the paper's complexity
analysis (Table 1) is parameterised by the signature size κ.
"""

from repro.crypto.digest import sha256_digest, digest_hex, DIGEST_SIZE_BYTES
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import (
    SIGNATURE_SIZE_BYTES,
    Signature,
    SignatureChain,
    sign,
    verify,
)

__all__ = [
    "sha256_digest",
    "digest_hex",
    "DIGEST_SIZE_BYTES",
    "KeyPair",
    "KeyRing",
    "SIGNATURE_SIZE_BYTES",
    "Signature",
    "SignatureChain",
    "sign",
    "verify",
]
