"""Signing keys for directory authorities.

A :class:`KeyPair` contains a secret signing key and a public verification
key.  The construction is HMAC-based: the "public key" is a commitment to the
secret, and verification re-derives the expected tag via the
:class:`KeyRing`, which plays the role of the PKI that Tor establishes
out-of-band (authority keys are shipped with the Tor source).

Within the simulation this gives the same guarantees as real signatures:

* only the holder of the secret can produce a tag that verifies, and
* any node holding the key ring can verify any authority's signature.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.utils.validation import ValidationError, ensure


@dataclass(frozen=True)
class KeyPair:
    """A signing key pair owned by one authority.

    Attributes
    ----------
    owner:
        Identifier of the owning authority (its index or fingerprint).
    secret:
        The secret signing key.  Never placed inside messages.
    public:
        A public commitment to the secret used as the verification handle.
    """

    owner: str
    secret: bytes
    public: bytes

    @classmethod
    def generate(cls, owner: str, seed: bytes) -> "KeyPair":
        """Deterministically derive a key pair for ``owner`` from ``seed``."""
        ensure(isinstance(owner, str) and owner != "", "key owner must be a non-empty string")
        secret = hashlib.sha256(b"repro-secret|" + seed + b"|" + owner.encode("utf-8")).digest()
        public = hashlib.sha256(b"repro-public|" + secret).digest()
        return cls(owner=owner, secret=secret, public=public)

    def mac(self, message: bytes) -> bytes:
        """Return the authentication tag of ``message`` under this key."""
        return hmac.new(self.secret, message, hashlib.sha256).digest()


class KeyRing:
    """The public-key infrastructure shared by all authorities.

    In production Tor the directory authority identity keys are pinned in the
    client and relay code.  The key ring mirrors that: it maps an owner
    identifier to its :class:`KeyPair` and is distributed to every node of the
    simulation, but honest code only ever uses ``verify`` (which needs the
    pair to recompute the tag) and never signs on behalf of another owner.
    Byzantine behaviours that try to forge signatures are therefore modelled
    as producing tags that fail verification.
    """

    def __init__(self, pairs: Iterable[KeyPair] = ()) -> None:
        self._pairs: Dict[str, KeyPair] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: KeyPair) -> None:
        """Register a key pair; owners must be unique."""
        if pair.owner in self._pairs:
            raise ValidationError("duplicate key owner %r" % pair.owner)
        self._pairs[pair.owner] = pair

    def get(self, owner: str) -> KeyPair:
        """Return the key pair for ``owner`` or raise ``KeyError``."""
        return self._pairs[owner]

    def __contains__(self, owner: str) -> bool:
        return owner in self._pairs

    def owners(self) -> Iterable[str]:
        """Iterate over registered owner identifiers."""
        return tuple(self._pairs.keys())

    def __len__(self) -> int:
        return len(self._pairs)

    @classmethod
    def for_owners(cls, owners: Iterable[str], seed: bytes = b"repro") -> "KeyRing":
        """Convenience constructor creating one pair per owner."""
        return cls(KeyPair.generate(owner, seed) for owner in owners)
