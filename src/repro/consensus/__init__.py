"""View-based Byzantine agreement engines (the agreement sub-protocol substrate).

The paper's new directory protocol delegates its agreement phase to "any
view-based consensus protocol, such as PBFT, Tendermint, or HotStuff".  This
sub-package provides all three as **pure state machines**:

* engines never touch a clock or a socket — they consume
  :class:`ConsensusMessage` / timeout notifications and emit
  :class:`Action` lists (send, broadcast, set-timer, decide);
* the same engine therefore runs under the deterministic
  :class:`LocalDriver` (unit tests, Byzantine adversaries, partition
  schedules) and under the network simulator (integration tests and the
  paper's benchmarks);
* all engines are single-shot (one decision per instance), support external
  validity predicates, and rotate leaders round-robin across views.

``n >= 3f + 1`` is required, matching the partial-synchrony bound the paper
moves to (and the corresponding drop from tolerating 4 to 2 faulty
authorities out of 9).
"""

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusEngine,
    ConsensusMessage,
    DecideAction,
    EngineConfig,
    SendAction,
    SetTimerAction,
)
from repro.consensus.quorum import QuorumCertificate, quorum_size
from repro.consensus.hotstuff import HotStuffEngine
from repro.consensus.pbft import PBFTEngine
from repro.consensus.tendermint import TendermintEngine
from repro.consensus.driver import DriverResult, LocalDriver

ENGINE_REGISTRY = {
    "hotstuff": HotStuffEngine,
    "pbft": PBFTEngine,
    "tendermint": TendermintEngine,
}


def make_engine(name: str, config: EngineConfig) -> ConsensusEngine:
    """Instantiate a consensus engine by name (``hotstuff``/``pbft``/``tendermint``)."""
    try:
        engine_cls = ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError("unknown consensus engine %r; known: %s" % (name, sorted(ENGINE_REGISTRY)))
    return engine_cls(config)


__all__ = [
    "Action",
    "BroadcastAction",
    "ConsensusEngine",
    "ConsensusMessage",
    "DecideAction",
    "EngineConfig",
    "SendAction",
    "SetTimerAction",
    "QuorumCertificate",
    "quorum_size",
    "HotStuffEngine",
    "PBFTEngine",
    "TendermintEngine",
    "LocalDriver",
    "DriverResult",
    "ENGINE_REGISTRY",
    "make_engine",
]
