"""A single-shot, two-phase HotStuff (Jolteon-style) consensus engine.

This is the engine the paper's prototype uses for its agreement sub-protocol
("a variant of HotStuff").  The structure per view with an honest leader and
no GST is five message rounds — PROPOSE, VOTE1, PRECOMMIT (QC broadcast),
VOTE2, COMMIT — which is exactly the "5 rounds" the paper's Appendix B quotes
for its round-complexity total of 9.

Safety rules (standard two-phase locking):

* replicas vote for a proposal only if its justification QC is at least as
  recent as their locked QC, or it proposes the very value they are locked on;
* replicas lock on the first-phase QC (the ``PRECOMMIT`` broadcast);
* a new leader must justify its proposal with the highest QC reported in
  ``n - f`` NEW-VIEW messages, so any possibly-decided value is carried over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusEngine,
    ConsensusMessage,
    EngineConfig,
    SendAction,
    SetTimerAction,
)
from repro.consensus.quorum import GENESIS_QC, QuorumCertificate
from repro.consensus.values import value_digest


@dataclass(frozen=True)
class _Proposal:
    """A leader proposal: the value plus its justification QC."""

    value: Any
    justify: QuorumCertificate


class HotStuffEngine(ConsensusEngine):
    """Two-phase (Jolteon-style) HotStuff, single-shot."""

    name = "hotstuff"
    good_case_rounds = 5

    def __init__(self, config: EngineConfig) -> None:
        super().__init__(config)
        self.view = 0
        self.input_value: Any = None
        self.started = False
        self.locked_qc: QuorumCertificate = GENESIS_QC
        self.high_qc: QuorumCertificate = GENESIS_QC
        self._proposed_in_view: Set[int] = set()
        self._voted_phase1: Set[int] = set()
        self._voted_phase2: Set[int] = set()
        self._proposals: Dict[int, _Proposal] = {}
        self._values_by_digest: Dict[bytes, Any] = {}
        self._vote1: Dict[Tuple[int, bytes], Set[str]] = {}
        self._vote2: Dict[Tuple[int, bytes], Set[str]] = {}
        self._new_views: Dict[int, Dict[str, QuorumCertificate]] = {}
        self._future: Dict[int, List[ConsensusMessage]] = {}

    # -- helpers -----------------------------------------------------------
    def _is_leader(self, view: Optional[int] = None) -> bool:
        view = self.view if view is None else view
        return self.config.leader_of(view) == self.config.node_id

    def _remember_value(self, value: Any) -> bytes:
        digest = value_digest(value)
        self._values_by_digest[digest] = value
        return digest

    def _view_timer(self, view: int) -> SetTimerAction:
        return SetTimerAction(timer_id="view-%d" % view, duration=self.config.view_timeout(view))

    # -- lifecycle -----------------------------------------------------------
    def start(self, value: Any) -> List[Action]:
        """Start the engine with this node's input value (may be None)."""
        self.started = True
        self.input_value = value
        actions: List[Action] = [self._view_timer(0)]
        actions.extend(self._maybe_propose())
        return actions

    def set_input(self, value: Any) -> List[Action]:
        """Provide (or update) the input value after start."""
        self.input_value = value
        if not self.started or self.decided:
            return []
        return self._maybe_propose()

    def _maybe_propose(self) -> List[Action]:
        """If we lead the current view and have something to propose, propose."""
        if self.decided or not self._is_leader() or self.view in self._proposed_in_view:
            return []
        carry_over = self._carried_over_value()
        value = carry_over if carry_over is not None else self.input_value
        if value is None:
            return []
        if not self.config.is_valid_value(value):
            return []
        self._proposed_in_view.add(self.view)
        digest = self._remember_value(value)
        self._proposals[self.view] = _Proposal(value=value, justify=self.high_qc)
        message = ConsensusMessage(
            msg_type="HS/PROPOSE",
            sender=self.config.node_id,
            view=self.view,
            payload={"value": value, "justify": self.high_qc, "digest": digest},
        )
        return [BroadcastAction(message)]

    def _carried_over_value(self) -> Optional[Any]:
        """Value that must be re-proposed for safety, if any."""
        if self.high_qc.view >= 0:
            return self._values_by_digest.get(self.high_qc.value_digest)
        return None

    # -- message handling --------------------------------------------------
    def on_message(self, message: ConsensusMessage) -> List[Action]:
        if self.decided:
            return []
        handlers = {
            "HS/PROPOSE": self._on_propose,
            "HS/VOTE1": self._on_vote1,
            "HS/PRECOMMIT": self._on_precommit,
            "HS/VOTE2": self._on_vote2,
            "HS/COMMIT": self._on_commit,
            "HS/NEW-VIEW": self._on_new_view,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return []
        # Messages for views we have not reached yet are buffered and replayed
        # once our own view timer catches up (simple view synchronisation).
        if message.view > self.view and message.msg_type not in ("HS/COMMIT", "HS/NEW-VIEW"):
            self._future.setdefault(message.view, []).append(message)
            return []
        return handler(message)

    def _on_propose(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.view:
            return []
        if message.sender != self.config.leader_of(message.view):
            return []
        if message.view in self._voted_phase1:
            return []
        payload = message.payload or {}
        value = payload.get("value")
        justify: QuorumCertificate = payload.get("justify", GENESIS_QC)
        if value is None or not self.config.is_valid_value(value):
            return []
        digest = self._remember_value(value)
        # Safety rule: only vote if the justification is at least as recent as
        # our lock, or the proposal re-proposes the locked value itself.
        if not (justify.view >= self.locked_qc.view or digest == self.locked_qc.value_digest):
            return []
        if justify.view > self.high_qc.view:
            self.high_qc = justify
        self._voted_phase1.add(message.view)
        vote = ConsensusMessage(
            msg_type="HS/VOTE1",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": digest},
        )
        return [SendAction(to=self.config.leader_of(message.view), message=vote)]

    def _on_vote1(self, message: ConsensusMessage) -> List[Action]:
        if not self._is_leader(message.view) or message.view != self.view:
            return []
        digest = (message.payload or {}).get("digest")
        if digest is None:
            return []
        voters = self._vote1.setdefault((message.view, digest), set())
        voters.add(message.sender)
        if len(voters) < self.config.quorum:
            return []
        qc = QuorumCertificate(
            view=message.view, value_digest=digest, voters=frozenset(voters), phase="prepare"
        )
        value = self._values_by_digest.get(digest)
        precommit = ConsensusMessage(
            msg_type="HS/PRECOMMIT",
            sender=self.config.node_id,
            view=message.view,
            payload={"qc": qc, "value": value},
        )
        return [BroadcastAction(precommit)]

    def _on_precommit(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.view:
            return []
        payload = message.payload or {}
        qc: Optional[QuorumCertificate] = payload.get("qc")
        value = payload.get("value")
        if qc is None or not qc.is_valid(self.config.quorum) or qc.view != message.view:
            return []
        if value is not None:
            self._remember_value(value)
        if message.view in self._voted_phase2:
            return []
        # Lock on the first-phase QC.
        if qc.view > self.locked_qc.view:
            self.locked_qc = qc
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        self._voted_phase2.add(message.view)
        vote = ConsensusMessage(
            msg_type="HS/VOTE2",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": qc.value_digest},
        )
        return [SendAction(to=self.config.leader_of(message.view), message=vote)]

    def _on_vote2(self, message: ConsensusMessage) -> List[Action]:
        if not self._is_leader(message.view) or message.view != self.view:
            return []
        digest = (message.payload or {}).get("digest")
        if digest is None:
            return []
        voters = self._vote2.setdefault((message.view, digest), set())
        voters.add(message.sender)
        if len(voters) < self.config.quorum:
            return []
        qc = QuorumCertificate(
            view=message.view, value_digest=digest, voters=frozenset(voters), phase="commit"
        )
        commit = ConsensusMessage(
            msg_type="HS/COMMIT",
            sender=self.config.node_id,
            view=message.view,
            payload={"qc": qc, "value": self._values_by_digest.get(digest)},
        )
        return [BroadcastAction(commit)]

    def _on_commit(self, message: ConsensusMessage) -> List[Action]:
        payload = message.payload or {}
        qc: Optional[QuorumCertificate] = payload.get("qc")
        value = payload.get("value")
        if qc is None or not qc.is_valid(self.config.quorum) or qc.phase != "commit":
            return []
        if value is None:
            value = self._values_by_digest.get(qc.value_digest)
        if value is None or value_digest(value) != qc.value_digest:
            return []
        return self._decide(value, qc.view)

    def _on_new_view(self, message: ConsensusMessage) -> List[Action]:
        qc: QuorumCertificate = (message.payload or {}).get("high_qc", GENESIS_QC)
        value = (message.payload or {}).get("value")
        if value is not None:
            self._remember_value(value)
        per_view = self._new_views.setdefault(message.view, {})
        per_view[message.sender] = qc
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        if message.view < self.view or not self._is_leader(message.view):
            return []
        if len(per_view) < self.config.quorum:
            return []
        if message.view == self.view:
            return self._maybe_propose()
        return []

    # -- timers ----------------------------------------------------------------
    def on_timeout(self, timer_id: str) -> List[Action]:
        if self.decided or not timer_id.startswith("view-"):
            return []
        timed_out_view = int(timer_id.split("-", 1)[1])
        if timed_out_view != self.view:
            return []
        self.view = timed_out_view + 1
        actions: List[Action] = [self._view_timer(self.view)]
        locked_value = self._values_by_digest.get(self.high_qc.value_digest)
        new_view = ConsensusMessage(
            msg_type="HS/NEW-VIEW",
            sender=self.config.node_id,
            view=self.view,
            payload={"high_qc": self.high_qc, "value": locked_value},
        )
        leader = self.config.leader_of(self.view)
        if leader == self.config.node_id:
            actions.extend(self._on_new_view(new_view))
            actions.extend(self._maybe_propose())
        else:
            actions.append(SendAction(to=leader, message=new_view))
        for buffered in self._future.pop(self.view, []):
            actions.extend(self.on_message(buffered))
        return actions
