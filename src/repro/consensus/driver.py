"""A deterministic local driver for consensus engines.

The driver executes a set of engines in virtual time without the full network
simulator: messages are delivered after a configurable delay function, timers
fire exactly when requested, and Byzantine participants can be plugged in as
engine-like objects.  It is the workhorse of the consensus unit tests and the
property-based safety tests, where we need to explore partitions, message
delays (GST), and faulty leaders cheaply.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusMessage,
    DecideAction,
    SendAction,
    SetTimerAction,
)
from repro.utils.validation import ensure

#: Returns the delivery time of a message, or None to drop it.
DeliveryPolicy = Callable[[str, str, ConsensusMessage, float], Optional[float]]


def synchronous_delivery(latency: float = 0.01) -> DeliveryPolicy:
    """Delivery policy: every message arrives after a constant latency."""

    def policy(sender: str, receiver: str, message: ConsensusMessage, now: float) -> Optional[float]:
        return now + latency

    return policy


def gst_delivery(gst: float, latency: float = 0.01) -> DeliveryPolicy:
    """Partial-synchrony delivery: before ``gst`` messages are held back.

    Messages sent before GST are delivered at ``gst + latency`` (they are not
    lost — partial synchrony only delays them); messages sent after GST take
    the normal latency.
    """

    def policy(sender: str, receiver: str, message: ConsensusMessage, now: float) -> Optional[float]:
        if now < gst:
            return gst + latency
        return now + latency

    return policy


def partition_delivery(
    groups: Tuple[Tuple[str, ...], ...],
    heal_time: float,
    latency: float = 0.01,
) -> DeliveryPolicy:
    """Messages between different groups are delayed until ``heal_time``."""

    membership: Dict[str, int] = {}
    for index, group in enumerate(groups):
        for node in group:
            membership[node] = index

    def policy(sender: str, receiver: str, message: ConsensusMessage, now: float) -> Optional[float]:
        same_group = membership.get(sender) == membership.get(receiver)
        if same_group or now >= heal_time:
            return now + latency
        return heal_time + latency

    return policy


@dataclass
class DriverResult:
    """Outcome of a :class:`LocalDriver` run."""

    decisions: Dict[str, Any]
    decision_views: Dict[str, int]
    decision_times: Dict[str, float]
    messages_delivered: int
    final_time: float

    @property
    def decided_nodes(self) -> List[str]:
        """Nodes that reached a decision, sorted."""
        return sorted(self.decisions)

    def all_agree(self) -> bool:
        """True when every decided node decided the same value."""
        values = {repr(value) for value in self.decisions.values()}
        return len(values) <= 1


class LocalDriver:
    """Runs a set of consensus engines in deterministic virtual time."""

    def __init__(
        self,
        engines: Dict[str, Any],
        delivery_policy: Optional[DeliveryPolicy] = None,
        crashed: Tuple[str, ...] = (),
        loopback_broadcast: bool = True,
    ) -> None:
        ensure(len(engines) >= 1, "need at least one engine")
        self.engines = dict(engines)
        self.delivery_policy = delivery_policy or synchronous_delivery()
        self.crashed = set(crashed)
        # Consensus engines expect their own broadcasts back (loopback); ICPS
        # nodes handle self-delivery internally and set this to False.
        self.loopback_broadcast = loopback_broadcast
        self._queue: List[Tuple[float, int, str, str, Any]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.messages_delivered = 0
        self.decision_times: Dict[str, float] = {}

    # -- scheduling ------------------------------------------------------------
    def _push(self, time: float, kind: str, node: str, payload: Any) -> None:
        heapq.heappush(self._queue, (time, next(self._seq), kind, node, payload))

    def _handle_actions(self, node: str, actions: List[Action]) -> None:
        for action in actions:
            if isinstance(action, SendAction):
                self._route(node, action.to, action.message)
            elif isinstance(action, BroadcastAction):
                for receiver in self.engines:
                    if receiver == node and not self.loopback_broadcast:
                        continue
                    self._route(node, receiver, action.message)
            elif isinstance(action, SetTimerAction):
                self._push(self._now + action.duration, "timeout", node, action.timer_id)
            elif isinstance(action, DecideAction):
                self.decision_times.setdefault(node, self._now)

    def _route(self, sender: str, receiver: str, message: ConsensusMessage) -> None:
        if receiver not in self.engines or receiver in self.crashed:
            return
        if sender == receiver:
            # Loopback messages are processed without network delay.
            self._push(self._now, "deliver", receiver, message)
            return
        delivery_time = self.delivery_policy(sender, receiver, message, self._now)
        if delivery_time is None:
            return
        self._push(max(delivery_time, self._now), "deliver", receiver, message)

    # -- execution ------------------------------------------------------------
    def start(self, inputs: Dict[str, Any]) -> None:
        """Call ``start`` on every non-crashed engine with its input value."""
        for node, engine in self.engines.items():
            if node in self.crashed:
                continue
            actions = engine.start(inputs.get(node))
            self._handle_actions(node, actions)

    def set_input(self, node: str, value: Any) -> None:
        """Late-provide an input value to one engine (used by ICPS)."""
        if node in self.crashed:
            return
        actions = self.engines[node].set_input(value)
        self._handle_actions(node, actions)

    def run(
        self,
        until: float = 1_000.0,
        stop_when_all_decided: bool = True,
        max_events: int = 1_000_000,
    ) -> DriverResult:
        """Run the event loop and return the collected decisions."""
        executed = 0
        while self._queue:
            if stop_when_all_decided and self._all_correct_decided():
                break
            time, _seq, kind, node, payload = heapq.heappop(self._queue)
            if time > until:
                self._now = until
                break
            self._now = time
            if node in self.crashed:
                continue
            engine = self.engines[node]
            if kind == "deliver":
                self.messages_delivered += 1
                actions = engine.on_message(payload)
            else:
                actions = engine.on_timeout(payload)
            self._handle_actions(node, actions)
            executed += 1
            if executed > max_events:
                raise RuntimeError("LocalDriver exceeded max_events=%d" % max_events)
        return self.result()

    def _all_correct_decided(self) -> bool:
        return all(
            engine.decided for node, engine in self.engines.items() if node not in self.crashed
        )

    def result(self) -> DriverResult:
        """Collect the decisions made so far."""
        decisions = {
            node: engine.decision
            for node, engine in self.engines.items()
            if node not in self.crashed and engine.decided
        }
        views = {
            node: engine.decision_view
            for node, engine in self.engines.items()
            if node not in self.crashed and engine.decided
        }
        return DriverResult(
            decisions=decisions,
            decision_views=views,
            decision_times=dict(self.decision_times),
            messages_delivered=self.messages_delivered,
            final_time=self._now,
        )
