"""Value digests for consensus engines.

Engines vote on digests rather than full values (full values only travel in
proposals), mirroring how the real protocols separate data dissemination from
agreement.  Within one simulation process a canonical ``repr`` is a stable
encoding; values used by the library (ICPS digest vectors, plain strings,
tuples) all have deterministic representations.
"""

from __future__ import annotations

import hashlib
from typing import Any

#: Digest used for "nil" votes (Tendermint) and missing values.
NIL_DIGEST = b"\x00" * 32


def value_digest(value: Any) -> bytes:
    """Return a stable 32-byte digest of ``value``.

    Values may implement ``canonical_encoding() -> bytes`` to control their
    encoding; otherwise ``repr`` is used.
    """
    if value is None:
        return NIL_DIGEST
    encode = getattr(value, "canonical_encoding", None)
    if callable(encode):
        material = encode()
    else:
        material = repr(value).encode("utf-8")
    return hashlib.sha256(b"consensus-value|" + material).digest()
