"""Interfaces shared by all consensus engines.

Engines are pure state machines: inputs are ``start``, ``on_message``, and
``on_timeout`` calls; outputs are lists of :class:`Action` objects describing
what the host environment should do (send a message, set a timer, record a
decision).  This inversion keeps the engines testable in isolation and lets
the exact same code run under the local driver and the network simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.utils.validation import ValidationError, ensure


@dataclass(frozen=True)
class ConsensusMessage:
    """A message exchanged by consensus engines.

    Attributes
    ----------
    msg_type:
        Engine-specific type tag (e.g. ``"PREPARE"``, ``"NEW-VIEW"``).
    sender:
        Node identifier of the sender.
    view:
        View/round number the message belongs to.
    payload:
        Engine-specific content (values, digests, quorum certificates).
    """

    msg_type: str
    sender: str
    view: int
    payload: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "%s(view=%d, from=%s)" % (self.msg_type, self.view, self.sender)


class Action:
    """Base class of engine outputs."""


@dataclass(frozen=True)
class SendAction(Action):
    """Send ``message`` to a single peer."""

    to: str
    message: ConsensusMessage


@dataclass(frozen=True)
class BroadcastAction(Action):
    """Send ``message`` to every node, including the sender itself."""

    message: ConsensusMessage


@dataclass(frozen=True)
class SetTimerAction(Action):
    """Ask the host to call ``on_timeout(timer_id)`` after ``duration`` seconds."""

    timer_id: str
    duration: float


@dataclass(frozen=True)
class DecideAction(Action):
    """The engine has decided ``value`` (in ``view``)."""

    value: Any
    view: int


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of a consensus engine instance.

    Attributes
    ----------
    node_id:
        This node's identifier.
    nodes:
        All participating node identifiers, in a globally agreed order (the
        order defines the round-robin leader schedule).
    base_timeout:
        View timer for view 0, in seconds.
    timeout_growth:
        Multiplicative view-timer back-off (standard for partial synchrony:
        timers grow until they exceed the unknown post-GST latency).
    validator:
        External-validity predicate applied to proposed values; invalid
        proposals are ignored.  Defaults to accepting anything.
    """

    node_id: str
    nodes: Tuple[str, ...]
    base_timeout: float = 10.0
    timeout_growth: float = 1.5
    validator: Optional[Callable[[Any], bool]] = None

    def __post_init__(self) -> None:
        ensure(len(self.nodes) >= 1, "need at least one node")
        if self.node_id not in self.nodes:
            raise ValidationError("node_id %r must be listed in nodes" % self.node_id)
        if len(set(self.nodes)) != len(self.nodes):
            raise ValidationError("node identifiers must be unique")
        ensure(self.base_timeout > 0, "base_timeout must be positive")
        ensure(self.timeout_growth >= 1.0, "timeout_growth must be >= 1")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def f(self) -> int:
        """Maximum number of Byzantine nodes tolerated (⌊(n-1)/3⌋)."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Quorum size (n - f, i.e. at least 2f + 1)."""
        return self.n - self.f

    def leader_of(self, view: int) -> str:
        """Round-robin leader of ``view``."""
        ensure(view >= 0, "view must be non-negative")
        return self.nodes[view % self.n]

    def view_timeout(self, view: int) -> float:
        """Timer duration for ``view`` (exponential back-off)."""
        return self.base_timeout * (self.timeout_growth ** view)

    def is_valid_value(self, value: Any) -> bool:
        """Apply the external-validity predicate."""
        if self.validator is None:
            return True
        return bool(self.validator(value))


class ConsensusEngine:
    """Abstract single-shot consensus engine.

    Subclasses must implement :meth:`start`, :meth:`on_message`, and
    :meth:`on_timeout`; they should use :meth:`_decide` to record their
    decision so that the common ``decided``/``decision`` accessors work.
    """

    #: Human-readable engine name (used by benchmarks and ablation tables).
    name = "abstract"

    #: Number of message rounds a decision takes in the good case (no GST,
    #: honest leader).  Used by the round-complexity analysis (Table 2).
    good_case_rounds = 0

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self._decided = False
        self._decision: Any = None
        self._decision_view: Optional[int] = None

    # -- common state ------------------------------------------------------
    @property
    def decided(self) -> bool:
        """True once the engine has decided."""
        return self._decided

    @property
    def decision(self) -> Any:
        """The decided value (None before a decision)."""
        return self._decision

    @property
    def decision_view(self) -> Optional[int]:
        """The view in which the decision happened."""
        return self._decision_view

    def _decide(self, value: Any, view: int) -> List[Action]:
        if self._decided:
            return []
        self._decided = True
        self._decision = value
        self._decision_view = view
        return [DecideAction(value=value, view=view)]

    # -- hooks ----------------------------------------------------------------
    def start(self, value: Any) -> List[Action]:
        """Begin the protocol with this node's input ``value``."""
        raise NotImplementedError

    def set_input(self, value: Any) -> List[Action]:
        """Update this node's input value after start (default: store only).

        The ICPS dissemination phase may produce the leader's (H, π) input
        only after the engine has started; engines that can use a late input
        override this hook.
        """
        raise NotImplementedError

    def on_message(self, message: ConsensusMessage) -> List[Action]:
        """Process an incoming message."""
        raise NotImplementedError

    def on_timeout(self, timer_id: str) -> List[Action]:
        """Process a timer expiry previously requested via :class:`SetTimerAction`."""
        raise NotImplementedError
