"""A single-shot PBFT consensus engine.

The classic three-phase structure (PRE-PREPARE → PREPARE → COMMIT) with a
view-change sub-protocol.  Communication per view is quadratic (every replica
broadcasts PREPARE and COMMIT), which is why the paper lists PBFT as the
historically first — but not the cheapest — option for its agreement phase.

Safety comes from the standard prepared-certificate rule: a replica that has
*prepared* a value in some view reports it in its VIEW-CHANGE message, and a
new leader must re-propose the prepared value with the highest view among any
``n - f`` VIEW-CHANGE messages it collects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusEngine,
    ConsensusMessage,
    EngineConfig,
    SetTimerAction,
)
from repro.consensus.values import value_digest


@dataclass(frozen=True)
class PreparedCertificate:
    """Evidence that this replica prepared ``value`` in ``view``."""

    view: int
    value: Any


class PBFTEngine(ConsensusEngine):
    """Practical Byzantine Fault Tolerance, single-shot."""

    name = "pbft"
    good_case_rounds = 3

    def __init__(self, config: EngineConfig) -> None:
        super().__init__(config)
        self.view = 0
        self.started = False
        self.input_value: Any = None
        self.prepared: Optional[PreparedCertificate] = None
        self._pre_prepared: Dict[int, Any] = {}
        self._sent_prepare: Set[int] = set()
        self._sent_commit: Set[int] = set()
        self._proposed_in_view: Set[int] = set()
        self._prepares: Dict[Tuple[int, bytes], Set[str]] = {}
        self._commits: Dict[Tuple[int, bytes], Set[str]] = {}
        self._view_changes: Dict[int, Dict[str, Optional[PreparedCertificate]]] = {}
        self._values_by_digest: Dict[bytes, Any] = {}
        self._future: Dict[int, List[ConsensusMessage]] = {}

    # -- helpers -----------------------------------------------------------
    def _is_leader(self, view: Optional[int] = None) -> bool:
        view = self.view if view is None else view
        return self.config.leader_of(view) == self.config.node_id

    def _view_timer(self, view: int) -> SetTimerAction:
        return SetTimerAction(timer_id="view-%d" % view, duration=self.config.view_timeout(view))

    def _remember(self, value: Any) -> bytes:
        digest = value_digest(value)
        self._values_by_digest[digest] = value
        return digest

    # -- lifecycle -----------------------------------------------------------
    def start(self, value: Any) -> List[Action]:
        """Start the engine with this node's input value (may be None)."""
        self.started = True
        self.input_value = value
        actions: List[Action] = [self._view_timer(0)]
        actions.extend(self._maybe_pre_prepare())
        return actions

    def set_input(self, value: Any) -> List[Action]:
        """Provide (or update) the input value after start."""
        self.input_value = value
        if not self.started or self.decided:
            return []
        return self._maybe_pre_prepare()

    def _proposal_value(self, view: int) -> Optional[Any]:
        """The value the leader of ``view`` must propose (safety first)."""
        reports = self._view_changes.get(view, {})
        best: Optional[PreparedCertificate] = None
        for certificate in reports.values():
            if certificate is None:
                continue
            if best is None or certificate.view > best.view:
                best = certificate
        if best is not None:
            return best.value
        if self.prepared is not None:
            return self.prepared.value
        return self.input_value

    def _maybe_pre_prepare(self) -> List[Action]:
        if self.decided or not self._is_leader() or self.view in self._proposed_in_view:
            return []
        if self.view > 0 and len(self._view_changes.get(self.view, {})) < self.config.quorum:
            return []
        value = self._proposal_value(self.view)
        if value is None or not self.config.is_valid_value(value):
            return []
        self._proposed_in_view.add(self.view)
        digest = self._remember(value)
        message = ConsensusMessage(
            msg_type="PBFT/PRE-PREPARE",
            sender=self.config.node_id,
            view=self.view,
            payload={"value": value, "digest": digest},
        )
        return [BroadcastAction(message)]

    # -- message handling -----------------------------------------------------
    def on_message(self, message: ConsensusMessage) -> List[Action]:
        if self.decided:
            return []
        handlers = {
            "PBFT/PRE-PREPARE": self._on_pre_prepare,
            "PBFT/PREPARE": self._on_prepare,
            "PBFT/COMMIT": self._on_commit,
            "PBFT/VIEW-CHANGE": self._on_view_change,
            "PBFT/DECIDED": self._on_decided,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return []
        if message.view > self.view and message.msg_type not in ("PBFT/VIEW-CHANGE", "PBFT/DECIDED"):
            self._future.setdefault(message.view, []).append(message)
            return []
        return handler(message)

    def _on_pre_prepare(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.view or message.sender != self.config.leader_of(message.view):
            return []
        if message.view in self._pre_prepared:
            return []
        payload = message.payload or {}
        value = payload.get("value")
        if value is None or not self.config.is_valid_value(value):
            return []
        # A replica already prepared on some value must not accept a
        # conflicting proposal in a later view unless the view-change logic
        # carried it over (the leader's _proposal_value enforces the carry-over;
        # here we simply refuse to contradict our own prepared certificate).
        digest = self._remember(value)
        if self.prepared is not None and message.view > self.prepared.view:
            if value_digest(self.prepared.value) != digest:
                return []
        self._pre_prepared[message.view] = value
        self._sent_prepare.add(message.view)
        prepare = ConsensusMessage(
            msg_type="PBFT/PREPARE",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": digest},
        )
        return [BroadcastAction(prepare)]

    def _on_prepare(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.view:
            return []
        digest = (message.payload or {}).get("digest")
        if digest is None:
            return []
        voters = self._prepares.setdefault((message.view, digest), set())
        voters.add(message.sender)
        if len(voters) < self.config.quorum:
            return []
        if message.view in self._sent_commit:
            return []
        value = self._values_by_digest.get(digest)
        if value is None or self._pre_prepared.get(message.view) is None:
            return []
        self.prepared = PreparedCertificate(view=message.view, value=value)
        self._sent_commit.add(message.view)
        commit = ConsensusMessage(
            msg_type="PBFT/COMMIT",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": digest},
        )
        return [BroadcastAction(commit)]

    def _on_commit(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.view:
            return []
        digest = (message.payload or {}).get("digest")
        if digest is None:
            return []
        voters = self._commits.setdefault((message.view, digest), set())
        voters.add(message.sender)
        if len(voters) < self.config.quorum:
            return []
        value = self._values_by_digest.get(digest)
        if value is None:
            return []
        actions = self._decide(value, message.view)
        if actions:
            # Help laggards that already moved past this view (single-shot PBFT
            # has no checkpoint transfer): ship the decision with its commit
            # certificate so they can adopt it safely.
            certificate = ConsensusMessage(
                msg_type="PBFT/DECIDED",
                sender=self.config.node_id,
                view=message.view,
                payload={"value": value, "voters": frozenset(voters)},
            )
            actions.append(BroadcastAction(certificate))
        return actions

    def _on_decided(self, message: ConsensusMessage) -> List[Action]:
        payload = message.payload or {}
        value = payload.get("value")
        voters = payload.get("voters", frozenset())
        if value is None or len(voters) < self.config.quorum:
            return []
        return self._decide(value, message.view)

    def _on_view_change(self, message: ConsensusMessage) -> List[Action]:
        certificate: Optional[PreparedCertificate] = (message.payload or {}).get("prepared")
        per_view = self._view_changes.setdefault(message.view, {})
        per_view[message.sender] = certificate
        actions: List[Action] = []
        # Adopt the new view once a quorum wants it (even if our timer is slow).
        if message.view > self.view and len(per_view) >= self.config.quorum:
            actions.extend(self._enter_view(message.view))
        if self._is_leader(message.view) and message.view == self.view:
            actions.extend(self._maybe_pre_prepare())
        return actions

    # -- timers -------------------------------------------------------------------
    def on_timeout(self, timer_id: str) -> List[Action]:
        if self.decided or not timer_id.startswith("view-"):
            return []
        timed_out_view = int(timer_id.split("-", 1)[1])
        if timed_out_view != self.view:
            return []
        return self._enter_view(timed_out_view + 1)

    def _enter_view(self, new_view: int) -> List[Action]:
        self.view = new_view
        actions: List[Action] = [self._view_timer(new_view)]
        view_change = ConsensusMessage(
            msg_type="PBFT/VIEW-CHANGE",
            sender=self.config.node_id,
            view=new_view,
            payload={"prepared": self.prepared},
        )
        actions.append(BroadcastAction(view_change))
        for buffered in self._future.pop(new_view, []):
            actions.extend(self.on_message(buffered))
        return actions
