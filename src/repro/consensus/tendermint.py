"""A single-shot Tendermint consensus engine.

Tendermint's characteristic structure — PROPOSAL, PREVOTE, PRECOMMIT per
round, with value locking on a *polka* (a quorum of prevotes) and a
``validValue`` that later proposers must re-propose — implemented as a pure
state machine.  Rounds advance on timer expiry; the paper cites Tendermint's
linear view change (but with waiting) as one of the candidate agreement
engines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusEngine,
    ConsensusMessage,
    EngineConfig,
    SetTimerAction,
)
from repro.consensus.values import NIL_DIGEST, value_digest


class TendermintEngine(ConsensusEngine):
    """Tendermint-style consensus, single-shot."""

    name = "tendermint"
    good_case_rounds = 3

    def __init__(self, config: EngineConfig) -> None:
        super().__init__(config)
        self.round = 0
        self.started = False
        self.input_value: Any = None
        self.locked_value: Any = None
        self.locked_round: int = -1
        self.valid_value: Any = None
        self.valid_round: int = -1
        self._proposals: Dict[int, Any] = {}
        self._proposed_in_round: Set[int] = set()
        self._prevoted: Set[int] = set()
        self._precommitted: Set[int] = set()
        self._prevotes: Dict[Tuple[int, bytes], Set[str]] = {}
        self._precommits: Dict[Tuple[int, bytes], Set[str]] = {}
        self._values_by_digest: Dict[bytes, Any] = {}
        self._future: Dict[int, List[ConsensusMessage]] = {}

    # The agreement layer addresses views; for Tendermint a view is a round.
    @property
    def view(self) -> int:
        """Alias so hosts can treat rounds uniformly with other engines."""
        return self.round

    # -- helpers -----------------------------------------------------------
    def _is_proposer(self, round_number: Optional[int] = None) -> bool:
        round_number = self.round if round_number is None else round_number
        return self.config.leader_of(round_number) == self.config.node_id

    def _round_timer(self, round_number: int) -> SetTimerAction:
        return SetTimerAction(
            timer_id="view-%d" % round_number,
            duration=self.config.view_timeout(round_number),
        )

    def _remember(self, value: Any) -> bytes:
        digest = value_digest(value)
        self._values_by_digest[digest] = value
        return digest

    # -- lifecycle -----------------------------------------------------------
    def start(self, value: Any) -> List[Action]:
        """Start the engine with this node's input value (may be None)."""
        self.started = True
        self.input_value = value
        actions: List[Action] = [self._round_timer(0)]
        actions.extend(self._maybe_propose())
        return actions

    def set_input(self, value: Any) -> List[Action]:
        """Provide (or update) the input value after start."""
        self.input_value = value
        if not self.started or self.decided:
            return []
        return self._maybe_propose()

    def _maybe_propose(self) -> List[Action]:
        if self.decided or not self._is_proposer() or self.round in self._proposed_in_round:
            return []
        value = self.valid_value if self.valid_value is not None else self.input_value
        if value is None or not self.config.is_valid_value(value):
            return []
        self._proposed_in_round.add(self.round)
        digest = self._remember(value)
        proposal = ConsensusMessage(
            msg_type="TM/PROPOSAL",
            sender=self.config.node_id,
            view=self.round,
            payload={"value": value, "digest": digest, "valid_round": self.valid_round},
        )
        return [BroadcastAction(proposal)]

    # -- message handling --------------------------------------------------------
    def on_message(self, message: ConsensusMessage) -> List[Action]:
        if self.decided:
            return []
        handlers = {
            "TM/PROPOSAL": self._on_proposal,
            "TM/PREVOTE": self._on_prevote,
            "TM/PRECOMMIT": self._on_precommit,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return []
        if message.view > self.round:
            self._future.setdefault(message.view, []).append(message)
            return []
        return handler(message)

    def _on_proposal(self, message: ConsensusMessage) -> List[Action]:
        if message.sender != self.config.leader_of(message.view):
            return []
        payload = message.payload or {}
        value = payload.get("value")
        proposal_valid_round = payload.get("valid_round", -1)
        if value is None:
            return []
        if message.view != self.round:
            # A proposal for an earlier round still teaches us the value, which
            # may be exactly what a pending precommit quorum is waiting for.
            digest = self._remember(value)
            self._proposals[message.view] = value
            return self._try_decide(digest, message.view)
        if message.view in self._prevoted:
            return []
        digest = self._remember(value)
        self._proposals[message.view] = value
        acceptable = self.config.is_valid_value(value) and (
            self.locked_round == -1
            or value_digest(self.locked_value) == digest
            or proposal_valid_round >= self.locked_round
        )
        self._prevoted.add(message.view)
        prevote = ConsensusMessage(
            msg_type="TM/PREVOTE",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": digest if acceptable else NIL_DIGEST},
        )
        return [BroadcastAction(prevote)]

    def _on_prevote(self, message: ConsensusMessage) -> List[Action]:
        if message.view != self.round:
            return []
        digest = (message.payload or {}).get("digest")
        if digest is None:
            return []
        voters = self._prevotes.setdefault((message.view, digest), set())
        voters.add(message.sender)
        if digest == NIL_DIGEST or len(voters) < self.config.quorum:
            return []
        value = self._values_by_digest.get(digest)
        if value is None:
            return []
        # A polka: lock and precommit.
        self.locked_value = value
        self.locked_round = message.view
        self.valid_value = value
        self.valid_round = message.view
        if message.view in self._precommitted:
            return []
        self._precommitted.add(message.view)
        precommit = ConsensusMessage(
            msg_type="TM/PRECOMMIT",
            sender=self.config.node_id,
            view=message.view,
            payload={"digest": digest},
        )
        return [BroadcastAction(precommit)]

    def _on_precommit(self, message: ConsensusMessage) -> List[Action]:
        digest = (message.payload or {}).get("digest")
        if digest is None or digest == NIL_DIGEST:
            return []
        voters = self._precommits.setdefault((message.view, digest), set())
        voters.add(message.sender)
        return self._try_decide(digest, message.view)

    def _try_decide(self, digest: bytes, round_number: int) -> List[Action]:
        voters = self._precommits.get((round_number, digest), set())
        if len(voters) < self.config.quorum:
            return []
        value = self._values_by_digest.get(digest)
        if value is None:
            return []
        return self._decide(value, round_number)

    # -- timers ---------------------------------------------------------------------
    def on_timeout(self, timer_id: str) -> List[Action]:
        if self.decided or not timer_id.startswith("view-"):
            return []
        timed_out_round = int(timer_id.split("-", 1)[1])
        if timed_out_round != self.round:
            return []
        self.round = timed_out_round + 1
        actions: List[Action] = [self._round_timer(self.round)]
        actions.extend(self._maybe_propose())
        for buffered in self._future.pop(self.round, []):
            actions.extend(self.on_message(buffered))
        return actions
