"""Quorum certificates.

A quorum certificate (QC) records that at least ``n - f`` distinct nodes
voted for the same value digest in the same view.  All three engines use QCs
(PBFT's prepared certificates, Tendermint's polka, HotStuff's QC); keeping the
structure shared makes the safety tests uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.utils.validation import ensure


def quorum_size(n: int, f: Optional[int] = None) -> int:
    """Quorum size for ``n`` nodes tolerating ``f`` faults (default ⌊(n-1)/3⌋)."""
    ensure(n >= 1, "n must be positive")
    if f is None:
        f = (n - 1) // 3
    ensure(n >= 3 * f + 1, "partial synchrony requires n >= 3f + 1")
    return n - f


@dataclass(frozen=True)
class QuorumCertificate:
    """Proof that a quorum voted for ``value_digest`` in ``view``."""

    view: int
    value_digest: bytes
    voters: FrozenSet[str]
    phase: str = "generic"

    def is_valid(self, quorum: int) -> bool:
        """True when the certificate carries at least ``quorum`` distinct voters."""
        return len(self.voters) >= quorum

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "QC(view=%d, phase=%s, voters=%d)" % (self.view, self.phase, len(self.voters))


#: A conventional "genesis" certificate used before any real QC exists.
GENESIS_QC = QuorumCertificate(view=-1, value_digest=b"", voters=frozenset(), phase="genesis")
