"""Relay descriptors as seen by directory authorities.

A directory authority's vote contains one entry per relay it knows about.
For the purposes of the paper's experiments, the relevant attributes are the
ones that the Figure-2 aggregation algorithm manipulates:

* identity (fingerprint) and nickname,
* the set of flags the authority assigns (Running, Valid, Fast, ...),
* the Tor version and protocol string,
* the exit-policy summary, and
* the measured bandwidth (only some authorities run bandwidth scanners).

The textual serialisation mimics a dir-spec ``r``/``s``/``v``/``w``/``p``
entry so that vote sizes per relay are realistic (a few hundred bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Tuple

from repro.utils.memo import instance_memo
from repro.utils.validation import ValidationError, ensure


class RelayFlag:
    """The relay flags that authorities can assign.

    These mirror the flags in dir-spec §3.4.1.  Only the names matter for the
    reproduction; the aggregation rule treats every flag the same way
    (per-flag majority vote, ties broken towards "not set").
    """

    AUTHORITY = "Authority"
    BAD_EXIT = "BadExit"
    EXIT = "Exit"
    FAST = "Fast"
    GUARD = "Guard"
    HSDIR = "HSDir"
    MIDDLE_ONLY = "MiddleOnly"
    RUNNING = "Running"
    STABLE = "Stable"
    STABLE_DESC = "StaleDesc"
    V2DIR = "V2Dir"
    VALID = "Valid"


#: All known flags in canonical (sorted) order, as dir-spec requires.
RELAY_FLAGS: Tuple[str, ...] = tuple(
    sorted(
        value
        for name, value in vars(RelayFlag).items()
        if not name.startswith("_") and isinstance(value, str)
    )
)


@dataclass(frozen=True, order=True)
class ExitPolicySummary:
    """A compressed exit-policy summary (the ``p`` line of a vote entry).

    ``accept`` is True for an accept-list summary and False for a reject-list
    summary; ``ports`` is the canonical port-range string (e.g.
    ``"80,443,8080-8081"``).  Ordering is lexicographic over the serialised
    form, which is exactly the tie-break rule the aggregation algorithm uses.
    """

    accept: bool = True
    ports: str = "80,443"

    def serialize(self) -> str:
        """Return the dir-spec style one-line summary."""
        keyword = "accept" if self.accept else "reject"
        return "p %s %s" % (keyword, self.ports)

    def sort_key(self) -> str:
        """Key used for the "lexicographically larger" tie-break."""
        return self.serialize()


@dataclass(frozen=True)
class Relay:
    """One relay entry as it appears in a single authority's vote.

    Attributes
    ----------
    fingerprint:
        40-character hex identity fingerprint; the primary key for
        aggregation across votes.
    nickname:
        Relay nickname.  When votes disagree, the consensus keeps the
        nickname voted by the authority with the **largest authority ID**
        (Figure 2).
    address / or_port / dir_port:
        Network location; carried through aggregation unchanged (taken from
        the same vote that supplied the nickname).
    flags:
        Frozen set of flag names assigned by the voting authority.
    version:
        Tor software version string, e.g. ``"Tor 0.4.8.12"``.  The consensus
        keeps the **largest** version.
    protocols:
        Protocol-version summary string; the consensus keeps the largest.
    exit_policy:
        Exit-policy summary; ties are broken towards the lexicographically
        larger serialisation.
    bandwidth:
        The authority's bandwidth weight for the relay in kilobytes/s.
    measured:
        True when the bandwidth value comes from a bandwidth scanner; the
        consensus bandwidth is the **median of measured values** (falling
        back to all values when no vote measured the relay).
    descriptor_digest:
        Digest of the relay's descriptor, carried for realism in document
        sizes.
    """

    fingerprint: str
    nickname: str
    address: str = "127.0.0.1"
    or_port: int = 9001
    dir_port: int = 0
    flags: FrozenSet[str] = frozenset()
    version: str = "Tor 0.4.8.10"
    protocols: str = "Cons=1-2 Desc=1-2 DirCache=2 HSDir=2 Link=4-5 Relay=1-4"
    exit_policy: ExitPolicySummary = ExitPolicySummary()
    bandwidth: int = 1000
    measured: bool = False
    descriptor_digest: str = "0" * 40

    def __post_init__(self) -> None:
        ensure(len(self.fingerprint) == 40, "relay fingerprint must be 40 hex characters")
        ensure(self.nickname != "", "relay nickname must not be empty")
        if self.bandwidth < 0:
            raise ValidationError("relay bandwidth must be non-negative")

    def with_flags(self, flags: FrozenSet[str]) -> "Relay":
        """Return a copy of this relay with a different flag set."""
        return replace(self, flags=frozenset(flags))

    def with_bandwidth(self, bandwidth: int, measured: bool) -> "Relay":
        """Return a copy with a different bandwidth measurement."""
        return replace(self, bandwidth=bandwidth, measured=measured)

    def serialize(self) -> str:
        """Serialise this entry in a dir-spec-like multi-line format.

        The format intentionally mirrors the ``r``/``s``/``v``/``pr``/``w``/
        ``p`` lines of a real vote so that per-relay sizes (and therefore
        vote-document sizes) are realistic.

        Memoized (the dataclass is frozen): the same relay entry appears in
        many authorities' votes and every vote serialisation/digest walks
        its full relay map, so an entry's text is built once per object
        rather than once per vote per digest.
        """
        return instance_memo(self, "_serialized", self._build_serialized)

    def _build_serialized(self) -> str:
        flags_line = " ".join(sorted(self.flags))
        lines = [
            "r %s %s %s %s %d %d" % (
                self.nickname,
                self.fingerprint,
                self.descriptor_digest,
                self.address,
                self.or_port,
                self.dir_port,
            ),
            "a [%s]:%d" % (self.address, self.or_port),
            "s %s" % flags_line,
            "v %s" % self.version,
            "pr %s" % self.protocols,
            "id ed25519 %s" % self.descriptor_digest[:27],
            "m %s,%s sha256=%s" % (self.or_port, self.dir_port, self.descriptor_digest[:43]),
            "w Bandwidth=%d%s" % (self.bandwidth, " Measured=%d" % self.bandwidth if self.measured else ""),
            self.exit_policy.serialize(),
        ]
        return "\n".join(lines) + "\n"

    @property
    def entry_size_bytes(self) -> int:
        """Size of this entry's serialisation in bytes."""
        return len(self.serialize().encode("utf-8"))
