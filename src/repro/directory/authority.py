"""Directory authority identities.

Tor's live network runs nine directory authorities whose identity keys and
addresses are pinned in the client software.  The reproduction mirrors that:
:func:`make_authorities` creates ``n`` authorities with deterministic
fingerprints, signing keys, and simulator addresses.

Authority IDs matter for aggregation: when votes disagree on a relay's
nickname, the consensus keeps the nickname from the vote of the authority
with the **largest authority ID** (Figure 2 of the paper).  We define the
authority ID as the integer index assigned at creation time and expose the
fingerprint for log output that mimics Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.keys import KeyPair, KeyRing
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import ensure

#: Number of directory authorities on the live Tor network.
TOR_AUTHORITY_COUNT = 9

#: Nicknames of the live Tor directory authorities (for realistic logs).
TOR_AUTHORITY_NICKNAMES: Tuple[str, ...] = (
    "moria1",
    "tor26",
    "dizum",
    "gabelmoo",
    "dannenberg",
    "maatuska",
    "longclaw",
    "bastet",
    "faravahar",
)


def authority_node_name(authority_id: int) -> str:
    """Simulator node name of authority ``authority_id`` (the one naming rule)."""
    return "auth-%d" % authority_id


@dataclass(frozen=True)
class DirectoryAuthority:
    """Identity of one directory authority.

    Attributes
    ----------
    authority_id:
        Integer index, also the tie-break ordering used by aggregation.
    nickname:
        Human-readable name (live Tor nicknames for the default nine).
    fingerprint:
        40-hex-character identity fingerprint used in log lines.
    address:
        Simulator address, e.g. ``"100.0.0.3:8080"``.
    keypair:
        The authority's signing key pair.
    is_bandwidth_authority:
        Whether this authority runs a bandwidth scanner (and therefore
        reports measured bandwidths in its votes).
    """

    authority_id: int
    nickname: str
    fingerprint: str
    address: str
    keypair: KeyPair
    is_bandwidth_authority: bool = True

    @property
    def name(self) -> str:
        """Stable string identifier used as the simulator node name."""
        return authority_node_name(self.authority_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "DirectoryAuthority(%d, %s)" % (self.authority_id, self.nickname)


def make_authorities(
    count: int = TOR_AUTHORITY_COUNT,
    seed: int = 7,
    bandwidth_authority_count: "int | None" = None,
) -> Tuple[List[DirectoryAuthority], KeyRing]:
    """Create ``count`` directory authorities and their shared key ring.

    Parameters
    ----------
    count:
        Number of authorities (nine on the live network).
    seed:
        Seed for deterministic fingerprints.
    bandwidth_authority_count:
        How many of the authorities run bandwidth scanners; the live network
        has roughly half of the authorities measuring.  Defaults to
        ``min(5, count)``.
    """
    ensure(count >= 1, "authority count must be at least 1")
    if bandwidth_authority_count is None:
        bandwidth_authority_count = min(5, count)
    ensure(
        0 <= bandwidth_authority_count <= count,
        "bandwidth_authority_count must be between 0 and count",
    )
    rng = DeterministicRNG(seed).child("authorities")
    authorities: List[DirectoryAuthority] = []
    pairs: List[KeyPair] = []
    for index in range(count):
        nickname = (
            TOR_AUTHORITY_NICKNAMES[index]
            if index < len(TOR_AUTHORITY_NICKNAMES)
            else "auth%d" % index
        )
        fingerprint = rng.child(index).hex_string(40)
        pair = KeyPair.generate("auth-%d" % index, seed=seed.to_bytes(8, "big"))
        pairs.append(pair)
        authorities.append(
            DirectoryAuthority(
                authority_id=index,
                nickname=nickname,
                fingerprint=fingerprint,
                address="100.0.%d.%d:8080" % (index // 250, index % 250 + 1),
                keypair=pair,
                is_bandwidth_authority=index < bandwidth_authority_count,
            )
        )
    return authorities, KeyRing(pairs)
