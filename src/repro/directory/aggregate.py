"""The deterministic vote-aggregation algorithm (Figure 2 of the paper).

Every directory protocol in this library — the current v3 protocol, Luo et
al.'s synchronous protocol, and the new partial-synchrony protocol — ends by
running this same local algorithm over whatever set of votes the protocol
delivered.  The paper's robustness argument ("as long as the input contains
more votes from correct authorities than from faulty ones, the output will
make sense") is about this function, so it is implemented once, used
everywhere, and extensively property-tested.

Rules reproduced from Figure 2:

* A relay is included iff it appears in at least ``t`` votes, where the
  default threshold is ⌊``total_votes``/2⌋ (at-least-half, per the paper's
  wording) and can be configured to a strict majority.
* The relay's **nickname** (and network location) is taken from the vote of
  the authority with the **largest authority ID** among those voting for it.
* Each **flag** is set iff a majority of the votes for that relay set it;
  ties break towards "not set".
* The **largest version** and the largest protocol string are selected.
* On ties for the exit policy, the **lexicographically larger** exit-policy
  summary is selected (implemented as: pick the policy with the most votes,
  break ties towards the lexicographically larger serialisation).
* The **bandwidth** is the median of the votes that *measured* the relay,
  falling back to the median of all bandwidth votes when nobody measured it.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.directory.relay import ExitPolicySummary, Relay
from repro.directory.vote import VoteDocument
from repro.directory.consensus_doc import ConsensusDocument
from repro.utils.stats import median
from repro.utils.validation import ValidationError, ensure


@dataclass(frozen=True)
class AggregationConfig:
    """Tunable knobs of the aggregation algorithm.

    Attributes
    ----------
    inclusion_rule:
        ``"at-least-half"`` (paper's Figure 2 wording: t ≥ ⌊n/2⌋) or
        ``"strict-majority"`` (Tor dir-spec wording: more than half).
    voting_interval:
        The consensus period length propagated into the output document.
    """

    inclusion_rule: str = "at-least-half"
    voting_interval: float = 3600.0

    def __post_init__(self) -> None:
        if self.inclusion_rule not in ("at-least-half", "strict-majority"):
            raise ValidationError(
                "inclusion_rule must be 'at-least-half' or 'strict-majority', got %r"
                % self.inclusion_rule
            )

    def inclusion_threshold(self, total_votes: int) -> int:
        """Minimum number of votes naming a relay for it to be included."""
        ensure(total_votes > 0, "cannot aggregate zero votes")
        if self.inclusion_rule == "strict-majority":
            return total_votes // 2 + 1
        return max(1, total_votes // 2)


_VERSION_RE = re.compile(r"(\d+)")


@lru_cache(maxsize=4096)
def version_sort_key(version: str) -> Tuple:
    """Sort key implementing "the largest version is selected".

    Versions like ``"Tor 0.4.8.12"`` are compared numerically component by
    component; non-numeric versions fall back to lexicographic comparison.
    The key is a tuple so mixed populations still order deterministically.
    Cached: a run draws versions from a small population pool but compares
    them once per relay per vote per aggregating authority.
    """
    numbers = [int(part) for part in _VERSION_RE.findall(version)]
    return (tuple(numbers), version)


def _select_nickname_source(candidates: Mapping[int, Relay]) -> Relay:
    """Pick the entry voted by the largest authority ID (Figure 2)."""
    largest_id = max(candidates)
    return candidates[largest_id]


def _aggregate_flags(entries: Sequence[Relay], vote_count: int) -> frozenset:
    """Per-flag majority with ties broken towards 'not set'.

    ``vote_count`` is the number of votes that listed the relay; a flag is set
    when strictly more than half of those votes set it (a tie therefore drops
    the flag, matching "each flag is not set in case of a tie").
    """
    counts: Dict[str, int] = {}
    for entry in entries:
        for flag in entry.flags:
            counts[flag] = counts.get(flag, 0) + 1
    return frozenset(flag for flag, count in counts.items() if count * 2 > vote_count)


def _aggregate_exit_policy(entries: Sequence[Relay]) -> ExitPolicySummary:
    """Most-voted exit policy; ties broken towards the lexicographically larger."""
    counts: Dict[ExitPolicySummary, int] = {}
    for entry in entries:
        counts[entry.exit_policy] = counts.get(entry.exit_policy, 0) + 1
    top = max(counts.values())
    tied = [policy for policy, count in counts.items() if count == top]
    return max(tied, key=lambda policy: policy.sort_key())


def _aggregate_bandwidth(entries: Sequence[Relay]) -> Tuple[int, bool]:
    """Median of measured bandwidths, falling back to all bandwidth votes."""
    measured = [entry.bandwidth for entry in entries if entry.measured]
    if measured:
        return int(median(measured)), True
    return int(median([entry.bandwidth for entry in entries])), False


def aggregate_relay(
    votes_for_relay: Mapping[int, Relay],
    total_votes: int,
    config: AggregationConfig,
) -> Optional[Relay]:
    """Aggregate one relay's entries across votes.

    Parameters
    ----------
    votes_for_relay:
        Mapping from authority ID to that authority's entry for the relay.
    total_votes:
        Number of votes participating in the aggregation (including votes
        that did not list this relay).
    config:
        Aggregation configuration.

    Returns
    -------
    The consensus entry, or ``None`` when the relay does not meet the
    inclusion threshold.
    """
    if not votes_for_relay:
        return None
    threshold = config.inclusion_threshold(total_votes)
    if len(votes_for_relay) < threshold:
        return None

    entries = [votes_for_relay[authority_id] for authority_id in sorted(votes_for_relay)]
    source = _select_nickname_source(votes_for_relay)
    flags = _aggregate_flags(entries, len(entries))
    version = max((entry.version for entry in entries), key=version_sort_key)
    protocols = max(entry.protocols for entry in entries)
    exit_policy = _aggregate_exit_policy(entries)
    bandwidth, measured = _aggregate_bandwidth(entries)

    return replace(
        source,
        flags=flags,
        version=version,
        protocols=protocols,
        exit_policy=exit_policy,
        bandwidth=bandwidth,
        measured=measured,
    )


#: Memo of the expensive aggregation pass, keyed by the exact vote *set*
#: (digests in authority-ID order) and the aggregation knobs.  Aggregation is
#: a pure function of that key — the docstring contract below — and every
#: authority of a fault-free round aggregates the identical vote set, so an
#: N-authority run would otherwise repeat the same O(relays × votes) pass N
#: times.  Values hold the aggregated relay map; documents are built fresh
#: per call because they carry a mutable per-authority ``signatures`` list.
_AGGREGATION_MEMO_MAX = 64
_aggregation_memo: "OrderedDict[Tuple, Dict[str, Relay]]" = OrderedDict()


def clear_aggregation_caches() -> None:
    """Drop the process-global aggregation caches.

    Both caches here are process-global state that outlives a run: the
    relay-map memo above and the ``version_sort_key`` ``lru_cache``.  Sweep
    worker processes call this from their pool initialiser so a forked
    worker starts from a clean slate instead of inheriting (and pinning)
    the parent's cached relay maps — forked COW pages stay shared only
    until the OrderedDict reorders itself, after which every worker pays
    for a private copy of relay maps it may never hit again.
    """
    _aggregation_memo.clear()
    version_sort_key.cache_clear()


def _aggregate_relay_map(
    ordered: Sequence[VoteDocument], config: AggregationConfig
) -> Dict[str, Relay]:
    """The O(relays × votes) heart of aggregation (uncached)."""
    total_votes = len(ordered)
    per_relay: Dict[str, Dict[int, Relay]] = {}
    for vote in ordered:
        for fingerprint, relay in vote.relays.items():
            per_relay.setdefault(fingerprint, {})[vote.authority_id] = relay

    consensus_relays: Dict[str, Relay] = {}
    for fingerprint in sorted(per_relay):
        aggregated = aggregate_relay(per_relay[fingerprint], total_votes, config)
        if aggregated is not None:
            consensus_relays[fingerprint] = aggregated
    return consensus_relays


def aggregate_votes(
    votes: Sequence[VoteDocument],
    config: Optional[AggregationConfig] = None,
    valid_after: Optional[float] = None,
) -> ConsensusDocument:
    """Aggregate a set of votes into an (unsigned) consensus document.

    The function is deterministic in the *set* of votes: the order in which
    votes are passed does not affect the output, and duplicate votes from the
    same authority raise :class:`ValidationError` (equivocation must be
    resolved by the protocol layer before aggregation).  That determinism is
    load-bearing twice over — it is the paper's safety argument (same votes
    ⇒ byte-identical consensus ⇒ signatures add up) *and* what makes the
    relay-map memo above sound: the vote digests identify the inputs
    exactly, so repeated aggregations of one round's vote set (one per
    authority) compute the relay map once.
    """
    config = config or AggregationConfig()
    ensure(len(votes) > 0, "cannot aggregate an empty set of votes")
    seen_authorities = set()
    for vote in votes:
        if vote.authority_id in seen_authorities:
            raise ValidationError(
                "duplicate vote from authority %d passed to aggregation" % vote.authority_id
            )
        seen_authorities.add(vote.authority_id)

    ordered = sorted(votes, key=lambda vote: vote.authority_id)
    source_digests = tuple(vote.digest_hex() for vote in ordered)

    memo_key = (source_digests, config.inclusion_rule, config.voting_interval)
    consensus_relays = _aggregation_memo.get(memo_key)
    if consensus_relays is None:
        consensus_relays = _aggregate_relay_map(ordered, config)
        _aggregation_memo[memo_key] = consensus_relays
        if len(_aggregation_memo) > _AGGREGATION_MEMO_MAX:
            _aggregation_memo.popitem(last=False)
    else:
        _aggregation_memo.move_to_end(memo_key)

    if valid_after is None:
        valid_after = ordered[0].valid_after
    return ConsensusDocument(
        valid_after=valid_after,
        # A shallow copy per document: entries are frozen Relay dataclasses,
        # but the mapping itself must not be shared between the documents of
        # different authorities (serialize_body memoizes on its length).
        relays=dict(consensus_relays),
        source_vote_digests=source_digests,
        voting_interval=config.voting_interval,
    )
