"""Tor directory data model.

This sub-package models the artefacts that the directory protocols move
around:

* :class:`Relay` — one relay's descriptor summary (the per-router entry of a
  vote), including flags, version, exit-policy summary, and measured
  bandwidth;
* :class:`VoteDocument` — one authority's status vote (its view of all
  relays), serialisable to a dir-spec-like text format so that its wire size
  scales realistically with the number of relays;
* :class:`ConsensusDocument` — the hourly consensus, plus the authority
  signatures attached to it;
* :func:`aggregate_votes` — the deterministic aggregation algorithm from
  Figure 2 of the paper (majority inclusion, per-flag majority, largest
  version, lexicographically larger exit policy, median bandwidth);
* :class:`DirectoryAuthority` / :func:`make_authorities` — authority
  identities (fingerprints, signing keys).
"""

from repro.directory.relay import ExitPolicySummary, Relay, RelayFlag, RELAY_FLAGS
from repro.directory.vote import VoteDocument, VOTE_HEADER_BYTES, relay_entry_size_bytes
from repro.directory.consensus_doc import ConsensusDocument, ConsensusSignature
from repro.directory.aggregate import AggregationConfig, aggregate_votes
from repro.directory.authority import DirectoryAuthority, make_authorities

__all__ = [
    "ExitPolicySummary",
    "Relay",
    "RelayFlag",
    "RELAY_FLAGS",
    "VoteDocument",
    "VOTE_HEADER_BYTES",
    "relay_entry_size_bytes",
    "ConsensusDocument",
    "ConsensusSignature",
    "AggregationConfig",
    "aggregate_votes",
    "DirectoryAuthority",
    "make_authorities",
]
