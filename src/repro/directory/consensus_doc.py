"""Consensus documents and their signatures.

The output of every directory protocol in this library is a
:class:`ConsensusDocument`: the aggregated relay list plus the set of
authority signatures attached to it.  A consensus is *valid* for clients only
if it carries signatures from a majority of authorities over the **same**
document digest — that requirement is exactly what the DDoS attack exploits
(authorities that aggregated different vote subsets produce different
documents, whose signatures do not add up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crypto.digest import digest_hex, sha256_digest
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import Signature, sign, verify
from repro.directory.relay import Relay
from repro.utils.validation import ensure


@dataclass(frozen=True)
class ConsensusSignature:
    """A single authority signature over a consensus document digest."""

    authority_id: int
    authority_fingerprint: str
    signature: Signature

    @property
    def size_bytes(self) -> int:
        """Wire size of the signature record."""
        return self.signature.size_bytes + len(self.authority_fingerprint)


@dataclass(frozen=True)
class ConsensusDocument:
    """The hourly network-status consensus.

    Frozen: the body fields are fixed at construction, which is what makes
    the body/digest memoization below sound.  The two mutable *containers*
    keep their workflows — ``signatures`` is a list that grows as
    authorities sign (and is deliberately outside the body), and ``relays``
    is guarded by the memo's relay-count key for the tests that poke it.

    Attributes
    ----------
    valid_after:
        Start of the validity period.
    relays:
        Aggregated relay entries keyed by fingerprint.
    source_vote_digests:
        Digests of the votes that went into the aggregation, in authority-ID
        order (⊥ entries are omitted).  Two consensuses are byte-identical iff
        they aggregated the same votes, which is how the safety arguments in
        the paper are phrased.
    signatures:
        Authority signatures collected so far.
    voting_interval:
        Consensus period length (seconds).
    """

    valid_after: float
    relays: Dict[str, Relay]
    source_vote_digests: Tuple[str, ...] = ()
    signatures: List[ConsensusSignature] = field(default_factory=list)
    voting_interval: float = 3600.0

    # -- lifetime rules (dir-spec §1.4) -----------------------------------
    @property
    def fresh_until(self) -> float:
        """Time after which clients should prefer a newer consensus."""
        return self.valid_after + self.voting_interval

    @property
    def valid_until(self) -> float:
        """Time after which clients must not use this consensus (3 periods)."""
        return self.valid_after + 3 * self.voting_interval

    def is_usable_at(self, time: float) -> bool:
        """True if clients may still use the consensus at ``time``."""
        return self.valid_after <= time <= self.valid_until

    # -- content ------------------------------------------------------------
    @property
    def relay_count(self) -> int:
        """Number of relays listed in the consensus."""
        return len(self.relays)

    def serialize_body(self) -> str:
        """Serialise the unsigned consensus body.

        Memoized: the body covers ``valid_after``, ``relays``,
        ``source_vote_digests`` and ``voting_interval`` — all fixed at
        construction (only ``signatures``, which the body deliberately
        excludes, grows afterwards) — while every ``sign_with`` /
        ``valid_signatures`` / ``size_bytes`` call re-derives the digest.
        Re-signing paths (one signature exchange per peer) would otherwise
        re-serialise and re-hash an identical body per destination.  The
        cache is keyed on the relay count, so adding/removing entries
        invalidates it; replacing an entry in place while keeping the count
        is not supported (build a new document instead).
        """
        cached = self.__dict__.get("_body_cache")
        if cached is not None and cached[0] == len(self.relays):
            return cached[1]
        lines = [
            "network-status-version 3",
            "vote-status consensus",
            "consensus-method 33",
            "valid-after %d" % int(self.valid_after),
            "fresh-until %d" % int(self.fresh_until),
            "valid-until %d" % int(self.valid_until),
            "voting-delay 300 300",
            "sources %s" % ",".join(self.source_vote_digests),
        ]
        parts = ["\n".join(lines) + "\n"]
        for fingerprint in sorted(self.relays):
            parts.append(self.relays[fingerprint].serialize())
        body = "".join(parts)
        self.__dict__["_body_cache"] = (len(self.relays), body)
        return body

    def digest(self) -> bytes:
        """SHA-256 digest of the unsigned body (memoized like the body)."""
        cached = self.__dict__.get("_digest")
        if cached is None or cached[0] != len(self.relays):
            cached = (len(self.relays), sha256_digest(self.serialize_body()))
            self.__dict__["_digest"] = cached
        return cached[1]

    def digest_hex(self) -> str:
        """Hex digest of the unsigned body (memoized like the body)."""
        cached = self.__dict__.get("_digest_hex")
        if cached is None or cached[0] != len(self.relays):
            cached = (len(self.relays), digest_hex(self.serialize_body()))
            self.__dict__["_digest_hex"] = cached
        return cached[1]

    def body_bytes(self) -> bytes:
        """UTF-8 wire encoding of the unsigned body (memoized like the body).

        This is the zero-copy serving seam: directory caches and mirrors
        answer one fetch per client per wave, and re-encoding a multi-hundred
        relay body per fetch dominated the serving cost.  The cache is keyed
        on the relay count, exactly like :meth:`serialize_body`.
        """
        cached = self.__dict__.get("_body_bytes")
        if cached is None or cached[0] != len(self.relays):
            cached = (len(self.relays), self.serialize_body().encode("utf-8"))
            self.__dict__["_body_bytes"] = cached
        return cached[1]

    @property
    def size_bytes(self) -> int:
        """Wire size of the body plus attached signatures.

        The body length is memoized via :meth:`body_bytes`; the signature sum
        is cached keyed on the signature count, which only grows (duplicates
        are dropped by :meth:`add_signature`).
        """
        cached = self.__dict__.get("_signature_bytes")
        if cached is None or cached[0] != len(self.signatures):
            cached = (
                len(self.signatures),
                sum(signature.size_bytes for signature in self.signatures),
            )
            self.__dict__["_signature_bytes"] = cached
        return len(self.body_bytes()) + cached[1]

    # -- signatures ----------------------------------------------------------
    def sign_with(self, authority_id: int, fingerprint: str, keypair: KeyPair) -> ConsensusSignature:
        """Create (and attach) this authority's signature over the body digest."""
        signature = sign(keypair, "consensus", self.digest())
        record = ConsensusSignature(authority_id, fingerprint, signature)
        self.add_signature(record)
        return record

    def add_signature(self, record: ConsensusSignature) -> None:
        """Attach a signature record, ignoring duplicates from the same authority."""
        if any(existing.authority_id == record.authority_id for existing in self.signatures):
            return
        self.signatures.append(record)

    def valid_signatures(self, ring: KeyRing) -> List[ConsensusSignature]:
        """Return the attached signatures that verify over this body digest."""
        digest = self.digest()
        good = []
        for record in self.signatures:
            if record.signature.message != digest:
                continue
            if verify(ring, record.signature):
                good.append(record)
        return good

    def is_valid(self, ring: KeyRing, total_authorities: int) -> bool:
        """True when a strict majority of authorities signed this exact body."""
        ensure(total_authorities > 0, "total_authorities must be positive")
        return len(self.valid_signatures(ring)) * 2 > total_authorities
