"""Vote (status) documents.

Each authority produces one vote per consensus period, containing metadata
about the voting interval plus one entry per relay the authority knows about.
The paper's bandwidth experiments hinge on the fact that the **size of a vote
grows linearly with the number of relays** (Figure 6/7), so the vote document
here serialises to a realistic dir-spec-like text format and exposes its wire
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.crypto.digest import digest_hex, sha256_digest
from repro.directory.relay import Relay
from repro.utils.memo import instance_memo
from repro.utils.validation import ensure

#: Approximate size of the vote preamble and key certificate material, bytes.
VOTE_HEADER_BYTES = 4096


def relay_entry_size_bytes(relay: Relay) -> int:
    """Wire size of one relay entry inside a vote."""
    return relay.entry_size_bytes


@dataclass(frozen=True)
class VoteDocument:
    """One authority's status vote for a single consensus period.

    Attributes
    ----------
    authority_id:
        The voting authority's integer ID.
    authority_fingerprint:
        The voting authority's fingerprint (used in logs and signatures).
    valid_after:
        Start of the consensus period this vote is for (seconds since the
        simulation epoch).
    relays:
        Mapping from relay fingerprint to the authority's :class:`Relay`
        entry.
    voting_interval:
        Length of the consensus period in seconds (3600 on the live network).
    """

    authority_id: int
    authority_fingerprint: str
    valid_after: float
    relays: Dict[str, Relay]
    voting_interval: float = 3600.0
    #: When set, :attr:`size_bytes` reports the size a vote covering this many
    #: relays would have, even though only a sample of relays is materialised.
    #: Large parameter sweeps use this to keep runtimes reasonable without
    #: changing the bandwidth model (see DESIGN-calibration.md).
    padded_relay_count: Optional[int] = None

    def __post_init__(self) -> None:
        ensure(self.voting_interval > 0, "voting interval must be positive")
        if self.padded_relay_count is not None:
            ensure(self.padded_relay_count >= 0, "padded_relay_count must be non-negative")

    # -- content ----------------------------------------------------------
    @property
    def relay_count(self) -> int:
        """Number of relay entries in the vote."""
        return len(self.relays)

    def fingerprints(self) -> Tuple[str, ...]:
        """Sorted tuple of relay fingerprints present in the vote."""
        return tuple(sorted(self.relays))

    def get(self, fingerprint: str) -> Optional[Relay]:
        """Return the entry for ``fingerprint`` or None."""
        return self.relays.get(fingerprint)

    # -- serialisation ----------------------------------------------------
    def header(self) -> str:
        """Serialise the vote preamble."""
        lines = [
            "network-status-version 3",
            "vote-status vote",
            "consensus-methods 28 29 30 31 32 33",
            "published %d" % int(self.valid_after),
            "valid-after %d" % int(self.valid_after),
            "fresh-until %d" % int(self.valid_after + self.voting_interval),
            "valid-until %d" % int(self.valid_after + 3 * self.voting_interval),
            "voting-delay 300 300",
            "dir-source auth-%d %s 127.0.0.1 127.0.0.1 8080 9001"
            % (self.authority_id, self.authority_fingerprint),
            "known-flags Authority BadExit Exit Fast Guard HSDir MiddleOnly"
            " Running Stable StaleDesc V2Dir Valid",
        ]
        return "\n".join(lines) + "\n"

    def serialize(self) -> str:
        """Serialise the full vote (preamble + one entry per relay).

        Memoized: votes are frozen and their relay map is never mutated
        after construction, while serialization is on several per-peer hot
        paths — every aggregation digests every source vote, and Byzantine
        equivocation re-wraps the alternate vote per destination — so the
        text (and the digests below) is computed once per vote, not once
        per use.
        """
        return instance_memo(self, "_serialized", self._build_serialized)

    def _build_serialized(self) -> str:
        parts = [self.header()]
        # Pad the header to the modelled certificate size so small votes do
        # not look unrealistically tiny on the wire.
        header_len = len(parts[0].encode("utf-8"))
        if header_len < VOTE_HEADER_BYTES:
            parts.append("#" * (VOTE_HEADER_BYTES - header_len) + "\n")
        for fingerprint in sorted(self.relays):
            parts.append(self.relays[fingerprint].serialize())
        return "".join(parts)

    @property
    def size_bytes(self) -> int:
        """Wire size of the serialised vote.

        When :attr:`padded_relay_count` is set and exceeds the number of
        materialised relays, the size is extrapolated from the average
        per-relay entry size so that the bandwidth model sees a full-size
        vote.
        """
        return instance_memo(self, "_size_bytes", self._compute_size_bytes)

    def _compute_size_bytes(self) -> int:
        actual = len(self.serialize().encode("utf-8"))
        if (
            self.padded_relay_count is not None
            and self.relay_count > 0
            and self.padded_relay_count > self.relay_count
        ):
            per_relay = (actual - VOTE_HEADER_BYTES) / self.relay_count
            return int(VOTE_HEADER_BYTES + per_relay * self.padded_relay_count)
        return actual

    def digest(self) -> bytes:
        """SHA-256 digest of the serialised vote (memoized, like the text)."""
        return instance_memo(self, "_digest", lambda: sha256_digest(self.serialize()))

    def digest_hex(self) -> str:
        """Hex digest of the serialised vote (memoized, like the text)."""
        return instance_memo(self, "_digest_hex", lambda: digest_hex(self.serialize()))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_relays(
        cls,
        authority_id: int,
        authority_fingerprint: str,
        relays: Iterable[Relay],
        valid_after: float = 0.0,
        voting_interval: float = 3600.0,
        padded_relay_count: Optional[int] = None,
    ) -> "VoteDocument":
        """Build a vote from an iterable of relay entries."""
        indexed = {relay.fingerprint: relay for relay in relays}
        return cls(
            authority_id=authority_id,
            authority_fingerprint=authority_fingerprint,
            valid_after=valid_after,
            relays=indexed,
            voting_interval=voting_interval,
            padded_relay_count=padded_relay_count,
        )


def estimate_vote_size_bytes(relay_count: int, per_relay_bytes: int = 390) -> int:
    """Analytic estimate of a vote's size for ``relay_count`` relays.

    Used by closed-form analyses (e.g. the Table 1 complexity model and the
    attack-cost calculator) when a full synthetic population is not needed.
    The default per-relay size matches the serialised :class:`Relay` entries
    generated by :mod:`repro.netgen`.
    """
    ensure(relay_count >= 0, "relay count must be non-negative")
    return VOTE_HEADER_BYTES + relay_count * per_relay_bytes
