"""Protocol messages carried by the simulated network.

A :class:`Message` is a typed envelope with an explicit wire size.  The
transport layer only cares about ``size_bytes``; the protocol layers switch on
``msg_type`` and read ``payload``.  Keeping the size explicit (rather than
serialising payloads) lets the protocols attach rich Python objects while the
bandwidth model still sees realistic document sizes.

Messages sit on the transport hot path — every flow holds one and large runs
create hundreds of thousands — so the class is a plain ``__slots__`` object
rather than a dataclass: no per-instance ``__dict__``, and the metadata dict
is only materialised for the minority of messages that are annotated.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.utils.validation import ensure

_MESSAGE_IDS = itertools.count(1)

#: Modelled size of protocol framing / headers for small control messages.
CONTROL_MESSAGE_OVERHEAD_BYTES = 256


class SharedPayload:
    """Flyweight handle pairing a payload with its wire size, computed once.

    Broadcast fast paths build one of these per *payload* instead of
    evaluating ``size_bytes`` per destination: sizing a vote, proposal, or
    consensus document walks its entries (or serialises its body), so an
    N-way broadcast priced per destination does that walk N times for
    identical bytes.  A handle freezes the answer; :class:`Message` unwraps
    it on construction, so receivers still see the raw ``payload`` value.
    """

    __slots__ = ("value", "size_bytes")

    def __init__(self, value: Any, size_bytes: int) -> None:
        ensure(size_bytes >= 0, "shared payload size must be non-negative")
        self.value = value
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "SharedPayload(size_bytes=%d, value=%r)" % (self.size_bytes, self.value)


class Message:
    """A single protocol message.

    Attributes
    ----------
    msg_type:
        Protocol-level type tag, e.g. ``"VOTE"``, ``"DOCUMENT"``,
        ``"HOTSTUFF/PREPARE"``.
    sender:
        Name of the sending node (filled by the network on send).
    payload:
        Arbitrary protocol payload.
    size_bytes:
        Wire size used by the bandwidth model.
    msg_id:
        Unique identifier (assigned automatically), useful in traces.
    metadata:
        Free-form annotations (e.g. the round the message belongs to).
    """

    __slots__ = ("msg_type", "sender", "payload", "size_bytes", "msg_id", "_metadata")

    def __init__(
        self,
        msg_type: str,
        sender: str = "",
        payload: Any = None,
        size_bytes: int = CONTROL_MESSAGE_OVERHEAD_BYTES,
        msg_id: Optional[int] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        ensure(msg_type != "", "message type must not be empty")
        if type(payload) is SharedPayload:
            size_bytes = payload.size_bytes
            payload = payload.value
        ensure(size_bytes >= 0, "message size must be non-negative")
        self.msg_type = msg_type
        self.sender = sender
        self.payload = payload
        self.size_bytes = size_bytes
        self.msg_id = next(_MESSAGE_IDS) if msg_id is None else msg_id
        self._metadata = metadata

    @property
    def metadata(self) -> Dict[str, Any]:
        """Annotation dict, created lazily on first access."""
        if self._metadata is None:
            self._metadata = {}
        return self._metadata

    def annotated(self, **extra: Any) -> "Message":
        """Return self after merging ``extra`` into the metadata (chainable)."""
        self.metadata.update(extra)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "Message(msg_type=%r, sender=%r, size_bytes=%d, msg_id=%d)" % (
            self.msg_type,
            self.sender,
            self.size_bytes,
            self.msg_id,
        )
