"""Protocol messages carried by the simulated network.

A :class:`Message` is a typed envelope with an explicit wire size.  The
transport layer only cares about ``size_bytes``; the protocol layers switch on
``msg_type`` and read ``payload``.  Keeping the size explicit (rather than
serialising payloads) lets the protocols attach rich Python objects while the
bandwidth model still sees realistic document sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.utils.validation import ensure

_MESSAGE_IDS = itertools.count(1)

#: Modelled size of protocol framing / headers for small control messages.
CONTROL_MESSAGE_OVERHEAD_BYTES = 256


@dataclass
class Message:
    """A single protocol message.

    Attributes
    ----------
    msg_type:
        Protocol-level type tag, e.g. ``"VOTE"``, ``"DOCUMENT"``,
        ``"HOTSTUFF/PREPARE"``.
    sender:
        Name of the sending node (filled by the network on send).
    payload:
        Arbitrary protocol payload.
    size_bytes:
        Wire size used by the bandwidth model.
    msg_id:
        Unique identifier (assigned automatically), useful in traces.
    metadata:
        Free-form annotations (e.g. the round the message belongs to).
    """

    msg_type: str
    sender: str = ""
    payload: Any = None
    size_bytes: int = CONTROL_MESSAGE_OVERHEAD_BYTES
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ensure(self.msg_type != "", "message type must not be empty")
        ensure(self.size_bytes >= 0, "message size must be non-negative")

    def annotated(self, **extra: Any) -> "Message":
        """Return self after merging ``extra`` into the metadata (chainable)."""
        self.metadata.update(extra)
        return self
