"""The simulated network: topology, fault seams, and transport wiring.

``SimNetwork`` is deliberately thin.  It owns the pieces every transport
shares — the node registry, per-node :class:`LinkConfig` capacities, pairwise
propagation latencies, byte/message accounting, and the fault-injection
seams — and delegates everything about *moving bytes* to the layered
transport pipeline:

* a :class:`~repro.simnet.linkmodel.LinkModel` (selected by name through the
  link-model registry; the ``transport`` constructor argument) decides what
  instantaneous rate each flow gets;
* a :class:`~repro.simnet.flows.FlowScheduler` (chosen automatically from the
  model's coupling regime) owns flow lifecycle: progress advancement,
  completion-time maintenance, and per-flow timeouts.

Every message becomes a *flow* of ``size_bytes`` from the sender's uplink to
the receiver's downlink; when a flow completes, the message is delivered to
the destination node after the pairwise propagation latency.  Per-flow
timeouts model directory connection timeouts: a flow that has not completed
``timeout`` seconds after it was initiated is aborted, the receiver never
sees it, and the sender's ``on_timeout`` callback fires (this is what
produces the "Giving up downloading votes" behaviour of Figure 1).

The fault injector is consulted at send initiation (drop / rewrite), at the
delivery instant (drop), for extra delivery jitter, and when node timers
fire (crash suppression) — the same seams as before the transport split, so
fault plans behave identically under every link model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.flows import (
    BATCH_DISPATCH_ENV,
    Flow,
    FlowScheduler,
    batch_dispatch_enabled,
    make_flow_scheduler,
)
from repro.simnet.linkmodel import LinkModel, get_link_model, link_model_names
from repro.simnet.message import Message
from repro.simnet.node import ProtocolNode
from repro.simnet.trace import TraceLog
from repro.utils import phases
from repro.utils.validation import ReproError, ValidationError, ensure

# BATCH_DISPATCH_ENV / batch_dispatch_enabled are defined in (and re-exported
# from) repro.simnet.flows: the lazy scheduler gates on them too.


@dataclass(frozen=True)
class LinkConfig:
    """Uplink/downlink capacity schedules for one node.

    ``aggregate`` marks a first-class *aggregate endpoint*: the node stands
    in for many identical clients (a :class:`~repro.clients.cohort.ClientCohortNode`)
    and its schedules give the **per-client** capacity.  Flows to/from an
    aggregate link never share it — every unit of flow weight gets the full
    scheduled rate, as if each client had its own physical access link.
    Ordinary nodes leave the flag False and share capacity exactly as before.
    """

    uplink: BandwidthSchedule
    downlink: BandwidthSchedule
    aggregate: bool = False

    @classmethod
    def symmetric(cls, schedule: BandwidthSchedule) -> "LinkConfig":
        """Same schedule in both directions (authority links are symmetric)."""
        return cls(uplink=schedule, downlink=schedule)

    @classmethod
    def symmetric_mbps(cls, mbps: float) -> "LinkConfig":
        """Constant symmetric capacity given in Mbit/s."""
        return cls.symmetric(BandwidthSchedule.constant_mbps(mbps))

    @classmethod
    def per_client(
        cls, uplink_mbps: float, downlink_mbps: float
    ) -> "LinkConfig":
        """An aggregate endpoint with constant per-client capacities (Mbit/s)."""
        return cls(
            uplink=BandwidthSchedule.constant_mbps(uplink_mbps),
            downlink=BandwidthSchedule.constant_mbps(downlink_mbps),
            aggregate=True,
        )


@dataclass
class TransferStats:
    """Byte and message accounting for a simulation run (used by Table 1).

    Weighted transfers (cohort-aggregated client fetches) count their weight
    into the message counters — a weight-``w`` fetch is ``w`` client
    requests — while byte totals come from ``message.size_bytes``, which
    already carries the aggregate size.  Ordinary unit messages behave
    exactly as before.
    """

    bytes_sent: Dict[str, float] = field(default_factory=dict)
    bytes_delivered: Dict[str, float] = field(default_factory=dict)
    bytes_by_type: Dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_timed_out: int = 0
    messages_dropped: int = 0

    def record_sent(self, sender: str, message: Message, count: int = 1) -> None:
        """Account an attempted send."""
        self.bytes_sent[sender] = self.bytes_sent.get(sender, 0.0) + message.size_bytes
        self.messages_sent += count

    def record_delivered(self, sender: str, message: Message, count: int = 1) -> None:
        """Account a completed delivery."""
        self.bytes_delivered[sender] = self.bytes_delivered.get(sender, 0.0) + message.size_bytes
        self.bytes_by_type[message.msg_type] = (
            self.bytes_by_type.get(message.msg_type, 0.0) + message.size_bytes
        )
        self.messages_delivered += count

    def record_timeout(self, count: int = 1) -> None:
        """Account an aborted transfer."""
        self.messages_timed_out += count

    def record_dropped(self, count: int = 1) -> None:
        """Account a message suppressed by the fault injector."""
        self.messages_dropped += count

    @property
    def total_bytes_sent(self) -> float:
        """Total bytes handed to the transport across all nodes."""
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_delivered(self) -> float:
        """Total bytes successfully delivered across all nodes."""
        return sum(self.bytes_delivered.values())


class UnknownNodeError(ReproError):
    """Raised when sending to or from a node that was never added."""


class SimNetwork:
    """Nodes plus the pluggable flow-based transport connecting them."""

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        scheduling: Optional[str] = None,
        default_latency_s: float = 0.05,
        trace: Optional[TraceLog] = None,
        transport: Union[str, LinkModel, None] = None,
        shared_engine: Optional[str] = None,
    ) -> None:
        """Build a network.

        ``transport`` selects the link model — a registry name (``"fair"``,
        ``"fifo"``, ``"latency-only"``) or a :class:`LinkModel` instance for
        unregistered experiments.  ``scheduling`` is the deprecated pre-v3
        name for the same argument.  ``shared_engine`` selects the
        shared-regime scheduler engine (``"lazy"`` or ``"legacy"``; default
        from ``REPRO_SHARED_ENGINE``, else lazy) — see
        :mod:`repro.simnet.shared_sched`.
        """
        if transport is None:
            transport = "fair" if scheduling is None else scheduling
        elif scheduling is not None:
            raise ValidationError("pass either transport or scheduling, not both")
        model = transport if isinstance(transport, LinkModel) else get_link_model(transport)
        ensure(default_latency_s >= 0, "default latency must be non-negative")
        self.simulator = simulator or Simulator()
        self.trace = trace or TraceLog()
        self.stats = TransferStats()
        self._default_latency = default_latency_s
        self._nodes: Dict[str, ProtocolNode] = {}
        self._links: Dict[str, LinkConfig] = {}
        self._latency: Dict[Tuple[str, str], float] = {}
        self._model = model
        # Stateful models (tcp) reach latencies and the fault injector
        # through this back reference; pure models ignore it.
        model.attach(self)
        self._scheduler: FlowScheduler = make_flow_scheduler(
            model,
            self.simulator,
            self._links,
            self._complete_flow,
            self._expire_flow,
            shared_engine=shared_engine,
            # The partition-parallel engine prices its boundary channels
            # (cross-partition lookahead) off the pairwise latency table;
            # every other engine ignores the hook.
            latency_fn=self.latency,
        )
        self._fault_injector = None
        # Resolved once per network so a run's dispatch mode is fixed at
        # construction (mirroring how the shared engine is resolved).
        self._batch_dispatch = batch_dispatch_enabled()

    # -- transport introspection -----------------------------------------------
    @property
    def transport_name(self) -> str:
        """Registry name of the active link model."""
        return self._model.name

    @property
    def link_model(self) -> LinkModel:
        """The active link model instance."""
        return self._model

    @staticmethod
    def available_transports() -> Tuple[str, ...]:
        """Names accepted by the ``transport`` constructor argument."""
        return link_model_names()

    # -- fault injection --------------------------------------------------------
    def set_fault_injector(self, injector) -> None:
        """Attach a fault injector (see :class:`repro.faults.injector.FaultInjector`).

        The network consults it at send initiation (drop / rewrite), at the
        delivery instant (drop), for extra delivery jitter, and when node
        timers fire (crash suppression).  ``None`` detaches; with no injector
        attached the transport behaves bit-identically to before the fault
        layer existed.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self):
        """The attached fault injector, if any."""
        return self._fault_injector

    # -- topology -------------------------------------------------------------
    def add_node(self, node: ProtocolNode, link: LinkConfig) -> None:
        """Register a node and its link capacities."""
        if node.name in self._nodes:
            raise ValidationError("duplicate node name %r" % node.name)
        self._nodes[node.name] = node
        self._links[node.name] = link
        node._attach(self)

    def node(self, name: str) -> ProtocolNode:
        """Return the node registered under ``name``."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError("unknown node %r" % name)

    def node_names(self) -> List[str]:
        """Names of all registered nodes, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> List[ProtocolNode]:
        """All registered nodes, in insertion order."""
        return list(self._nodes.values())

    def set_latency(self, a: str, b: str, seconds: float) -> None:
        """Set the symmetric propagation latency between two nodes."""
        ensure(seconds >= 0, "latency must be non-negative")
        self._latency[(a, b)] = seconds
        self._latency[(b, a)] = seconds

    def latency(self, a: str, b: str) -> float:
        """Propagation latency from ``a`` to ``b`` (seconds)."""
        if a == b:
            return 0.0
        return self._latency.get((a, b), self._default_latency)

    def set_link(self, name: str, link: LinkConfig) -> None:
        """Replace a node's link configuration (e.g. to apply an attack schedule)."""
        if name not in self._nodes:
            raise UnknownNodeError("unknown node %r" % name)
        self._links[name] = link
        self._scheduler.on_link_replaced(name, self.simulator.now)

    # -- node timers ---------------------------------------------------------
    def schedule_node_timer(
        self, name: str, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Schedule a protocol timer owned by node ``name`` at absolute ``time``.

        Node timers route through here (rather than straight onto the
        simulator) so the fault injector can suppress timers that fire while
        their owner is crashed — a down process runs nothing.
        """
        return self.simulator.schedule(time, self._fire_node_timer, name, callback, args)

    def _fire_node_timer(self, name: str, callback: Callable[..., None], args: Tuple) -> None:
        if self._fault_injector is not None and self._fault_injector.timer_suppressed(
            name, self.simulator.now
        ):
            return
        if phases.ENABLED:
            phases.enter(phases.PROTOCOL)
            try:
                callback(*args)
            finally:
                phases.leave()
            return
        callback(*args)

    # -- lifecycle -------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Schedule every node's ``on_start`` hook at virtual time ``at``.

        A node that the fault injector reports as crashed at ``at`` boots
        late instead: its ``on_start`` is deferred to the end of the
        covering crash window.
        """
        for node in self._nodes.values():
            boot = at
            if self._fault_injector is not None:
                boot = self._fault_injector.boot_time(node.name, at)
            self.schedule_node_timer(node.name, boot, node.on_start)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.simulator.run(until=until)

    # -- transport -------------------------------------------------------------
    def send(
        self,
        sender: str,
        destination: str,
        message: Message,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
        on_delivered: Optional[Callable[[Message, str, float], None]] = None,
        weight: int = 1,
    ) -> int:
        """Initiate a transfer of ``message`` from ``sender`` to ``destination``.

        ``weight`` aggregates identical endpoint transfers into one flow
        (cohort client fetches): the flow takes ``weight`` shares of every
        shared link and ``message.size_bytes`` must carry the aggregate byte
        count.  Returns the flow id (0 when no flow was created: latency-only
        deliveries of empty messages, or messages dropped by the fault
        injector at send initiation).
        """
        if sender not in self._nodes:
            raise UnknownNodeError("unknown sender %r" % sender)
        if destination not in self._nodes:
            raise UnknownNodeError("unknown destination %r" % destination)
        if sender == destination:
            raise ValidationError("a node cannot send a message to itself")
        ensure(weight >= 1, "flow weight must be at least 1")
        # Flow admission is transport work even when a protocol handler calls
        # it (rate maintenance dominates a broadcast burst's cost), so the
        # phase accounting claims it out of the enclosing protocol bucket.
        if phases.ENABLED:
            phases.enter(phases.TRANSPORT)
            try:
                return self._admit(sender, destination, message, timeout,
                                   on_timeout, on_delivered, weight)
            finally:
                phases.leave()
        return self._admit(sender, destination, message, timeout,
                           on_timeout, on_delivered, weight)

    def _admit(
        self,
        sender: str,
        destination: str,
        message: Message,
        timeout: Optional[float],
        on_timeout: Optional[Callable[[Message, str], None]],
        on_delivered: Optional[Callable[[Message, str, float], None]],
        weight: int,
    ) -> int:
        """Validated send: account, fault-filter, and start (or deliver)."""
        message.sender = sender
        now = self.simulator.now
        self.stats.record_sent(sender, message, count=weight)

        if self._fault_injector is not None:
            filtered = self._fault_injector.filter_send(sender, destination, message, now)
            if filtered is None:
                self.stats.record_dropped(count=weight)
                return 0
            filtered.sender = sender
            message = filtered

        if message.size_bytes <= 0:
            self._schedule_delivery(sender, destination, message, on_delivered, weight, now)
            return 0

        flow = Flow(
            flow_id=self.simulator.next_serial(),
            src=sender,
            dst=destination,
            message=message,
            start_time=now,
            deadline=None if timeout is None else now + timeout,
            on_timeout=on_timeout,
            on_delivered=on_delivered,
            weight=weight,
        )
        self._scheduler.start_flow(flow, now)
        return flow.flow_id

    def send_many(
        self,
        sender: str,
        destinations: Iterable[str],
        message: Message,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
        on_delivered: Optional[Callable[[Message, str, float], None]] = None,
        weight: int = 1,
    ) -> List[int]:
        """Broadcast fast path: one shared ``message`` to many destinations.

        The per-destination :meth:`send` loop a broadcast would otherwise be
        creates one message, one flow, and one rate pass per destination —
        O(N²) object and rate churn per round at 300 authorities.  Here one
        :class:`Message` (whose payload/size were built once, e.g. via
        :class:`~repro.simnet.message.SharedPayload`) is shared by every
        flow, and the whole burst is admitted through the scheduler's
        ``start_flows`` batch, one rate pass over the final occupancy.

        Accounting, fault filtering (a rewrite replaces the message for that
        destination only), timeouts, and callbacks behave exactly as N
        ``send`` calls; flow ids are assigned in destination order and are
        identical to the loop's.  Returns one flow id per destination (0 for
        dropped or zero-size entries).  With ``REPRO_BATCH_DISPATCH=off``
        this *is* the sequential loop, trajectory included.
        """
        destinations = list(destinations)
        if sender not in self._nodes:
            raise UnknownNodeError("unknown sender %r" % sender)
        for destination in destinations:
            if destination not in self._nodes:
                raise UnknownNodeError("unknown destination %r" % destination)
            if destination == sender:
                raise ValidationError("a node cannot send a message to itself")
        ensure(weight >= 1, "flow weight must be at least 1")

        if not self._batch_dispatch:
            return [
                self.send(sender, destination, message, timeout=timeout,
                          on_timeout=on_timeout, on_delivered=on_delivered, weight=weight)
                for destination in destinations
            ]

        if phases.ENABLED:
            phases.enter(phases.TRANSPORT)
            try:
                return self._admit_many(sender, destinations, message, timeout,
                                        on_timeout, on_delivered, weight)
            finally:
                phases.leave()
        return self._admit_many(sender, destinations, message, timeout,
                                on_timeout, on_delivered, weight)

    def _admit_many(
        self,
        sender: str,
        destinations: List[str],
        message: Message,
        timeout: Optional[float],
        on_timeout: Optional[Callable[[Message, str], None]],
        on_delivered: Optional[Callable[[Message, str, float], None]],
        weight: int,
    ) -> List[int]:
        message.sender = sender
        now = self.simulator.now
        deadline = None if timeout is None else now + timeout
        injector = self._fault_injector
        flow_ids: List[int] = []
        flows: List[Flow] = []
        for destination in destinations:
            self.stats.record_sent(sender, message, count=weight)
            outgoing = message
            if injector is not None:
                filtered = injector.filter_send(sender, destination, message, now)
                if filtered is None:
                    self.stats.record_dropped(count=weight)
                    flow_ids.append(0)
                    continue
                filtered.sender = sender
                outgoing = filtered
            if outgoing.size_bytes <= 0:
                self._schedule_delivery(sender, destination, outgoing, on_delivered, weight, now)
                flow_ids.append(0)
                continue
            flow = Flow(
                flow_id=self.simulator.next_serial(),
                src=sender,
                dst=destination,
                message=outgoing,
                start_time=now,
                deadline=deadline,
                on_timeout=on_timeout,
                on_delivered=on_delivered,
                weight=weight,
            )
            flows.append(flow)
            flow_ids.append(flow.flow_id)
        if flows:
            self._scheduler.start_flows(flows, now)
        return flow_ids

    def active_flow_count(self) -> int:
        """Number of in-flight transfers (mostly for tests and debugging)."""
        return self._scheduler.active_count()

    # -- scheduler callbacks -----------------------------------------------------
    def _complete_flow(self, flow: Flow) -> None:
        """A flow finished moving bytes; deliver after propagation latency."""
        self._schedule_delivery(
            flow.src, flow.dst, flow.message, flow.on_delivered, flow.weight, flow.start_time
        )

    def _expire_flow(self, flow: Flow) -> None:
        """A flow hit its deadline; account it and notify the sender."""
        self.stats.record_timeout(count=flow.weight)
        if flow.on_timeout is not None:
            flow.on_timeout(flow.message, flow.dst)

    # -- delivery ---------------------------------------------------------------
    def _schedule_delivery(
        self,
        sender: str,
        destination: str,
        message: Message,
        on_delivered: Optional[Callable[[Message, str, float], None]],
        weight: int,
        sent_at: Optional[float],
    ) -> None:
        """Schedule one delivery, coalescing same-instant arrivals per node.

        With batched dispatch on, every message arriving at ``destination``
        at the same instant shares **one** heap event keyed ``(time, node)``
        (a symmetric broadcast round completes N-1 transfers into each node
        at identical instants, so this turns O(N²) delivery events per round
        into O(N)).  Within the batch, deliveries run in the order their
        per-message events would have fired.  ``off`` keeps the per-message
        reference path.
        """
        time = self.simulator.now + self._delivery_latency(sender, destination)
        if self._batch_dispatch:
            self.simulator.schedule_batch(
                time,
                destination,
                self._deliver_batch,
                (sender, destination, message, on_delivered, weight, sent_at),
            )
            return
        self.simulator.schedule(
            time, self._deliver, sender, destination, message, on_delivered, weight, sent_at
        )

    def _deliver_batch(self, items: List[Tuple]) -> None:
        for item in items:
            self._deliver(*item)

    def _delivery_latency(self, sender: str, destination: str) -> float:
        """Propagation latency plus any fault-injected jitter for one delivery."""
        latency = self.latency(sender, destination)
        if self._fault_injector is not None:
            latency += self._fault_injector.delivery_jitter(
                sender, destination, self.simulator.now
            )
        return latency

    def _deliver(
        self,
        sender: str,
        destination: str,
        message: Message,
        on_delivered: Optional[Callable[[Message, str, float], None]],
        weight: int = 1,
        sent_at: Optional[float] = None,
    ) -> None:
        if self._fault_injector is not None and not self._fault_injector.filter_delivery(
            sender, destination, message, self.simulator.now, sent_at=sent_at
        ):
            self.stats.record_dropped(count=weight)
            return
        self.stats.record_delivered(sender, message, count=weight)
        if phases.ENABLED:
            phases.enter(phases.PROTOCOL)
            try:
                if on_delivered is not None:
                    on_delivered(message, destination, self.simulator.now)
                self._nodes[destination].receive(message)
            finally:
                phases.leave()
            return
        if on_delivered is not None:
            on_delivered(message, destination, self.simulator.now)
        self._nodes[destination].receive(message)
