"""The simulated network: nodes, links, and flow-based transport.

Transport model
---------------

Every message becomes a *flow* of ``size_bytes`` from the sender's uplink to
the receiver's downlink.  Two scheduling policies are provided:

``"fair"`` (default)
    All flows sharing an uplink (or downlink) split its capacity equally;
    a flow's instantaneous rate is ``min(uplink_share, downlink_share)``.
    This approximates many parallel TCP connections, which is how Tor
    authorities actually push and serve votes.

``"fifo"``
    Each uplink serves its flows strictly in arrival order (one at a time,
    at full rate); the downlink is shared fairly among the flows currently
    being served into it.  Useful as an ablation of the link model.

Rates only change at discrete instants — a flow starts, a flow finishes or
times out, or a bandwidth schedule hits a breakpoint — so the transport
advances flow progress lazily and reschedules a single "recompute" event at
the earliest next instant.  When a flow completes, the message is delivered
to the destination node after the pairwise propagation latency.

Per-flow timeouts model directory connection timeouts: a flow that has not
completed ``timeout`` seconds after it was initiated is aborted, the receiver
never sees it, and the sender's ``on_timeout`` callback fires (this is what
produces the "Giving up downloading votes" behaviour of Figure 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.message import Message
from repro.simnet.node import ProtocolNode
from repro.simnet.trace import TraceLog
from repro.utils.validation import ReproError, ValidationError, ensure

#: Residual bytes below which a flow counts as complete (floating-point slack).
_COMPLETION_EPSILON_BYTES = 1e-6

#: Slack when comparing virtual times.
_TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class LinkConfig:
    """Uplink/downlink capacity schedules for one node."""

    uplink: BandwidthSchedule
    downlink: BandwidthSchedule

    @classmethod
    def symmetric(cls, schedule: BandwidthSchedule) -> "LinkConfig":
        """Same schedule in both directions (authority links are symmetric)."""
        return cls(uplink=schedule, downlink=schedule)

    @classmethod
    def symmetric_mbps(cls, mbps: float) -> "LinkConfig":
        """Constant symmetric capacity given in Mbit/s."""
        return cls.symmetric(BandwidthSchedule.constant_mbps(mbps))


@dataclass
class TransferStats:
    """Byte and message accounting for a simulation run (used by Table 1)."""

    bytes_sent: Dict[str, float] = field(default_factory=dict)
    bytes_delivered: Dict[str, float] = field(default_factory=dict)
    bytes_by_type: Dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_timed_out: int = 0
    messages_dropped: int = 0

    def record_sent(self, sender: str, message: Message) -> None:
        """Account an attempted send."""
        self.bytes_sent[sender] = self.bytes_sent.get(sender, 0.0) + message.size_bytes
        self.messages_sent += 1

    def record_delivered(self, sender: str, message: Message) -> None:
        """Account a completed delivery."""
        self.bytes_delivered[sender] = self.bytes_delivered.get(sender, 0.0) + message.size_bytes
        self.bytes_by_type[message.msg_type] = (
            self.bytes_by_type.get(message.msg_type, 0.0) + message.size_bytes
        )
        self.messages_delivered += 1

    def record_timeout(self) -> None:
        """Account an aborted transfer."""
        self.messages_timed_out += 1

    def record_dropped(self) -> None:
        """Account a message suppressed by the fault injector."""
        self.messages_dropped += 1

    @property
    def total_bytes_sent(self) -> float:
        """Total bytes handed to the transport across all nodes."""
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_delivered(self) -> float:
        """Total bytes successfully delivered across all nodes."""
        return sum(self.bytes_delivered.values())


class _Flow:
    """Internal per-transfer state."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "message",
        "remaining",
        "start_time",
        "deadline",
        "rate",
        "on_timeout",
        "on_delivered",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        message: Message,
        start_time: float,
        deadline: Optional[float],
        on_timeout: Optional[Callable[[Message, str], None]],
        on_delivered: Optional[Callable[[Message, str, float], None]],
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.message = message
        self.remaining = float(message.size_bytes)
        self.start_time = start_time
        self.deadline = deadline
        self.rate = 0.0
        self.on_timeout = on_timeout
        self.on_delivered = on_delivered


class UnknownNodeError(ReproError):
    """Raised when sending to or from a node that was never added."""


class SimNetwork:
    """Nodes plus the flow-based transport connecting them."""

    SCHEDULING_POLICIES = ("fair", "fifo")

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        scheduling: str = "fair",
        default_latency_s: float = 0.05,
        trace: Optional[TraceLog] = None,
    ) -> None:
        if scheduling not in self.SCHEDULING_POLICIES:
            raise ValidationError(
                "scheduling must be one of %r, got %r" % (self.SCHEDULING_POLICIES, scheduling)
            )
        ensure(default_latency_s >= 0, "default latency must be non-negative")
        self.simulator = simulator or Simulator()
        self.trace = trace or TraceLog()
        self.stats = TransferStats()
        self._scheduling = scheduling
        self._default_latency = default_latency_s
        self._nodes: Dict[str, ProtocolNode] = {}
        self._links: Dict[str, LinkConfig] = {}
        self._latency: Dict[Tuple[str, str], float] = {}
        self._flows: Dict[int, _Flow] = {}
        self._flow_ids = itertools.count(1)
        self._last_update = 0.0
        self._pending_recompute: Optional[EventHandle] = None
        self._fault_injector = None

    # -- fault injection --------------------------------------------------------
    def set_fault_injector(self, injector) -> None:
        """Attach a fault injector (see :class:`repro.faults.injector.FaultInjector`).

        The network consults it at send initiation (drop / rewrite), at the
        delivery instant (drop), for extra delivery jitter, and when node
        timers fire (crash suppression).  ``None`` detaches; with no injector
        attached the transport behaves bit-identically to before the fault
        layer existed.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self):
        """The attached fault injector, if any."""
        return self._fault_injector

    # -- topology -------------------------------------------------------------
    def add_node(self, node: ProtocolNode, link: LinkConfig) -> None:
        """Register a node and its link capacities."""
        if node.name in self._nodes:
            raise ValidationError("duplicate node name %r" % node.name)
        self._nodes[node.name] = node
        self._links[node.name] = link
        node._attach(self)

    def node(self, name: str) -> ProtocolNode:
        """Return the node registered under ``name``."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError("unknown node %r" % name)

    def node_names(self) -> List[str]:
        """Names of all registered nodes, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> List[ProtocolNode]:
        """All registered nodes, in insertion order."""
        return list(self._nodes.values())

    def set_latency(self, a: str, b: str, seconds: float) -> None:
        """Set the symmetric propagation latency between two nodes."""
        ensure(seconds >= 0, "latency must be non-negative")
        self._latency[(a, b)] = seconds
        self._latency[(b, a)] = seconds

    def latency(self, a: str, b: str) -> float:
        """Propagation latency from ``a`` to ``b`` (seconds)."""
        if a == b:
            return 0.0
        return self._latency.get((a, b), self._default_latency)

    def set_link(self, name: str, link: LinkConfig) -> None:
        """Replace a node's link configuration (e.g. to apply an attack schedule)."""
        if name not in self._nodes:
            raise UnknownNodeError("unknown node %r" % name)
        self._links[name] = link
        self._schedule_recompute(self.simulator.now)

    # -- node timers ---------------------------------------------------------
    def schedule_node_timer(
        self, name: str, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Schedule a protocol timer owned by node ``name`` at absolute ``time``.

        Node timers route through here (rather than straight onto the
        simulator) so the fault injector can suppress timers that fire while
        their owner is crashed — a down process runs nothing.
        """
        return self.simulator.schedule(time, self._fire_node_timer, name, callback, args)

    def _fire_node_timer(self, name: str, callback: Callable[..., None], args: Tuple) -> None:
        if self._fault_injector is not None and self._fault_injector.timer_suppressed(
            name, self.simulator.now
        ):
            return
        callback(*args)

    # -- lifecycle -------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Schedule every node's ``on_start`` hook at virtual time ``at``.

        A node that the fault injector reports as crashed at ``at`` boots
        late instead: its ``on_start`` is deferred to the end of the
        covering crash window.
        """
        for node in self._nodes.values():
            boot = at
            if self._fault_injector is not None:
                boot = self._fault_injector.boot_time(node.name, at)
            self.schedule_node_timer(node.name, boot, node.on_start)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (see :meth:`Simulator.run`)."""
        return self.simulator.run(until=until)

    # -- transport -------------------------------------------------------------
    def send(
        self,
        sender: str,
        destination: str,
        message: Message,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
        on_delivered: Optional[Callable[[Message, str, float], None]] = None,
    ) -> int:
        """Initiate a transfer of ``message`` from ``sender`` to ``destination``.

        Returns the flow id (0 when no flow was created: latency-only
        deliveries of empty messages, or messages dropped by the fault
        injector at send initiation).
        """
        if sender not in self._nodes:
            raise UnknownNodeError("unknown sender %r" % sender)
        if destination not in self._nodes:
            raise UnknownNodeError("unknown destination %r" % destination)
        if sender == destination:
            raise ValidationError("a node cannot send a message to itself")
        message.sender = sender
        now = self.simulator.now
        self.stats.record_sent(sender, message)

        if self._fault_injector is not None:
            filtered = self._fault_injector.filter_send(sender, destination, message, now)
            if filtered is None:
                self.stats.record_dropped()
                return 0
            filtered.sender = sender
            message = filtered

        if message.size_bytes <= 0:
            self.simulator.schedule_in(
                self._delivery_latency(sender, destination),
                self._deliver, None, sender, destination, message, on_delivered,
            )
            return 0

        flow = _Flow(
            flow_id=next(self._flow_ids),
            src=sender,
            dst=destination,
            message=message,
            start_time=now,
            deadline=None if timeout is None else now + timeout,
            on_timeout=on_timeout,
            on_delivered=on_delivered,
        )
        self._advance_progress(now)
        self._flows[flow.flow_id] = flow
        self._recompute(now)
        return flow.flow_id

    # -- flow machinery ----------------------------------------------------------
    def active_flow_count(self) -> int:
        """Number of in-flight transfers (mostly for tests and debugging)."""
        return len(self._flows)

    def _delivery_latency(self, sender: str, destination: str) -> float:
        """Propagation latency plus any fault-injected jitter for one delivery."""
        latency = self.latency(sender, destination)
        if self._fault_injector is not None:
            latency += self._fault_injector.delivery_jitter(sender, destination)
        return latency

    def _deliver(
        self,
        flow: Optional[_Flow],
        sender: str,
        destination: str,
        message: Message,
        on_delivered: Optional[Callable[[Message, str, float], None]],
    ) -> None:
        if self._fault_injector is not None and not self._fault_injector.filter_delivery(
            sender, destination, message, self.simulator.now
        ):
            self.stats.record_dropped()
            return
        self.stats.record_delivered(sender, message)
        if on_delivered is not None:
            on_delivered(message, destination, self.simulator.now)
        self._nodes[destination].receive(message)

    def _advance_progress(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        self._last_update = now

    def _flow_rates(self, now: float) -> None:
        """Assign each active flow its instantaneous rate under the policy."""
        if not self._flows:
            return
        uplink_users: Dict[str, List[_Flow]] = {}
        for flow in self._flows.values():
            uplink_users.setdefault(flow.src, []).append(flow)

        if self._scheduling == "fair":
            eligible = list(self._flows.values())
        else:  # fifo: only the oldest flow per uplink transmits
            eligible = []
            for flows in uplink_users.values():
                flows.sort(key=lambda f: f.flow_id)
                eligible.append(flows[0])

        eligible_ids = {flow.flow_id for flow in eligible}
        up_counts: Dict[str, int] = {}
        down_counts: Dict[str, int] = {}
        for flow in eligible:
            up_counts[flow.src] = up_counts.get(flow.src, 0) + 1
            down_counts[flow.dst] = down_counts.get(flow.dst, 0) + 1

        for flow in self._flows.values():
            if flow.flow_id not in eligible_ids:
                flow.rate = 0.0
                continue
            up_rate = self._links[flow.src].uplink.rate_at(now)
            down_rate = self._links[flow.dst].downlink.rate_at(now)
            up_share = up_rate / up_counts[flow.src]
            down_share = down_rate / down_counts[flow.dst]
            flow.rate = min(up_share, down_share)

    def _recompute(self, now: Optional[float] = None) -> None:
        now = self.simulator.now if now is None else now
        self._advance_progress(now)

        # Completions.
        completed = [f for f in self._flows.values() if f.remaining <= _COMPLETION_EPSILON_BYTES]
        for flow in completed:
            del self._flows[flow.flow_id]
            self.simulator.schedule_in(
                self._delivery_latency(flow.src, flow.dst),
                self._deliver,
                flow,
                flow.src,
                flow.dst,
                flow.message,
                flow.on_delivered,
            )

        # Timeouts.
        expired = [
            f
            for f in self._flows.values()
            if f.deadline is not None and now >= f.deadline - _TIME_EPSILON
        ]
        for flow in expired:
            del self._flows[flow.flow_id]
            self.stats.record_timeout()
            if flow.on_timeout is not None:
                flow.on_timeout(flow.message, flow.dst)

        # New rates and the next instant at which anything can change.
        self._flow_rates(now)
        self._schedule_recompute(now)

    def _schedule_recompute(self, now: float) -> None:
        if self._pending_recompute is not None:
            self._pending_recompute.cancel()
            self._pending_recompute = None
        if not self._flows:
            return
        candidates: List[float] = []
        for flow in self._flows.values():
            if flow.rate > 0:
                candidates.append(now + flow.remaining / flow.rate)
            if flow.deadline is not None:
                candidates.append(flow.deadline)
            for schedule in (self._links[flow.src].uplink, self._links[flow.dst].downlink):
                change = schedule.next_change_after(now)
                if change is not None:
                    candidates.append(change)
        if not candidates:
            return
        next_time = max(min(candidates), now)
        self._pending_recompute = self.simulator.schedule(next_time, self._recompute)
