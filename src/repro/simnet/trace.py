"""Tor-style trace logging for simulated nodes.

Figure 1 of the paper is simply an authority's log during the attack, showing
the "We're missing votes from 5 authorities" and "We don't have enough votes
to generate a consensus" notices.  :class:`TraceLog` collects structured
records from every node and can render them in the same ``Jan 01 01:24:30.011
[notice] ...`` style, which is what the attack-demo example and the Figure 1
benchmark print.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One log record emitted by a simulated node."""

    time: float
    node: str
    level: str
    message: str

    def format(self, epoch: Optional[datetime] = None) -> str:
        """Render this record in Tor's log line format."""
        epoch = epoch or datetime(2025, 1, 1, 1, 0, 0)
        stamp = epoch + timedelta(seconds=self.time)
        return "%s [%s] %s" % (stamp.strftime("%b %d %H:%M:%S.%f")[:-3], self.level, self.message)


class TraceLog:
    """Collects :class:`TraceRecord` entries from all nodes of a simulation."""

    #: Log levels in increasing severity, mirroring Tor's.
    LEVELS = ("debug", "info", "notice", "warn", "err")

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def record(self, time: float, node: str, level: str, message: str) -> TraceRecord:
        """Append a record and return it."""
        if level not in self.LEVELS:
            raise ValueError("unknown log level %r" % level)
        entry = TraceRecord(time=time, node=node, level=level, message=message)
        self._records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        node: Optional[str] = None,
        min_level: str = "debug",
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records filtered by node, minimum level, and predicate."""
        threshold = self.LEVELS.index(min_level)
        selected = []
        for entry in self._records:
            if node is not None and entry.node != node:
                continue
            if self.LEVELS.index(entry.level) < threshold:
                continue
            if predicate is not None and not predicate(entry):
                continue
            selected.append(entry)
        return selected

    def contains(self, fragment: str, node: Optional[str] = None) -> bool:
        """True when any (optionally node-filtered) record contains ``fragment``."""
        return any(fragment in entry.message for entry in self.records(node=node))

    def format(
        self,
        node: Optional[str] = None,
        min_level: str = "info",
        epoch: Optional[datetime] = None,
    ) -> str:
        """Render the (filtered) log as Tor-style text."""
        return "\n".join(entry.format(epoch) for entry in self.records(node=node, min_level=min_level))
