"""Structure-of-arrays vectorized scheduling for shared link models.

The lazy engine (:mod:`repro.simnet.shared_sched`) already scoped per-event
work to *touched* flows, but it still executes that work one flow at a time
in Python — a dict lookup, a few float multiplies, a heap push per flow.  At
paper scale (120 authorities broadcasting votes) a single transport event
touches an entire link occupancy set of ~100 flows, and the per-flow
interpreter overhead dominates the run (see ``BENCH_scaling.json``).

:class:`VectorSharedLinkScheduler` keeps per-flow state in parallel numpy
arrays instead — residual bytes, rate, last-update instant, weight, interned
uplink/downlink ids, deadline and next-event target — and turns the two hot
loops into array expressions:

* **Batched rate recompute.**  Link models contribute a *vector policy*
  (:data:`VECTOR_POLICIES`) that accumulates which slots an event touched
  and then rates the whole touched set in one vectorized pass — the same
  closed-form expressions as the scalar models, evaluated elementwise.
* **Instant coalescing.**  Flow admissions are buffered and all events of
  one virtual instant are serviced together: a 120-wide vote broadcast is
  admitted as a batch and re-rated once, where the lazy engine re-rates the
  sender's uplink set once per ``send()``.
* **One wake event.**  Instead of one pending heap event per flow, the
  scheduler keeps a single wake event at ``min(target)`` over all slots; due
  slots are found with one vectorized comparison and settled in flow-id
  order.  (Early wakes are harmless, exactly like the lazy engine's stale
  completion estimates: they find nothing due and re-aim.)  Stateful
  policies fold their own clock into the same event: the ``tcp`` policy's
  per-slot ack ticks (:class:`_TcpVectorPolicy`) are found by the same
  vectorized scan and a whole due cohort advances per wake, instead of one
  simulator tick per flow per ack round.

Float semantics: progress chips happen at recompute instants, which coalesce
differently from the lazy engine's per-touch chips, so trajectories agree
with the scalar engines only to rounding — the same contract as lazy vs
legacy.  Conformance is pinned at summary level (counts exact, floats within
1e-6 relative) by ``tests/simnet/test_vector_sched.py``.  Same-instant event
*ordering* also differs (the single wake settles completions in flow-id
order where the lazy engine interleaves per-flow events), so golden
comparisons are stats/counts-level, never event-order.

numpy is an optional dependency (the ``[perf]`` extra).  The module imports
without it; :func:`vector_available` gates engine selection in
:func:`repro.simnet.flows.make_flow_scheduler`, which silently falls back to
the lazy engine so pure-Python installs keep working unchanged.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.simnet.flows import (
    _COMPLETION_EPSILON_BYTES,
    _TIME_EPSILON,
    Flow,
    FlowScheduler,
)
from repro.simnet.linkmodel import _TICK_EPSILON

try:  # pragma: no cover - absence exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - absence exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "VECTOR_POLICIES",
    "VectorSharedLinkScheduler",
    "vector_available",
]

#: Initial slot-array capacity (doubled on demand).
_INITIAL_SLOTS = 256

#: Initial link-array capacity (doubled on demand).
_INITIAL_LINKS = 64


def vector_available() -> bool:
    """Whether the vectorized engine can run (numpy importable)."""
    return _np is not None


class _VectorPolicy:
    """Rate policy over slot arrays, driven by the vector scheduler.

    Mirrors :class:`repro.simnet.shared_sched.LazyRater` at array
    granularity: transitions *accumulate* touched slots instead of returning
    them, and :meth:`rates` prices a whole touched batch at once.  The same
    exactness contract applies — a slot the policy never marks touched must
    have an unchanged rate.
    """

    def __init__(self, sched: "VectorSharedLinkScheduler") -> None:
        self._s = sched

    def grow_slots(self, capacity: int) -> None:
        """Slot arrays doubled; extend any policy-owned per-slot arrays."""

    def grow_links(self, capacity: int) -> None:
        """Link arrays doubled; extend any policy-owned per-link arrays."""

    def on_add(self, slot: int) -> None:
        """Observe an admission (slot arrays and indexes already filled)."""
        raise NotImplementedError

    def on_remove(self, slot: int) -> None:
        """Observe an eviction (slot arrays still valid, about to clear)."""
        raise NotImplementedError

    def on_link_changed(self, side: str, lid: int) -> None:
        """Observe a capacity change on one link side."""
        raise NotImplementedError

    def has_touched(self) -> bool:
        raise NotImplementedError

    def take_touched(self) -> Set[int]:
        """Drain and return the touched slot set (may contain evicted slots;
        the scheduler filters by liveness)."""
        raise NotImplementedError

    def rates(self, slots) -> "object":
        """New rates for ``slots`` (an int64 array), as a float64 array."""
        raise NotImplementedError

    # -- policy-internal dynamics (stateful models: tcp ack ticks) ----------
    def next_event_time(self) -> float:
        """Earliest future instant at which the policy itself changes rates.

        The scheduler folds this into its wake aim, the array twin of
        :meth:`repro.simnet.linkmodel.LinkModel.next_event_time`.  Memoryless
        policies (fair, fifo) return ``inf``: their rates only change when
        flows or link capacities do.
        """
        return float("inf")

    def advance_due(self, now: float) -> bool:
        """Settle policy-internal dynamics due at ``now``; return whether any
        slot advanced (advanced slots must be marked touched so the
        recompute re-rates them).  Memoryless policies never have any.
        """
        return False


class _FairVectorPolicy(_VectorPolicy):
    """Max-min style fair sharing, batched.

    A flow's rate is a pure local function of its two links, so touched
    bookkeeping is just dirty *link* sets — the touched slots are the union
    of the dirty links' occupancy sets at drain time, which deduplicates
    naturally when one instant touches a link many times (broadcast bursts).
    """

    def __init__(self, sched: "VectorSharedLinkScheduler") -> None:
        super().__init__(sched)
        self._dirty_src: Set[int] = set()
        self._dirty_dst: Set[int] = set()

    def on_add(self, slot: int) -> None:
        s = self._s
        self._dirty_src.add(int(s._srcid[slot]))
        self._dirty_dst.add(int(s._dstid[slot]))

    on_remove = on_add

    def on_link_changed(self, side: str, lid: int) -> None:
        (self._dirty_src if side == "uplink" else self._dirty_dst).add(lid)

    def has_touched(self) -> bool:
        return bool(self._dirty_src or self._dirty_dst)

    def take_touched(self) -> Set[int]:
        s = self._s
        touched: Set[int] = set()
        for lid in self._dirty_src:
            touched.update(s._slots_by_src.get(lid, ()))
        for lid in self._dirty_dst:
            touched.update(s._slots_by_dst.get(lid, ()))
        self._dirty_src.clear()
        self._dirty_dst.clear()
        return touched

    def rates(self, slots):
        # Elementwise twin of FairShareLinkModel.assign_rates — same
        # expression shapes ((cap·w)/occ), so values match the scalar models
        # to float rounding.  The shared-occupancy divisors are ≥ 1 for every
        # alive slot (the slot's own weight counts), so the eagerly evaluated
        # division branch of `where` never divides by zero.
        s = self._s
        src = s._srcid[slots]
        dst = s._dstid[slots]
        weight = s._weight[slots]
        up_cap = s._up_cap[src]
        down_cap = s._down_cap[dst]
        up = _np.where(s._agg[src], up_cap * weight, up_cap * weight / s._src_w[src])
        down = _np.where(s._agg[dst], down_cap * weight, down_cap * weight / s._dst_w[dst])
        return _np.minimum(up, down)


class _FifoVectorPolicy(_VectorPolicy):
    """Strict arrival-order uplinks with fair downlink sharing, batched.

    The incremental structures are the lazy rater's — per-uplink arrival
    queues (min-heaps over flow ids with lazy deletion), the served head per
    uplink, per-downlink serving sets and weighted serving counts — held at
    slot granularity, plus two policy-owned per-slot arrays: ``eligible``
    (is the slot currently served) and ``conc`` (how many simultaneous
    transfers it stands for).  Queued slots have rate exactly 0 and are only
    touched at their own transitions.
    """

    def __init__(self, sched: "VectorSharedLinkScheduler") -> None:
        super().__init__(sched)
        self._eligible = _np.zeros(sched._capacity, dtype=bool)
        self._conc = _np.zeros(sched._capacity, dtype=_np.float64)
        self._serving_w = _np.zeros(sched._link_capacity, dtype=_np.float64)
        #: Per non-aggregate uplink lid: arrival heap of (arrival_seq, slot).
        self._queues: Dict[int, List[Tuple[int, int]]] = {}
        #: Arrival seqs lazily deleted from their queue (expired while queued).
        self._gone: Set[int] = set()
        #: Served slot per non-aggregate uplink lid.
        self._head: Dict[int, int] = {}
        #: Served slots per downlink lid.
        self._serving: Dict[int, Set[int]] = {}
        self._touched: Set[int] = set()

    def grow_slots(self, capacity: int) -> None:
        grown = capacity - len(self._eligible)
        self._eligible = _np.concatenate([self._eligible, _np.zeros(grown, dtype=bool)])
        self._conc = _np.concatenate([self._conc, _np.zeros(grown, dtype=_np.float64)])

    def grow_links(self, capacity: int) -> None:
        grown = capacity - len(self._serving_w)
        self._serving_w = _np.concatenate(
            [self._serving_w, _np.zeros(grown, dtype=_np.float64)]
        )

    # -- transitions -------------------------------------------------------
    def on_add(self, slot: int) -> None:
        s = self._s
        src = int(s._srcid[slot])
        if s._agg[src]:
            # Aggregate uplinks never queue: weight parallel per-client
            # transfers, straight to serving.
            self._conc[slot] = s._weight[slot]
            self._serve(slot)
            return
        self._conc[slot] = 1.0
        queue = self._queues.setdefault(src, [])
        heapq.heappush(queue, (s._flow_at[slot].arrival_seq, slot))
        if src in self._head:
            # Queued behind the served flow: rate 0, nobody else affected.
            self._touched.add(slot)
            return
        self._promote(src)

    def on_remove(self, slot: int) -> None:
        s = self._s
        src = int(s._srcid[slot])
        if s._agg[src]:
            self._unserve(slot)
            return
        if self._head.get(src) == slot:
            del self._head[src]
            # The head is never lazy-deleted, so it sits at the heap root.
            heapq.heappop(self._queues[src])
            self._unserve(slot)
            self._promote(src)
            return
        # Expired while queued: lazy-delete; its rate was already 0.
        self._gone.add(s._flow_at[slot].arrival_seq)

    def on_link_changed(self, side: str, lid: int) -> None:
        s = self._s
        if side == "uplink":
            if s._agg[lid]:
                self._touched.update(s._slots_by_src.get(lid, ()))
            else:
                head = self._head.get(lid)
                if head is not None:
                    self._touched.add(head)
            return
        self._touched.update(self._serving.get(lid, ()))

    def has_touched(self) -> bool:
        return bool(self._touched)

    def take_touched(self) -> Set[int]:
        touched = self._touched
        self._touched = set()
        return touched

    def rates(self, slots):
        s = self._s
        out = _np.zeros(slots.size, dtype=_np.float64)
        mask = self._eligible[slots]
        if not mask.any():
            return out
        served = slots[mask]
        src = s._srcid[served]
        dst = s._dstid[served]
        conc = self._conc[served]
        up = s._up_cap[src] * conc
        down_cap = s._down_cap[dst]
        # Rates only on the eligible subset: queued slots keep 0 without ever
        # entering the division (their serving counts may be stale/zero).
        down = _np.where(
            s._agg[dst], down_cap * conc, down_cap * conc / self._serving_w[dst]
        )
        out[mask] = _np.minimum(up, down)
        return out

    # -- machinery ---------------------------------------------------------
    def _serve(self, slot: int) -> None:
        dst = int(self._s._dstid[slot])
        bucket = self._serving.setdefault(dst, set())
        bucket.add(slot)
        self._serving_w[dst] += self._conc[slot]
        self._eligible[slot] = True
        self._touched.update(bucket)

    def _unserve(self, slot: int) -> None:
        dst = int(self._s._dstid[slot])
        bucket = self._serving[dst]
        bucket.discard(slot)
        self._eligible[slot] = False
        if not bucket:
            del self._serving[dst]
            self._serving_w[dst] = 0.0
            return
        self._serving_w[dst] -= self._conc[slot]
        self._touched.update(bucket)

    def _promote(self, src: int) -> None:
        queue = self._queues.get(src)
        while queue:
            arrival_seq, slot = queue[0]
            if arrival_seq in self._gone:
                heapq.heappop(queue)
                self._gone.discard(arrival_seq)
                continue
            self._head[src] = slot
            self._serve(slot)
            return
        if queue is not None and not queue:
            del self._queues[src]


class _TcpVectorPolicy(_FairVectorPolicy):
    """Reno congestion control over batched fair shares.

    The capacity side is exactly :class:`_FairVectorPolicy` — dirty-link
    touched sets, elementwise share math.  On top of it the policy keeps the
    congestion side in two policy-owned SoA columns mirroring the canonical
    per-slot :class:`repro.simnet.linkmodel._TcpFlowState` (which also holds
    cwnd, ssthresh, srtt/devrtt, RTO backoff, and the duplicate-ack count):

    * ``_next_tick`` — each slot's next ack-tick instant (``inf`` when
      free), so due ticks are found with one vectorized comparison and the
      whole due cohort of an instant advances in one pass (a synchronized
      broadcast wave keeps identical congestion trajectories, so its ticks
      coalesce for the entire run), where the lazy engine pays one simulator
      heap event per flow per ack round;
    * ``_wrate`` — each slot's window-limited rate ``weight·cwnd·MSS/estRTT``,
      refreshed whenever a slot's state advances, so :meth:`rates` is the
      fair share pass plus one elementwise ``minimum`` against the window
      cap.

    State *transitions* are never reimplemented here: each due slot is
    advanced through :meth:`repro.simnet.linkmodel.TcpLinkModel.advance_flow`
    (fed the slot array's granted rate), the same Reno machine the legacy
    hooks and :class:`repro.simnet.shared_sched.TcpLazyRater` drive — loss
    draws included, which keeps the per-pair ``tcp_loss_event`` streams and
    their consumption order (flow-id order within an instant, matching
    ``_settle_due``) deterministic.  Like the scalar engines, tcp makes no
    cross-engine trajectory claim: the vector engine coalesces ticks and
    chips progress at recompute instants, so it is pinned by its own golden
    trace (``golden_transport_tcp_vector.json``) plus the fair-share
    convergence property.
    """

    def __init__(self, sched: "VectorSharedLinkScheduler") -> None:
        super().__init__(sched)
        self._next_tick = _np.full(sched._capacity, _np.inf, dtype=_np.float64)
        self._wrate = _np.zeros(sched._capacity, dtype=_np.float64)
        #: Canonical per-slot congestion state (owned by the link model).
        self._state: List[Optional[object]] = [None] * sched._capacity
        #: Slots whose window advanced this instant (rate cap moved).
        self._ticked: Set[int] = set()

    def grow_slots(self, capacity: int) -> None:
        grown = capacity - len(self._next_tick)
        self._next_tick = _np.concatenate(
            [self._next_tick, _np.full(grown, _np.inf, dtype=_np.float64)]
        )
        self._wrate = _np.concatenate(
            [self._wrate, _np.zeros(grown, dtype=_np.float64)]
        )
        self._state.extend([None] * grown)

    # -- transitions -------------------------------------------------------
    def on_add(self, slot: int) -> None:
        s = self._s
        flow = s._flow_at[slot]
        state = s.model.state_of(flow, s.simulator.now)
        self._state[slot] = state
        self._next_tick[slot] = state.next_tick
        self._wrate[slot] = state.window_rate(flow.weight)
        super().on_add(slot)

    def on_remove(self, slot: int) -> None:
        s = self._s
        s.model.drop_state(s._flow_at[slot].flow_id)
        self._state[slot] = None
        self._next_tick[slot] = _np.inf
        self._wrate[slot] = 0.0
        super().on_remove(slot)

    def has_touched(self) -> bool:
        return bool(self._ticked) or super().has_touched()

    def take_touched(self) -> Set[int]:
        touched = super().take_touched()
        touched.update(self._ticked)
        self._ticked.clear()
        return touched

    # -- ack ticks ----------------------------------------------------------
    def next_event_time(self) -> float:
        hi = self._s._hi
        if not hi:
            return float("inf")
        return float(self._next_tick[:hi].min())

    def advance_due(self, now: float) -> bool:
        hi = self._s._hi
        if not hi:
            return False
        due = _np.nonzero(self._next_tick[:hi] <= now + _TICK_EPSILON)[0]
        if not due.size:
            return False
        s = self._s
        advance = s.model.advance_flow
        flow_at = s._flow_at
        rate = s._rate
        # Flow-id order, like _settle_due: it makes same-instant loss-draw
        # consumption (flows sharing an authority pair share one stream)
        # independent of slot assignment.
        for slot in sorted((int(x) for x in due), key=lambda x: flow_at[x].flow_id):
            flow = flow_at[slot]
            state = self._state[slot]
            advance(flow, state, now, granted=float(rate[slot]))
            self._next_tick[slot] = state.next_tick
            # A window change never moves a neighbour's fair share (the
            # TcpLazyRater contract), so only the ticked slot is touched.
            self._wrate[slot] = state.window_rate(flow.weight)
            self._ticked.add(slot)
        return True

    def rates(self, slots):
        # The elementwise twin of TcpLinkModel.assign_rates' rate line:
        # min(fair up/down share, window-limited rate), one array pass.
        return _np.minimum(super().rates(slots), self._wrate[slots])


#: LinkModel name -> vector policy class; the vector engine applies to
#: models listed here, everything else falls back to the lazy/legacy chain.
VECTOR_POLICIES = {
    "fair": _FairVectorPolicy,
    "fifo": _FifoVectorPolicy,
    "tcp": _TcpVectorPolicy,
}


class VectorSharedLinkScheduler(FlowScheduler):
    """Shared-regime scheduler over structure-of-arrays flow state.

    Flow objects stay the protocol-facing interface (callbacks receive them,
    and ``remaining``/``rate`` are synced back at eviction), but between
    admission and eviction the arrays are the truth.  Slots are recycled
    through a free list; ``_hi`` is the high-water mark bounding every
    vectorized scan.
    """

    def __init__(self, model, simulator, links, complete, expire) -> None:
        if _np is None:  # pragma: no cover - guarded by make_flow_scheduler
            raise RuntimeError("VectorSharedLinkScheduler requires numpy")
        super().__init__(model, simulator, links, complete, expire)
        capacity = _INITIAL_SLOTS
        self._capacity = capacity
        self._rem = _np.zeros(capacity, dtype=_np.float64)
        self._rate = _np.zeros(capacity, dtype=_np.float64)
        self._last = _np.zeros(capacity, dtype=_np.float64)
        self._weight = _np.zeros(capacity, dtype=_np.float64)
        self._target = _np.full(capacity, _np.inf, dtype=_np.float64)
        self._deadline = _np.full(capacity, _np.inf, dtype=_np.float64)
        self._srcid = _np.zeros(capacity, dtype=_np.int64)
        self._dstid = _np.zeros(capacity, dtype=_np.int64)
        self._alive = _np.zeros(capacity, dtype=bool)
        self._flow_at: List[Optional[Flow]] = [None] * capacity
        self._free: List[int] = []
        self._hi = 0

        # Link interning: node name -> dense lid indexing the link arrays.
        link_capacity = _INITIAL_LINKS
        self._link_capacity = link_capacity
        self._lids: Dict[str, int] = {}
        self._lid_name: List[str] = []
        self._up_cap = _np.zeros(link_capacity, dtype=_np.float64)
        self._down_cap = _np.zeros(link_capacity, dtype=_np.float64)
        self._src_w = _np.zeros(link_capacity, dtype=_np.float64)
        self._dst_w = _np.zeros(link_capacity, dtype=_np.float64)
        self._agg = _np.zeros(link_capacity, dtype=bool)
        self._slots_by_src: Dict[int, Set[int]] = {}
        self._slots_by_dst: Dict[int, Set[int]] = {}
        #: (side, lid) -> pending breakpoint watcher (None: constant link).
        self._watchers: Dict[Tuple[str, int], Optional[object]] = {}

        self._policy: _VectorPolicy = VECTOR_POLICIES[model.name](self)
        #: Admissions buffered until the instant is serviced (coalescing).
        self._adds: List[Flow] = []
        #: Completion/expiry callbacks deferred until rates are settled.
        self._finished: List[Tuple[bool, Flow]] = []
        self._wake = None
        self._in_service = False

    # -- interface ---------------------------------------------------------
    def start_flow(self, flow: Flow, now: float) -> None:
        self._adds.append(flow)
        if self._in_service:
            return  # re-entrant send from a callback; the service loop drains it
        if self._wake is None or self._wake.time > now:
            if self._wake is not None:
                self._wake.cancel()
            self._wake = self.simulator.schedule(now, self._on_wake)

    def on_link_replaced(self, name: str, now: float) -> None:
        # Like the lazy engine (and unlike legacy), the replacement applies
        # immediately: refresh caps, re-arm watchers against the new
        # schedule, re-rate the link's flows at this instant.
        lid = self._lids.get(name)
        if lid is None:
            return  # never carried a flow; interning seeds fresh state later
        link = self._links[name]
        self._agg[lid] = link.aggregate
        for side, caps, index in (
            ("uplink", self._up_cap, self._slots_by_src),
            ("downlink", self._down_cap, self._slots_by_dst),
        ):
            if index.get(lid):
                self._drop_watcher(side, lid)
                caps[lid] = getattr(link, side).rate_at(now)
                self._arm_watcher(side, lid, now)
                self._policy.on_link_changed(side, lid)
        if not self._in_service:
            self._service(now)

    # -- the service loop --------------------------------------------------
    def _on_wake(self) -> None:
        self._wake = None
        self._service(self.simulator.now)

    def _service(self, now: float) -> None:
        """Settle everything pending at ``now``, then re-aim the wake event.

        One pass admits buffered flows, settles due slots (completions /
        expiries / early wakes), and batch-recomputes the touched rates;
        the loop repeats because each stage can feed the others at the same
        instant (a recompute can pull a completion to *now*, a timeout
        callback can send a new flow).  Callbacks fire only once the
        neighbourhood's rates are consistent, like the lazy engine.
        """
        self._in_service = True
        try:
            while True:
                progressed = False
                if self._adds:
                    adds, self._adds = self._adds, []
                    for flow in adds:
                        self._admit(flow, now)
                    progressed = True
                if self._hi:
                    due = _np.nonzero(self._target[: self._hi] <= now)[0]
                    if due.size:
                        self._settle_due(due, now)
                        progressed = True
                if self._policy.advance_due(now):
                    # Policy-internal dynamics (tcp ack ticks) due at this
                    # instant: the whole due cohort advanced and marked
                    # itself touched for the recompute below.
                    progressed = True
                if self._policy.has_touched():
                    self._recompute(now)
                    continue  # the recompute may have pulled targets to now
                if self._finished:
                    finished, self._finished = self._finished, []
                    for expired, flow in finished:
                        if expired:
                            self._expire(flow)
                        else:
                            self._clamp_residual(flow)
                            self._complete(flow)
                    progressed = True
                if not progressed:
                    break
        finally:
            self._in_service = False
        self._aim_wake()

    def _settle_due(self, due, now: float) -> None:
        """Advance the due slots and settle each one, in flow-id order.

        Flow-id order makes same-instant completion order independent of
        slot assignment (which depends on free-list history); it is the
        vector twin of the lazy engine's sorted ``_apply_rate_changes``.
        """
        elapsed = now - self._last[due]
        self._rem[due] = _np.maximum(0.0, self._rem[due] - self._rate[due] * elapsed)
        self._last[due] = now
        flow_at = self._flow_at
        for slot in sorted((int(s) for s in due), key=lambda s: flow_at[s].flow_id):
            rem = self._rem[slot]
            rate = self._rate[slot]
            # The scalar engines' completion test verbatim: inside the byte
            # epsilon, or a residual whose transfer time is below one ulp of
            # virtual time (the anti-livelock case).
            if rem <= _COMPLETION_EPSILON_BYTES or (
                rate > 0.0 and now + rem / rate <= now
            ):
                self._evict(slot, now, expired=False)
            elif now >= self._deadline[slot] - _TIME_EPSILON:
                self._evict(slot, now, expired=True)
            else:
                # Fired early — the rate dropped since this target was set.
                # Re-aim; the branches above guarantee the new target is
                # strictly after now, so this cannot loop at one instant.
                if rate > 0.0:
                    estimate = now + rem / rate
                    deadline = self._deadline[slot]
                    self._target[slot] = estimate if estimate < deadline else deadline
                else:
                    self._target[slot] = self._deadline[slot]

    def _recompute(self, now: float) -> None:
        touched = self._policy.take_touched()
        if not touched:
            return
        slots = _np.fromiter(touched, dtype=_np.int64, count=len(touched))
        # Transitions earlier in this instant may have evicted members.
        slots = slots[self._alive[slots]]
        if not slots.size:
            return
        # Chip progress under the old rates before switching (the same
        # piecewise-constant integration as the scalar engines; the
        # unconditional form is bit-identical because rate·0 == 0·elapsed
        # == 0 and remaining is never negative).
        elapsed = now - self._last[slots]
        rem = _np.maximum(0.0, self._rem[slots] - self._rate[slots] * elapsed)
        self._rem[slots] = rem
        self._last[slots] = now
        rates = self._policy.rates(slots)
        self._rate[slots] = rates
        estimate = _np.full(slots.size, _np.inf, dtype=_np.float64)
        moving = rates > 0.0
        estimate[moving] = now + rem[moving] / rates[moving]
        target = _np.minimum(estimate, self._deadline[slots])
        _np.maximum(target, now, out=target)
        self._target[slots] = target

    def _aim_wake(self) -> None:
        tmin = float(self._target[: self._hi].min()) if self._hi else float("inf")
        # Stateful policies tick on their own clock (tcp ack rounds), even
        # when every completion target is stranded at inf.
        tmin = min(tmin, self._policy.next_event_time())
        if tmin == float("inf"):
            # Every slot is stranded (or none exist): watchers revive them.
            if self._wake is not None:
                self._wake.cancel()
                self._wake = None
            return
        if self._wake is not None:
            if self._wake.time <= tmin:
                return  # early wakes are harmless; keep the pending event
            self._wake.cancel()
        self._wake = self.simulator.schedule(tmin, self._on_wake)

    # -- admission / eviction ----------------------------------------------
    def _admit(self, flow: Flow, now: float) -> None:
        slot = self._alloc()
        self._add(flow)
        src = self._intern(flow.src)
        dst = self._intern(flow.dst)
        src_slots = self._slots_by_src.setdefault(src, set())
        if not src_slots:
            self._up_cap[src] = self._links[flow.src].uplink.rate_at(now)
            self._agg[src] = self._links[flow.src].aggregate
            self._arm_watcher("uplink", src, now)
        src_slots.add(slot)
        dst_slots = self._slots_by_dst.setdefault(dst, set())
        if not dst_slots:
            self._down_cap[dst] = self._links[flow.dst].downlink.rate_at(now)
            self._agg[dst] = self._links[flow.dst].aggregate
            self._arm_watcher("downlink", dst, now)
        dst_slots.add(slot)
        self._src_w[src] += flow.weight
        self._dst_w[dst] += flow.weight
        self._srcid[slot] = src
        self._dstid[slot] = dst
        self._rem[slot] = flow.remaining
        self._rate[slot] = 0.0
        self._last[slot] = now
        self._weight[slot] = float(flow.weight)
        deadline = float("inf") if flow.deadline is None else flow.deadline
        self._deadline[slot] = deadline
        self._target[slot] = deadline  # the recompute below sharpens this
        self._alive[slot] = True
        self._flow_at[slot] = flow
        self._policy.on_add(slot)

    def _evict(self, slot: int, now: float, expired: bool) -> None:
        flow = self._flow_at[slot]
        # Sync the protocol-facing fields before any callback can read them.
        flow.remaining = float(self._rem[slot])
        flow.rate = float(self._rate[slot])
        flow.last_update = now
        self._policy.on_remove(slot)
        self._remove(flow)
        src = int(self._srcid[slot])
        dst = int(self._dstid[slot])
        self._src_w[src] -= self._weight[slot]
        self._dst_w[dst] -= self._weight[slot]
        src_slots = self._slots_by_src[src]
        src_slots.discard(slot)
        if not src_slots:
            self._src_w[src] = 0.0  # kill any float drift while idle
            self._drop_watcher("uplink", src)
        dst_slots = self._slots_by_dst[dst]
        dst_slots.discard(slot)
        if not dst_slots:
            self._dst_w[dst] = 0.0
            self._drop_watcher("downlink", dst)
        self._alive[slot] = False
        self._target[slot] = float("inf")
        self._deadline[slot] = float("inf")
        self._rate[slot] = 0.0
        self._flow_at[slot] = None
        self._free.append(slot)
        self._finished.append((expired, flow))

    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._hi == self._capacity:
            self._grow_slots(self._capacity * 2)
        slot = self._hi
        self._hi += 1
        return slot

    def _grow_slots(self, capacity: int) -> None:
        grown = capacity - self._capacity
        zeros = _np.zeros(grown, dtype=_np.float64)
        infs = _np.full(grown, _np.inf, dtype=_np.float64)
        self._rem = _np.concatenate([self._rem, zeros])
        self._rate = _np.concatenate([self._rate, zeros.copy()])
        self._last = _np.concatenate([self._last, zeros.copy()])
        self._weight = _np.concatenate([self._weight, zeros.copy()])
        self._target = _np.concatenate([self._target, infs])
        self._deadline = _np.concatenate([self._deadline, infs.copy()])
        self._srcid = _np.concatenate([self._srcid, _np.zeros(grown, dtype=_np.int64)])
        self._dstid = _np.concatenate([self._dstid, _np.zeros(grown, dtype=_np.int64)])
        self._alive = _np.concatenate([self._alive, _np.zeros(grown, dtype=bool)])
        self._flow_at.extend([None] * grown)
        self._capacity = capacity
        self._policy.grow_slots(capacity)

    def _intern(self, name: str) -> int:
        lid = self._lids.get(name)
        if lid is None:
            lid = len(self._lid_name)
            if lid == self._link_capacity:
                self._grow_links(self._link_capacity * 2)
            self._lids[name] = lid
            self._lid_name.append(name)
            self._agg[lid] = self._links[name].aggregate
        return lid

    def _grow_links(self, capacity: int) -> None:
        grown = capacity - self._link_capacity
        zeros = _np.zeros(grown, dtype=_np.float64)
        self._up_cap = _np.concatenate([self._up_cap, zeros])
        self._down_cap = _np.concatenate([self._down_cap, zeros.copy()])
        self._src_w = _np.concatenate([self._src_w, zeros.copy()])
        self._dst_w = _np.concatenate([self._dst_w, zeros.copy()])
        self._agg = _np.concatenate([self._agg, _np.zeros(grown, dtype=bool)])
        self._link_capacity = capacity
        self._policy.grow_links(capacity)

    # -- breakpoint watchers -----------------------------------------------
    def _arm_watcher(self, side: str, lid: int, now: float) -> None:
        schedule = getattr(self._links[self._lid_name[lid]], side)
        change = schedule.next_change_after(now)
        if change is None:
            self._watchers[(side, lid)] = None
            return
        self._watchers[(side, lid)] = self.simulator.schedule(
            change, self._on_link_event, side, lid
        )

    def _drop_watcher(self, side: str, lid: int) -> None:
        handle = self._watchers.pop((side, lid), None)
        if handle is not None:
            handle.cancel()

    def _on_link_event(self, side: str, lid: int) -> None:
        del self._watchers[(side, lid)]
        now = self.simulator.now
        index = self._slots_by_src if side == "uplink" else self._slots_by_dst
        if not index.get(lid):  # pragma: no cover - idle links drop watchers
            return
        caps = self._up_cap if side == "uplink" else self._down_cap
        caps[lid] = getattr(self._links[self._lid_name[lid]], side).rate_at(now)
        self._arm_watcher(side, lid, now)
        self._policy.on_link_changed(side, lid)
        if not self._in_service:  # watchers fire from the event loop
            self._service(now)
