"""Pluggable link models: how concurrent flows share link capacity.

A :class:`LinkModel` answers exactly one question — *what instantaneous rate
does each flow get, given who else is on its links?* — and nothing else.
Flow lifecycle (starting, finishing, timing out, rescheduling completions)
belongs to the flow schedulers in :mod:`repro.simnet.flows`; topology and
fault seams belong to :class:`~repro.simnet.network.SimNetwork`.  Keeping the
rate policy behind this seam is what lets one experiment swap the transport
without touching either neighbour layer.

Four models ship in the registry:

``"fair"``
    Max-min style fair sharing: all flows on an uplink (or downlink) split
    its capacity equally and a flow's rate is the minimum of its two shares.
    Approximates many parallel TCP connections — how Tor authorities actually
    push and serve votes.  Rates couple through link occupancy, but only
    through the *occupancy of a flow's own two links*, so a flow event needs
    to re-rate just the flows sharing the touched uplink/downlink sets.

``"fifo"``
    Each uplink serves its flows strictly in arrival order at full rate; the
    downlink is shared fairly among the flows currently being served into
    it.  An ablation of the link model.  Eligibility changes cascade one hop
    (a finishing flow promotes the next queued flow, changing its downlink's
    occupancy): under the legacy engine fifo conservatively re-rates the
    full flow set per event, while the default lazy engine maintains the
    arrival queues and serving counts incrementally
    (:class:`repro.simnet.shared_sched.FifoLazyRater`) and touches only the
    promoted flow and the two affected downlinks.

``"tcp"``
    Per-flow Reno-style congestion control on top of weighted fair link
    shares: each flow carries a congestion window (slow start → congestion
    avoidance), EWMA estRTT/devRTT derived from propagation latency plus
    queue-induced delay, an RTO with exponential backoff, and a duplicate-ack
    counter driving fast retransmit/fast recovery (a loss with acks still
    flowing halves the window instead of collapsing it to one segment; only
    a true timeout restarts slow start).  Its rate is ``min(fair share,
    window / estRTT)``, so on loss-free static links it converges to exactly
    the ``fair`` share after slow-start ramp-up — while drop-typed faults
    (via :meth:`repro.faults.injector.FaultInjector.tcp_loss_event`)
    trigger multiplicative decrease, making congestion collapse under a
    DDoS flood representable.  See ``DESIGN-transport.md``.

``"latency-only"``
    No sharing at all: every flow moves at the full ``min(uplink, downlink)``
    capacity regardless of concurrency.  Flows never interact, which lets
    the scheduler maintain one O(1) completion event per flow instead of any
    global recompute — the model to reach node counts far beyond paper scale
    (see ``experiments/scaling_sweep.py``).

Models register by name via :func:`register_link_model`; the name travels on
:class:`~repro.runtime.spec.RunSpec` (field ``transport``) and therefore
joins the spec hash and result-cache key.  Shared models additionally get
lazy scheduling when a :class:`~repro.simnet.shared_sched.LazyRater` is
registered for their name in :data:`repro.simnet.shared_sched.LAZY_RATERS`
(``fair`` and ``fifo`` ship one); without a rater they run on the legacy
global-recompute scheduler, which handles any ``assign_rates``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple, Type

from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.flows import Flow
    from repro.simnet.network import LinkConfig


class LinkModel:
    """Rate policy for concurrent flows over shared links.

    Two transport-wide conventions every model honours:

    * **Flow weight.**  A flow of weight ``w`` (see
      :class:`~repro.simnet.flows.Flow`) occupies ``w`` shares of every
      shared link and is entitled to ``w`` units of rate — the aggregate
      stand-in for ``w`` identical unit transfers.  ``up_counts`` /
      ``down_counts`` are therefore *weighted* occupancies (sums of flow
      weights, integer-valued), which collapse to plain flow counts when
      every weight is 1 — the arithmetic is bit-identical in that case.
    * **Aggregate endpoints.**  A link flagged
      :attr:`~repro.simnet.network.LinkConfig.aggregate` carries *per-client*
      capacity: it stands in for ``N`` independent physical access links
      (one per client of a cohort), so its flows never share it — each
      weight unit gets the full scheduled rate.  Only the cohort endpoints of
      the consensus-distribution layer set this; ordinary nodes share links
      exactly as before.

    Class attributes
    ----------------
    name:
        Registry name; what ``RunSpec.transport`` carries.
    shared:
        True when flow rates couple through link occupancy, so flow events
        require re-rating neighbours (the shared-link scheduler).  False when
        a flow's rate depends on its own two links only (the independent
        scheduler: per-flow completion events, no recompute).
    """

    name: str = ""
    shared: bool = True

    # -- shared-model interface (used by SharedLinkScheduler) ---------------
    def assign_rates(
        self,
        flows: Mapping[int, "Flow"],
        links: Mapping[str, "LinkConfig"],
        now: float,
        affected: Optional[Iterable["Flow"]] = None,
        up_counts: Optional[Mapping[str, int]] = None,
        down_counts: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Assign ``flow.rate`` for the current instant.

        ``affected`` (with the maintained per-link ``up_counts`` /
        ``down_counts``) narrows the assignment to flows whose rate can have
        changed; models that cannot scope safely ignore it and re-rate the
        full ``flows`` mapping.  Scoped and full assignment must agree
        bit-for-bit — the golden transport traces pin this.
        """
        raise NotImplementedError

    def scopes_to_touched_links(self) -> bool:
        """True when :meth:`assign_rates` honours the ``affected`` subset."""
        return False

    def attach(self, network) -> None:
        """Bind the model to its owning :class:`~repro.simnet.network.SimNetwork`.

        Called once at network construction.  Most models are pure functions
        of flows and links and ignore it; stateful models (``tcp``) use it to
        reach propagation latencies and the fault injector.
        """

    def next_event_time(self, flows: Mapping[int, "Flow"], now: float) -> Optional[float]:
        """Earliest future instant at which the model itself changes rates.

        The shared schedulers fold this into their recompute candidates so
        models with internal dynamics (``tcp`` ack ticks) are advanced on
        time.  Memoryless models return ``None`` (the default): their rates
        only change when flows or link capacities do.
        """
        return None

    # -- independent-model interface (used by IndependentFlowScheduler) -----
    def flow_rate(self, flow: "Flow", links: Mapping[str, "LinkConfig"], now: float) -> float:
        """Instantaneous rate of one flow, independent of all other flows."""
        raise NotImplementedError


class FairShareLinkModel(LinkModel):
    """Equal split per link; a flow gets the minimum of its two shares."""

    name = "fair"
    shared = True

    def scopes_to_touched_links(self) -> bool:
        return True

    def assign_rates(self, flows, links, now, affected=None, up_counts=None, down_counts=None):
        if affected is None or up_counts is None or down_counts is None:
            affected = list(flows.values())
            up_counts = {}
            down_counts = {}
            for flow in affected:
                up_counts[flow.src] = up_counts.get(flow.src, 0) + flow.weight
                down_counts[flow.dst] = down_counts.get(flow.dst, 0) + flow.weight
        for flow in affected:
            up_link = links[flow.src]
            down_link = links[flow.dst]
            up_rate = up_link.uplink.rate_at(now)
            down_rate = down_link.downlink.rate_at(now)
            weight = flow.weight
            up_share = (
                up_rate * weight
                if up_link.aggregate
                else up_rate * weight / up_counts[flow.src]
            )
            down_share = (
                down_rate * weight
                if down_link.aggregate
                else down_rate * weight / down_counts[flow.dst]
            )
            flow.rate = min(up_share, down_share)


class FifoLinkModel(LinkModel):
    """Strict arrival-order uplinks; fair sharing on the downlink."""

    name = "fifo"
    shared = True

    def assign_rates(self, flows, links, now, affected=None, up_counts=None, down_counts=None):
        # Eligibility (which flow each uplink currently serves) can shift one
        # hop per event, so fifo always re-rates the full flow set; the
        # `affected` hint is deliberately ignored.
        if not flows:
            return
        uplink_users: Dict[str, List["Flow"]] = {}
        eligible: List["Flow"] = []
        for flow in flows.values():
            if links[flow.src].aggregate:
                # An aggregate uplink stands in for one access link per
                # client: its flows never queue behind each other.
                eligible.append(flow)
            else:
                uplink_users.setdefault(flow.src, []).append(flow)

        for queue in uplink_users.values():
            # Service order is the scheduler-stamped arrival sequence, not the
            # flow id: ids happen to be assigned in arrival order today, but
            # FIFO semantics must not depend on that.
            queue.sort(key=lambda f: f.arrival_seq)
            eligible.append(queue[0])

        eligible_ids = {flow.flow_id for flow in eligible}
        # A served flow from a queued (non-aggregate) uplink is one transfer
        # at a time regardless of weight — serial service — while flows from
        # aggregate uplinks stand for `weight` parallel per-client transfers.
        serving_down: Dict[str, int] = {}
        for flow in eligible:
            concurrency = flow.weight if links[flow.src].aggregate else 1
            serving_down[flow.dst] = serving_down.get(flow.dst, 0) + concurrency

        for flow in flows.values():
            if flow.flow_id not in eligible_ids:
                flow.rate = 0.0
                continue
            up_link = links[flow.src]
            down_link = links[flow.dst]
            up_rate = up_link.uplink.rate_at(now)
            down_rate = down_link.downlink.rate_at(now)
            # One invariant: share = rate × concurrency (÷ the downlink's
            # weighted serving set when it is shared).
            concurrency = flow.weight if up_link.aggregate else 1
            up_share = up_rate * concurrency
            down_share = (
                down_rate * concurrency
                if down_link.aggregate
                else down_rate * concurrency / serving_down[flow.dst]
            )
            flow.rate = min(up_share, down_share)


#: TCP segment size used to translate congestion windows into rates (bytes).
TCP_MSS_BYTES = 1500.0

#: Initial congestion window / slow-start threshold, in MSS units.
TCP_INITIAL_CWND = 1.0
TCP_INITIAL_SSTHRESH = 64.0

#: Duplicate acks that trigger fast retransmit (RFC 5681 §3.2).
TCP_DUPACK_THRESHOLD = 3

#: Floor on the modelled round-trip time (zero-latency links still ack).
TCP_MIN_RTT_S = 1e-3

#: Round-trip time assumed when the model runs detached from a network
#: (direct ``assign_rates`` calls in tests): twice the default 50 ms
#: propagation latency.
TCP_DEFAULT_RTT_S = 0.1

#: RTO clamp, RFC 6298-style.
TCP_MIN_RTO_S = 0.2
TCP_MAX_RTO_S = 60.0

#: Slack when comparing ack-tick instants against virtual time (matches the
#: flow layer's time epsilon; duplicated to keep this module import-free of
#: :mod:`repro.simnet.flows`, which imports us).
_TICK_EPSILON = 1e-9


class _TcpFlowState:
    """Per-flow Reno congestion state (cwnd and friends, in MSS units)."""

    __slots__ = (
        "cwnd", "ssthresh", "srtt", "devrtt", "rto", "base_rtt", "next_tick", "dupacks",
    )

    def __init__(self, base_rtt: float, now: float) -> None:
        self.cwnd = TCP_INITIAL_CWND
        self.ssthresh = TCP_INITIAL_SSTHRESH
        self.base_rtt = base_rtt
        self.srtt = base_rtt
        self.devrtt = base_rtt / 2.0
        self.rto = min(max(self.srtt + 4.0 * self.devrtt, TCP_MIN_RTO_S), TCP_MAX_RTO_S)
        self.next_tick = now + self.srtt
        self.dupacks = 0

    def window_rate(self, weight: int) -> float:
        """The window-limited send rate: ``weight × cwnd × MSS / estRTT``."""
        return weight * self.cwnd * TCP_MSS_BYTES / self.srtt


class TcpLinkModel(LinkModel):
    """Reno-style congestion control over weighted fair link shares.

    Each flow stands in for ``weight`` identical TCP connections sharing one
    congestion state.  The model keeps the ``fair`` share as the capacity
    constraint and caps it by the window-limited rate ``cwnd × MSS / estRTT``;
    the congestion state advances at *ack ticks* (one per estimated RTT),
    which the flow schedulers drive through :meth:`next_event_time` (legacy
    engine), per-flow simulator events
    (:class:`repro.simnet.shared_sched.TcpLazyRater`), or the vector
    engine's single wake scan
    (:class:`repro.simnet.vector_sched._TcpVectorPolicy`).

    At each tick the flow's granted rate since the previous tick plays the
    role of the ack stream:

    * granted rate zero (starved link, no acks at all) → retransmission
      timeout: ``ssthresh = cwnd/2``, ``cwnd = 1``, RTO doubled, next tick
      one RTO out;
    * a loss event from the fault injector
      (:meth:`~repro.faults.injector.FaultInjector.tcp_loss_event`, one
      Bernoulli draw per window segment) while acks still flow → the
      surviving segments of the round raise duplicate acks; at three or
      more, *fast retransmit / fast recovery* (Reno): ``ssthresh = cwnd/2``,
      ``cwnd = ssthresh`` — halving, not slow-start restart — with the ack
      clock intact (next tick one estRTT out, RTO untouched).  A window too
      small to raise three duplicate acks falls back to the timeout path,
      as real Reno does;
    * otherwise an RTT sample ``max(base_rtt, cwnd × MSS / per-connection
      rate)`` — propagation plus self-induced queueing delay — feeds the
      EWMA estimators (gains 1/8 and 1/4, RFC 6298) and the window opens:
      doubling per RTT in slow start, +1 MSS per RTT in congestion
      avoidance.

    On loss-free static links the queue-delay sample makes ``estRTT`` track
    ``cwnd × MSS / share`` once the window exceeds the share, so the
    window-limited rate converges to the fair share from above and the
    assigned rate ``min(share, window rate)`` converges to exactly the
    ``fair`` model's rate — the conformance property pinned in
    ``tests/simnet/test_tcp_transport.py``.
    """

    name = "tcp"
    shared = True

    def __init__(self) -> None:
        self._states: Dict[int, _TcpFlowState] = {}
        self._network = None

    # -- wiring -------------------------------------------------------------
    def attach(self, network) -> None:
        self._network = network

    def base_rtt(self, flow: "Flow") -> float:
        """The flow's loss-free round-trip floor: twice its propagation latency."""
        if self._network is None:
            return TCP_DEFAULT_RTT_S
        return max(TCP_MIN_RTT_S, 2.0 * self._network.latency(flow.src, flow.dst))

    def state_of(self, flow: "Flow", now: float) -> _TcpFlowState:
        """The flow's congestion state, created on first contact."""
        state = self._states.get(flow.flow_id)
        if state is None:
            state = self._states[flow.flow_id] = _TcpFlowState(self.base_rtt(flow), now)
        return state

    def drop_state(self, flow_id: int) -> None:
        """Forget a departed flow's congestion state."""
        self._states.pop(flow_id, None)

    # -- congestion machinery ----------------------------------------------
    @staticmethod
    def _timeout(state: _TcpFlowState, now: float) -> None:
        """Retransmission timeout: multiplicative decrease, window back to
        one segment, exponential RTO backoff (the Tahoe-era collapse, which
        Reno keeps for timeouts)."""
        state.ssthresh = max(state.cwnd / 2.0, 2.0)
        state.cwnd = TCP_INITIAL_CWND
        state.rto = min(state.rto * 2.0, TCP_MAX_RTO_S)
        state.dupacks = 0
        state.next_tick = now + state.rto

    def advance_flow(
        self,
        flow: "Flow",
        state: _TcpFlowState,
        now: float,
        granted: Optional[float] = None,
    ) -> None:
        """Process one ack tick: sample the RTT, grow or shrink the window.

        ``granted`` is the rate the transport actually assigned over the
        round (default: ``flow.rate``, which the scalar engines keep
        current; the vector engine passes its slot-array rate instead).
        This is the **one** Reno state machine — legacy ``assign_rates``,
        :class:`repro.simnet.shared_sched.TcpLazyRater` ticks, and the
        vector engine's ``_TcpVectorPolicy`` all drive transitions through
        this method, so the three engines cannot drift apart.
        """
        if granted is None:
            granted = flow.rate
        lost = False
        injector = None if self._network is None else self._network.fault_injector
        if injector is not None:
            segments = max(1, int(state.cwnd))
            lost = injector.tcp_loss_event(flow.src, flow.dst, now, segments)
        if granted <= 0.0:
            # A starved link returns no acks at all: only the retransmit
            # timer can fire.
            self._timeout(state, now)
            return
        if lost:
            # Acks still flow, so every segment of the round that survived
            # the lost one raises a duplicate ack for it.
            state.dupacks += max(0, int(state.cwnd) - 1)
            if state.dupacks >= TCP_DUPACK_THRESHOLD:
                # Fast retransmit + fast recovery (Reno, RFC 5681 §3.2):
                # halve the window and stay in congestion avoidance — no
                # slow-start restart, no RTO backoff — and retransmit within
                # the ack clock (next tick one estRTT out, not one RTO).
                state.ssthresh = max(state.cwnd / 2.0, 2.0)
                state.cwnd = state.ssthresh
                state.dupacks = 0
                state.next_tick = now + state.srtt
                return
            # Too few segments in flight to raise three duplicate acks
            # (cwnd < 4): the lost segment can only recover by RTO, exactly
            # as in Tahoe.
            self._timeout(state, now)
            return
        state.dupacks = 0
        # Ack round: the RTT sample is propagation latency plus the queueing
        # delay of a full window draining at the per-connection granted rate.
        sample = max(state.base_rtt, state.cwnd * TCP_MSS_BYTES / (granted / flow.weight))
        error = sample - state.srtt
        state.devrtt += 0.25 * (abs(error) - state.devrtt)
        state.srtt += 0.125 * error
        state.rto = min(max(state.srtt + 4.0 * state.devrtt, TCP_MIN_RTO_S), TCP_MAX_RTO_S)
        if state.cwnd < state.ssthresh:
            state.cwnd = min(state.cwnd * 2.0, state.ssthresh)
        else:
            state.cwnd += 1.0
        state.next_tick = now + state.srtt

    # -- shared-model interface --------------------------------------------
    def assign_rates(self, flows, links, now, affected=None, up_counts=None, down_counts=None):
        # Stateful dynamics cannot scope to touched links (an ack tick can be
        # due on an untouched flow), so tcp re-rates the full flow set and
        # ignores the `affected` hint — exactly like fifo.
        if not flows:
            self._states.clear()
            return
        if len(self._states) > len(flows):
            for flow_id in [fid for fid in self._states if fid not in flows]:
                del self._states[flow_id]

        up_counts = {}
        down_counts = {}
        for flow in flows.values():
            up_counts[flow.src] = up_counts.get(flow.src, 0) + flow.weight
            down_counts[flow.dst] = down_counts.get(flow.dst, 0) + flow.weight

        for flow in flows.values():
            state = self.state_of(flow, now)
            if state.next_tick <= now + _TICK_EPSILON:
                self.advance_flow(flow, state, now)
            up_link = links[flow.src]
            down_link = links[flow.dst]
            up_rate = up_link.uplink.rate_at(now)
            down_rate = down_link.downlink.rate_at(now)
            weight = flow.weight
            up_share = (
                up_rate * weight
                if up_link.aggregate
                else up_rate * weight / up_counts[flow.src]
            )
            down_share = (
                down_rate * weight
                if down_link.aggregate
                else down_rate * weight / down_counts[flow.dst]
            )
            flow.rate = min(up_share, down_share, state.window_rate(weight))

    def next_event_time(self, flows, now):
        best = None
        for flow in flows.values():
            state = self._states.get(flow.flow_id)
            if state is None:
                continue
            if best is None or state.next_tick < best:
                best = state.next_tick
        return best


class LatencyOnlyLinkModel(LinkModel):
    """Full link capacity for every flow; no bandwidth sharing at all."""

    name = "latency-only"
    shared = False

    def flow_rate(self, flow, links, now):
        # Every flow moves at full capacity; a weight-w flow stands in for w
        # unshared transfers, so it gets w times the per-transfer rate.
        return flow.weight * min(
            links[flow.src].uplink.rate_at(now),
            links[flow.dst].downlink.rate_at(now),
        )


#: The registry: transport name -> LinkModel class.
LINK_MODELS: Dict[str, Type[LinkModel]] = {}


def register_link_model(model_class: Type[LinkModel]) -> Type[LinkModel]:
    """Register ``model_class`` under its ``name`` (usable as a decorator)."""
    name = model_class.name
    if not name:
        raise ValidationError("link models must define a non-empty name")
    existing = LINK_MODELS.get(name)
    if existing is not None and existing is not model_class:
        raise ValidationError("link model name %r is already registered" % name)
    LINK_MODELS[name] = model_class
    return model_class


def link_model_names() -> Tuple[str, ...]:
    """Registered transport names, in registration order."""
    return tuple(LINK_MODELS)


def get_link_model(name: str) -> LinkModel:
    """Instantiate the registered model called ``name``."""
    try:
        model_class = LINK_MODELS[name]
    except KeyError:
        raise ValidationError(
            "unknown transport %r; expected one of %r" % (name, link_model_names())
        )
    return model_class()


for _model in (FairShareLinkModel, FifoLinkModel, TcpLinkModel, LatencyOnlyLinkModel):
    register_link_model(_model)
del _model
