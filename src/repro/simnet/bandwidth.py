"""Piecewise-constant bandwidth schedules.

A node's available bandwidth over time is the central modelling device of the
paper's attack section: following Jansen et al., a host under volumetric DDoS
is modelled as having its usable bandwidth reduced (to ~0.5 Mbit/s) for the
duration of the attack.  :class:`BandwidthSchedule` expresses exactly that —
a piecewise-constant rate function with helpers to apply throttling windows —
and provides the integration primitives the flow-based transport needs
(capacity transferred over an interval, time to move N bytes starting at T).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.utils.units import mbps_to_bytes_per_s
from repro.utils.validation import ensure


class BandwidthSchedule:
    """A piecewise-constant bandwidth (bytes/second) over virtual time.

    The schedule is defined by breakpoints ``t_0 = 0 < t_1 < ... < t_k`` and
    rates ``r_0 ... r_k`` where rate ``r_i`` applies on ``[t_i, t_{i+1})`` and
    ``r_k`` applies forever after ``t_k``.
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]):
        ensure(len(breakpoints) == len(rates), "breakpoints and rates must align")
        ensure(len(breakpoints) >= 1, "schedule needs at least one segment")
        ensure(breakpoints[0] == 0.0, "first breakpoint must be time 0")
        for earlier, later in zip(breakpoints, breakpoints[1:]):
            ensure(later > earlier, "breakpoints must be strictly increasing")
        for rate in rates:
            ensure(rate >= 0, "rates must be non-negative")
        self._breakpoints: Tuple[float, ...] = tuple(float(b) for b in breakpoints)
        self._rates: Tuple[float, ...] = tuple(float(r) for r in rates)

    # -- constructors -------------------------------------------------------
    @classmethod
    def constant(cls, bytes_per_s: float) -> "BandwidthSchedule":
        """A schedule with a single constant rate."""
        return cls([0.0], [bytes_per_s])

    @classmethod
    def constant_mbps(cls, mbps: float) -> "BandwidthSchedule":
        """A constant schedule specified in Mbit/s."""
        return cls.constant(mbps_to_bytes_per_s(mbps))

    def with_window(self, start: float, end: float, bytes_per_s: float) -> "BandwidthSchedule":
        """Return a copy where the rate is ``bytes_per_s`` on ``[start, end)``.

        This is how DDoS attack windows are applied to a baseline capacity.
        """
        ensure(end > start, "window end must be after start")
        ensure(start >= 0, "window start must be non-negative")
        points: List[float] = []
        rates: List[float] = []

        def append(time: float, rate: float) -> None:
            if points and abs(points[-1] - time) < 1e-12:
                rates[-1] = rate
                return
            if points and abs(rates[-1] - rate) < 1e-15 and time > points[-1]:
                return
            points.append(time)
            rates.append(rate)

        sample_points = sorted(set(list(self._breakpoints) + [start, end]))
        for time in sample_points:
            if start <= time < end:
                append(time, bytes_per_s)
            else:
                append(time, self.rate_at(time))
        if points[0] != 0.0:
            points.insert(0, 0.0)
            rates.insert(0, self.rate_at(0.0))
        return BandwidthSchedule(points, rates)

    def with_window_mbps(self, start: float, end: float, mbps: float) -> "BandwidthSchedule":
        """Like :meth:`with_window` but the rate is given in Mbit/s."""
        return self.with_window(start, end, mbps_to_bytes_per_s(mbps))

    # -- queries --------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[float, ...]:
        """The schedule's breakpoints."""
        return self._breakpoints

    @property
    def rates(self) -> Tuple[float, ...]:
        """The schedule's per-segment rates (bytes/second)."""
        return self._rates

    def rate_at(self, time: float) -> float:
        """Available bandwidth (bytes/second) at virtual time ``time``."""
        ensure(time >= 0, "time must be non-negative")
        index = bisect.bisect_right(self._breakpoints, time) - 1
        return self._rates[max(index, 0)]

    def next_change_after(self, time: float) -> Optional[float]:
        """The next breakpoint strictly after ``time`` (None when constant)."""
        index = bisect.bisect_right(self._breakpoints, time)
        if index >= len(self._breakpoints):
            return None
        return self._breakpoints[index]

    def capacity_between(self, start: float, end: float) -> float:
        """Total bytes this schedule can move over ``[start, end]``."""
        ensure(end >= start, "end must be >= start")
        total = 0.0
        time = start
        while time < end:
            rate = self.rate_at(time)
            next_change = self.next_change_after(time)
            segment_end = end if next_change is None else min(end, next_change)
            total += rate * (segment_end - time)
            time = segment_end
        return total

    def time_to_transfer(self, nbytes: float, start: float) -> float:
        """Virtual time at which ``nbytes`` finish transferring if started at ``start``.

        Returns ``float('inf')`` when the remaining schedule can never move
        the requested volume (e.g. the rate drops to zero forever).
        """
        ensure(nbytes >= 0, "nbytes must be non-negative")
        remaining = float(nbytes)
        time = start
        if remaining == 0:
            return start
        while True:
            rate = self.rate_at(time)
            next_change = self.next_change_after(time)
            if rate > 0:
                finish = time + remaining / rate
                if next_change is None or finish <= next_change:
                    return finish
                remaining -= rate * (next_change - time)
            else:
                if next_change is None:
                    return float("inf")
            if next_change is None:
                return float("inf")
            time = next_change

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        segments = ", ".join(
            "t>=%.1f: %.0fB/s" % (t, r) for t, r in zip(self._breakpoints, self._rates)
        )
        return "BandwidthSchedule(%s)" % segments
