"""Static partitioning of the link/flow graph by authority-pair region.

The parallel shared-transport engine (:mod:`repro.simnet.parallel_sched`)
advances the simulation as a conservative PDES over *partitions*: disjoint
groups of (src region, dst region) pairs.  This module owns the partition
function and everything derived from it — it is deliberately free of numpy
and of any scheduler state so the no-numpy installs, the cache keying layer,
and the tests can all reason about partitioning without touching an engine.

Partitioning rule
-----------------
Nodes are first mapped to **regions**.  Authority names carry their netgen
identity (``auth-<id>``), and the netgen topology's region rule is
``authority_id mod region_count`` (:meth:`AuthorityTopology.region_of`);
any node whose name ends in an integer uses that rule, so authorities,
relays (``relay-<id>``), mirrors and cohorts all land in stable regions
that agree with the topology layer.  Names without a trailing integer fall
back to a CRC32 of the name — stable across processes and Python versions,
unlike the salted builtin ``hash``.

A *flow* between regions ``(rs, rd)`` belongs to the authority-pair
partition ``mix(rs, rd) mod partition_count``; every flow of one ordered
region pair lands in the same partition, which is what makes per-partition
rate batches self-contained under the fair policy's occupancy tables.

Cross-partition traffic crosses a **boundary channel**: its delivery is a
timestamped message into another partition's future, and the *lookahead* —
the minimum propagation latency over cross-region pairs — bounds how far
one partition's state can run ahead before its outputs could affect a
neighbour (the LBTS barrier of classic conservative PDES).  Occupancy
coupling under shared link models is instantaneous (a flow occupies both
endpoint links from its start instant), so the operative lookahead for
*transport* state is zero and the engine synchronises partitions at every
event instant; the latency lookahead still governs protocol-level boundary
messages and is reported so the engine can reason about both (see
``DESIGN-parallel.md``).
"""

from __future__ import annotations

import os
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.utils.validation import ensure

__all__ = [
    "PARTITION_ENV",
    "WORKERS_ENV",
    "DEFAULT_PARTITIONS",
    "region_of_name",
    "resolve_partition_count",
    "resolve_worker_count",
    "effective_worker_count",
    "StaticPartition",
]

#: Environment variable fixing the partition count of the parallel engine.
PARTITION_ENV = "REPRO_PARALLEL_PARTITIONS"

#: Environment variable sizing the parallel engine's worker pool.  Workers
#: beyond the machine's cores (or beyond the partition count) buy nothing;
#: :func:`effective_worker_count` applies both caps.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"

#: Partition count when neither an argument nor the environment chooses one.
DEFAULT_PARTITIONS = 4

#: Multiplier decorrelating the ordered region pair before the modulus; any
#: odd constant works, this is the FNV prime (also used by intern tables).
_PAIR_MIX = 0x01000193


def region_of_name(name: str, region_count: int) -> int:
    """The region of a node, from its name alone.

    Names with a trailing integer (``auth-17``, ``relay-3``, ``cohort-0``)
    use the netgen rule ``id mod region_count`` so the transport layer and
    the topology layer agree on regions without plumbing a topology object
    into the scheduler.  Other names hash via CRC32 (process-stable).
    """
    ensure(region_count >= 1, "region count must be at least 1")
    tail = len(name)
    while tail > 0 and name[tail - 1].isdigit():
        tail -= 1
    if tail < len(name):
        return int(name[tail:]) % region_count
    return zlib.crc32(name.encode("utf-8")) % region_count


def _pair_mix(src_region: int, dst_region: int) -> int:
    """Decorrelated ordered-pair index (plain ``rs*K + rd`` mod K == rd)."""
    return (src_region * _PAIR_MIX) ^ dst_region


def resolve_partition_count(explicit: Optional[int] = None) -> int:
    """Partition count: explicit argument, else environment, else default.

    ``REPRO_PARALLEL_PARTITIONS`` pins it directly (the conformance suite
    sweeps 1/2/4); otherwise ``REPRO_PARALLEL_WORKERS`` doubles as the
    partition count — one worker per partition is the engine's design point.
    """
    if explicit is not None:
        ensure(explicit >= 1, "partition count must be at least 1")
        return int(explicit)
    for variable in (PARTITION_ENV, WORKERS_ENV):
        raw = os.environ.get(variable)
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError("%s must be an integer, got %r" % (variable, raw))
            ensure(value >= 1, "%s must be at least 1" % variable)
            return value
    return DEFAULT_PARTITIONS


def resolve_worker_count(explicit: Optional[int] = None) -> int:
    """Requested worker-pool size: explicit argument, else environment, else 1.

    This is the *requested* size; :func:`effective_worker_count` is what the
    engine actually spawns.
    """
    if explicit is not None:
        ensure(explicit >= 1, "worker count must be at least 1")
        return int(explicit)
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError("%s must be an integer, got %r" % (WORKERS_ENV, raw))
        ensure(value >= 1, "%s must be at least 1" % WORKERS_ENV)
        return value
    return 1


def effective_worker_count(
    requested: Optional[int] = None, partitions: Optional[int] = None
) -> int:
    """Workers the engine actually uses: requested, capped by cores and partitions.

    One worker per partition is the ceiling by construction (a worker owns
    whole partitions), and workers beyond the machine's schedulable cores
    only add context switching — ``scaling_sweep --progress`` labels
    parallel cells with this number so an operator sees the real fan-out.
    """
    requested = resolve_worker_count(requested)
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        cores = os.cpu_count() or 1
    cap = min(cores, resolve_partition_count(partitions))
    return max(1, min(requested, cap))


class StaticPartition:
    """The frozen node→region and region-pair→partition maps of one run.

    Built lazily by the parallel scheduler from the nodes it actually sees;
    ``latency_fn`` (the network's pairwise latency lookup) prices boundary
    channels so :meth:`lookahead` can report the minimum cross-partition
    propagation latency — the conservative window for protocol-level
    boundary messages.
    """

    def __init__(
        self,
        count: int,
        latency_fn: Optional[Callable[[str, str], float]] = None,
    ) -> None:
        ensure(count >= 1, "partition count must be at least 1")
        self.count = int(count)
        self._latency_fn = latency_fn
        self._regions: Dict[str, int] = {}
        #: Nodes per region, for boundary-channel enumeration.
        self._members: Dict[int, List[str]] = {}
        self._lookahead: Optional[float] = None

    # -- maps --------------------------------------------------------------
    def region_of(self, name: str) -> int:
        """The node's region (cached; regions == partitions by count)."""
        region = self._regions.get(name)
        if region is None:
            region = region_of_name(name, self.count)
            self._regions[name] = region
            self._members.setdefault(region, []).append(name)
            self._lookahead = None  # a new node can open a cheaper boundary
        return region

    def partition_of_pair(self, src: str, dst: str) -> int:
        """The authority-pair partition owning flows from ``src`` to ``dst``."""
        return _pair_mix(self.region_of(src), self.region_of(dst)) % self.count

    def is_boundary(self, src: str, dst: str) -> bool:
        """Whether traffic from ``src`` to ``dst`` crosses partitions."""
        return self.region_of(src) != self.region_of(dst)

    # -- conservative window ----------------------------------------------
    def lookahead(self) -> float:
        """Minimum cross-region propagation latency over the known nodes.

        The conservative bound on how far a partition may advance past the
        global LBTS before a boundary message from a neighbour could still
        arrive in its past.  ``inf`` with fewer than two populated regions
        (no boundary channels at all) or without a latency function.
        """
        if self._lookahead is not None:
            return self._lookahead
        bound = float("inf")
        if self._latency_fn is not None and len(self._members) > 1:
            regions = sorted(self._members)
            for i, ra in enumerate(regions):
                for rb in regions[i + 1 :]:
                    for a in self._members[ra]:
                        for b in self._members[rb]:
                            latency = self._latency_fn(a, b)
                            if latency < bound:
                                bound = latency
        self._lookahead = bound
        return bound

    # -- introspection ------------------------------------------------------
    def populated_regions(self) -> Tuple[int, ...]:
        """Regions that have at least one known node (sorted)."""
        return tuple(sorted(self._members))

    def summary(self) -> Dict[str, object]:
        """Partition accounting for traces and the design doc's examples."""
        return {
            "partitions": self.count,
            "regions": {region: len(names) for region, names in sorted(self._members.items())},
            "lookahead_s": self.lookahead(),
        }

    @classmethod
    def build(
        cls,
        names: Iterable[str],
        count: int,
        latency_fn: Optional[Callable[[str, str], float]] = None,
    ) -> "StaticPartition":
        """Eagerly build the maps for ``names`` (tests and tooling)."""
        partition = cls(count, latency_fn)
        for name in names:
            partition.region_of(name)
        return partition
