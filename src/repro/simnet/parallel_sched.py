"""Partition-parallel scheduling for shared link models (conservative PDES).

The vector engine (:mod:`repro.simnet.vector_sched`) already batches rate
math into numpy expressions, but three per-event costs still scale with the
*global* flow population: the due-slot scan and the wake-aim ``min`` sweep
the whole slot array on every service pass, admissions and evictions update
Python set-based link occupancy one flow at a time, and every touched-set
drain rebuilds a Python set from those occupancy sets.  At paper scale
(300 authorities broadcasting votes) those three loops are most of the
transport wall-clock (see ``BENCH_scaling.json``).

:class:`ParallelSharedLinkScheduler` statically partitions the flow
population by **authority-pair region** (:mod:`repro.simnet.partition`):
nodes map to regions via the netgen rule, and every flow of one ordered
region pair lands in the same partition.  Each partition owns its own
structure-of-arrays shard — residuals, rates, targets, flow ids — while the
link-occupancy tables (capacity, weighted occupancy, aggregate flags) are
the shared boundary state every shard prices its rates against:

* **Partition-gated scans.**  Each shard caches a lower bound on its next
  event target; due scans and the wake aim touch only shards whose bound
  has come due, so a quiescent partition costs nothing per instant (the
  vector engine sweeps every slot on every pass).
* **Batched admissions.**  All sends of one virtual instant are admitted
  as per-shard column writes plus one ``np.add.at`` occupancy update — a
  300-wide vote broadcast is a handful of array ops, not 300 scalar
  bookkeeping passes.
* **Array link membership.**  Per-link occupancy is a growable int array
  per (link side, partition) with swap-removal, so touched-set drains are
  ``np.concatenate`` + ``np.unique`` per shard instead of Python set
  unions, and rate batches arrive pre-grouped by partition.
* **Worker fan-out.**  At a synchronisation instant the per-shard rate
  batches are pure functions of (shard slice, boundary tables) — they are
  dispatched to a ``REPRO_PARALLEL_WORKERS`` process pool when the machine
  has the cores and the batch is worth shipping (:func:`_rate_batch` is
  the stateless worker).  On a single-core host the pool is never built
  and the same batches run serially; conformance is identical because the
  worker computes the same elementwise expressions.

Conservative synchronisation, stated honestly: under a shared link model a
flow occupies both endpoint links *from its start instant*, so a completion
in one partition can change rates in every partition at that same instant —
the transport-level lookahead between partitions is **zero**, and the engine
therefore synchronises all shards at every event instant (the global wake is
the LBTS barrier; see ``DESIGN-parallel.md``).  The classic latency
lookahead — the minimum cross-region propagation delay, reported by
:meth:`StaticPartition.lookahead` — bounds only *protocol-level* boundary
messages (a delivery into another partition lands at least that far in the
future), which is why deliveries never force an early barrier and the
partition-gated scans are sound.

Float semantics match the vector engine's contract: progress chips happen at
service instants over touched slots, so trajectories agree with the scalar
engines to rounding and conformance is pinned at summary level (counts
exact, floats within 1e-6 relative) by ``tests/simnet/test_parallel_sched.py``
— across partition counts too, because chips and rates are computed from the
same global occupancy tables regardless of how flows are sharded (occupancy
sums are exact: weights are integer-valued floats).  Same-instant
completions settle in flow-id order *across* shards, so the callback order
is independent of the partition count.

numpy is optional exactly as for the vector engine: the module imports
without it, :func:`parallel_available` gates selection in
``make_flow_scheduler``, and pure-Python installs silently fall back to the
lazy engine (as does a 1-partition configuration, which *is* the serial
engine by construction).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from repro.simnet.flows import (
    _COMPLETION_EPSILON_BYTES,
    _TIME_EPSILON,
    Flow,
    FlowScheduler,
)
from repro.simnet.partition import (
    StaticPartition,
    _pair_mix,
    effective_worker_count,
    resolve_partition_count,
)

try:  # pragma: no cover - absence exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - absence exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "PARALLEL_MODELS",
    "ParallelSharedLinkScheduler",
    "parallel_available",
]

#: Link models with a partition-parallel policy.  Only ``fair`` — fifo's
#: arrival-order service and tcp's per-flow window events serialise against
#: global state per event, which defeats partition-local batching; both
#: fall back to the vector engine — the next-best batched engine — when
#: numpy is present, else lazy (see ``effective_shared_engine``).
PARALLEL_MODELS = ("fair",)

#: Initial per-shard slot capacity (doubled on demand).
_INITIAL_SLOTS = 256

#: Initial link-array capacity (doubled on demand).
_INITIAL_LINKS = 64

#: Smallest combined rate batch worth shipping to the worker pool; below it
#: the pickling round-trip dwarfs the math.  Env-tunable so the conformance
#: suite can force pool dispatch with tiny workloads.
_FANOUT_MIN_ENV = "REPRO_PARALLEL_FANOUT_MIN"
_FANOUT_MIN_DEFAULT = 4096


def parallel_available() -> bool:
    """Whether the partition-parallel engine can run (numpy importable)."""
    return _np is not None


def _rate_batch(payload):
    """Chip, rate, and re-target one shard's touched batch (pure function).

    ``payload`` carries the shard slice and the gathered boundary tables;
    the return value is ``(advanced residuals, new rates, new targets)``.
    Stateless by design: this is the unit the worker pool executes, and
    running it in-process or in a worker is bitwise the same math.
    """
    (rem, rate, last, weight, deadline, up_cap, down_cap,
     src_w, dst_w, agg_src, agg_dst, now) = payload
    # Chip progress under the old rates before switching — the same
    # piecewise-constant integration as every other engine.
    rem = _np.maximum(0.0, rem - rate * (now - last))
    # Elementwise twin of the fair model's assign_rates; occupancy divisors
    # are >= 1 for every alive slot (its own weight counts).
    up = _np.where(agg_src, up_cap * weight, up_cap * weight / src_w)
    down = _np.where(agg_dst, down_cap * weight, down_cap * weight / dst_w)
    rates = _np.minimum(up, down)
    estimate = _np.full(rem.shape, _np.inf)
    moving = rates > 0.0
    estimate[moving] = now + rem[moving] / rates[moving]
    target = _np.minimum(estimate, deadline)
    _np.maximum(target, now, out=target)
    return rem, rates, target


class _SlotVec:
    """Growable int64 vector with O(1) append and swap-removal.

    The per-(link side, partition) occupancy structure: a numpy view of the
    live prefix feeds touched-set drains directly, where the vector engine
    pays a Python set iteration per member.
    """

    __slots__ = ("arr", "size")

    def __init__(self) -> None:
        self.arr = _np.empty(8, dtype=_np.int64)
        self.size = 0

    def append(self, value: int) -> int:
        """Append ``value``; return its position."""
        if self.size == len(self.arr):
            grown = _np.empty(len(self.arr) * 2, dtype=_np.int64)
            grown[: self.size] = self.arr
            self.arr = grown
        self.arr[self.size] = value
        self.size += 1
        return self.size - 1

    def swap_remove(self, pos: int) -> int:
        """Remove the entry at ``pos``; return the slot moved into it (-1: none)."""
        last = self.size - 1
        moved = -1
        if pos != last:
            moved = int(self.arr[last])
            self.arr[pos] = moved
        self.size = last
        return moved

    def view(self):
        """The live prefix (shares the buffer; callers must not hold it)."""
        return self.arr[: self.size]


class _Shard:
    """One partition's structure-of-arrays flow state.

    Slots are shard-local (recycled through a free list); ``min_target`` is
    a *lower bound* on the shard's next event — writes only ever lower it,
    evictions and late moves leave it conservatively low, and a wake that
    finds nothing due refreshes it to the true minimum.  ``stale`` marks
    that targets changed this instant and the bound needs a refresh at the
    next wake aim.
    """

    __slots__ = (
        "part", "capacity", "rem", "rate", "last", "weight", "target",
        "deadline", "srcid", "dstid", "fid", "pos_src", "pos_dst", "alive",
        "flow_at", "free", "hi", "min_target", "stale",
    )

    def __init__(self, part: int) -> None:
        capacity = _INITIAL_SLOTS
        self.part = part
        self.capacity = capacity
        self.rem = _np.zeros(capacity, dtype=_np.float64)
        self.rate = _np.zeros(capacity, dtype=_np.float64)
        self.last = _np.zeros(capacity, dtype=_np.float64)
        self.weight = _np.zeros(capacity, dtype=_np.float64)
        self.target = _np.full(capacity, _np.inf, dtype=_np.float64)
        self.deadline = _np.full(capacity, _np.inf, dtype=_np.float64)
        self.srcid = _np.zeros(capacity, dtype=_np.int64)
        self.dstid = _np.zeros(capacity, dtype=_np.int64)
        self.fid = _np.zeros(capacity, dtype=_np.int64)
        self.pos_src = _np.zeros(capacity, dtype=_np.int64)
        self.pos_dst = _np.zeros(capacity, dtype=_np.int64)
        self.alive = _np.zeros(capacity, dtype=bool)
        self.flow_at: List[Optional[Flow]] = [None] * capacity
        self.free: List[int] = []
        self.hi = 0
        self.min_target = float("inf")
        self.stale = False

    def alloc(self) -> int:
        if self.free:
            return self.free.pop()
        if self.hi == self.capacity:
            self._grow(self.capacity * 2)
        slot = self.hi
        self.hi += 1
        return slot

    def _grow(self, capacity: int) -> None:
        grown = capacity - self.capacity
        zeros = _np.zeros(grown, dtype=_np.float64)
        infs = _np.full(grown, _np.inf, dtype=_np.float64)
        ints = _np.zeros(grown, dtype=_np.int64)
        self.rem = _np.concatenate([self.rem, zeros])
        self.rate = _np.concatenate([self.rate, zeros.copy()])
        self.last = _np.concatenate([self.last, zeros.copy()])
        self.weight = _np.concatenate([self.weight, zeros.copy()])
        self.target = _np.concatenate([self.target, infs])
        self.deadline = _np.concatenate([self.deadline, infs.copy()])
        self.srcid = _np.concatenate([self.srcid, ints])
        self.dstid = _np.concatenate([self.dstid, ints.copy()])
        self.fid = _np.concatenate([self.fid, ints.copy()])
        self.pos_src = _np.concatenate([self.pos_src, ints.copy()])
        self.pos_dst = _np.concatenate([self.pos_dst, ints.copy()])
        self.alive = _np.concatenate([self.alive, _np.zeros(grown, dtype=bool)])
        self.flow_at.extend([None] * grown)
        self.capacity = capacity


class ParallelSharedLinkScheduler(FlowScheduler):
    """Shared-regime scheduler over partition-sharded slot arrays.

    Flow objects stay the protocol-facing interface (callbacks receive
    them; ``remaining``/``rate`` are synced back at eviction), but between
    admission and eviction the shard arrays are the truth.  Unlike the
    other engines this one does not maintain the base class's per-flow dict
    indexes — nothing outside the scheduler reads them, and skipping them
    removes four dict operations per flow from the hottest path.
    """

    def __init__(
        self,
        model,
        simulator,
        links,
        complete,
        expire,
        partitions: Optional[int] = None,
        latency_fn=None,
        workers: Optional[int] = None,
    ) -> None:
        if _np is None:  # pragma: no cover - guarded by make_flow_scheduler
            raise RuntimeError("ParallelSharedLinkScheduler requires numpy")
        if model.name not in PARALLEL_MODELS:
            raise ValueError(
                "no partition-parallel policy for link model %r" % model.name
            )
        super().__init__(model, simulator, links, complete, expire)
        self._count = resolve_partition_count(partitions)
        self._partition = StaticPartition(self._count, latency_fn)
        self._workers = effective_worker_count(workers, self._count)
        raw = os.environ.get(_FANOUT_MIN_ENV)
        self._fanout_min = int(raw) if raw else _FANOUT_MIN_DEFAULT
        self._shards = [_Shard(part) for part in range(self._count)]

        # Link interning: node name -> dense lid indexing the boundary tables.
        link_capacity = _INITIAL_LINKS
        self._link_capacity = link_capacity
        self._lids: Dict[str, int] = {}
        self._lid_name: List[str] = []
        self._lid_region: List[int] = []
        self._up_cap = _np.zeros(link_capacity, dtype=_np.float64)
        self._down_cap = _np.zeros(link_capacity, dtype=_np.float64)
        self._src_w = _np.zeros(link_capacity, dtype=_np.float64)
        self._dst_w = _np.zeros(link_capacity, dtype=_np.float64)
        self._agg = _np.zeros(link_capacity, dtype=bool)
        #: Plain-int flow counts per link side (activation / idling checks).
        self._src_n: List[int] = [0] * link_capacity
        self._dst_n: List[int] = [0] * link_capacity
        #: lid -> per-partition slot membership (created at first admission).
        self._members_src: Dict[int, List[_SlotVec]] = {}
        self._members_dst: Dict[int, List[_SlotVec]] = {}
        #: Link sides whose occupancy or capacity moved this instant.
        self._dirty_src: Set[int] = set()
        self._dirty_dst: Set[int] = set()
        #: (side, lid) -> pending breakpoint watcher (None: constant link).
        self._watchers: Dict[Tuple[str, int], Optional[object]] = {}

        #: Admissions buffered until the instant is serviced (coalescing).
        self._adds: List[Flow] = []
        #: Completion/expiry callbacks deferred until rates are settled.
        self._finished: List[Tuple[bool, Flow]] = []
        self._wake = None
        self._in_service = False
        self._pool = None

    # -- interface ---------------------------------------------------------
    def active_count(self) -> int:
        return len(self._flows) + len(self._adds)

    def start_flow(self, flow: Flow, now: float) -> None:
        self._adds.append(flow)
        if self._in_service:
            return  # re-entrant send from a callback; the service loop drains it
        if self._wake is None or self._wake.time > now:
            if self._wake is not None:
                self._wake.cancel()
            self._wake = self.simulator.schedule(now, self._on_wake)

    def on_link_replaced(self, name: str, now: float) -> None:
        # Like the lazy/vector engines (and unlike legacy) the replacement
        # applies immediately: refresh caps, re-arm watchers, re-rate the
        # link's flows at this instant.
        lid = self._lids.get(name)
        if lid is None:
            return  # never carried a flow; interning seeds fresh state later
        link = self._links[name]
        self._agg[lid] = link.aggregate
        if self._src_n[lid]:
            self._drop_watcher("uplink", lid)
            self._up_cap[lid] = link.uplink.rate_at(now)
            self._arm_watcher("uplink", lid, now)
            self._dirty_src.add(lid)
        if self._dst_n[lid]:
            self._drop_watcher("downlink", lid)
            self._down_cap[lid] = link.downlink.rate_at(now)
            self._arm_watcher("downlink", lid, now)
            self._dirty_dst.add(lid)
        if not self._in_service:
            self._service(now)

    def partition_summary(self) -> Dict[str, object]:
        """Partition/worker accounting (progress labels, tests, tracing)."""
        summary = self._partition.summary()
        summary["workers"] = self._workers
        return summary

    def close(self) -> None:
        """Shut down the worker pool, if one was ever built (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- the service loop --------------------------------------------------
    def _on_wake(self) -> None:
        self._wake = None
        self._service(self.simulator.now)

    def _service(self, now: float) -> None:
        """Settle everything pending at ``now``, then re-aim the wake event.

        The global wake is the LBTS barrier: every shard is held at the
        same instant, admissions and settlements feed each other until the
        instant is quiescent, and only then do deferred protocol callbacks
        fire (so code reacting to a completion observes consistent rates —
        the same contract as the lazy and vector engines).
        """
        self._in_service = True
        try:
            while True:
                progressed = False
                if self._adds:
                    adds, self._adds = self._adds, []
                    self._admit_batch(adds, now)
                    progressed = True
                groups = self._due_groups(now)
                if groups:
                    self._settle_due(groups, now)
                    progressed = True
                if self._dirty_src or self._dirty_dst:
                    self._recompute(now)
                    continue  # the recompute may have pulled targets to now
                if self._finished:
                    finished, self._finished = self._finished, []
                    for expired, flow in finished:
                        if expired:
                            self._expire(flow)
                        else:
                            self._clamp_residual(flow)
                            self._complete(flow)
                    progressed = True
                if not progressed:
                    break
        finally:
            self._in_service = False
        self._aim_wake()

    def _due_groups(self, now: float):
        """Due slots per shard — scanning only shards whose bound is due.

        ``min_target`` is a sound lower bound (writes only lower it), so a
        shard with ``min_target > now`` provably has nothing due and is
        skipped without touching its arrays.  A shard whose bound turns out
        stale (everything moved later or left) refreshes it here so it
        stops waking the engine.
        """
        groups = []
        for shard in self._shards:
            if shard.hi and shard.min_target <= now:
                targets = shard.target[: shard.hi]
                due = _np.nonzero(targets <= now)[0]
                if due.size:
                    groups.append((shard, due))
                else:
                    shard.min_target = float(targets.min())
                    shard.stale = False
        return groups

    def _settle_due(self, groups, now: float) -> None:
        """Advance due slots (vectorized) and settle them in flow-id order.

        The masks are the scalar engines' completion test verbatim: inside
        the byte epsilon, or a residual whose transfer time is below one
        ulp of virtual time (anti-livelock).  Early wakes — the rate
        dropped since the target was set — re-aim vectorized.  Evictions
        are merged across shards and applied in flow-id order, which makes
        same-instant completion order independent of both slot assignment
        and the partition count.
        """
        evictions = []
        for shard, due in groups:
            rem = _np.maximum(
                0.0, shard.rem[due] - shard.rate[due] * (now - shard.last[due])
            )
            shard.rem[due] = rem
            shard.last[due] = now
            shard.stale = True
            rate = shard.rate[due]
            moving = rate > 0.0
            done = rem <= _COMPLETION_EPSILON_BYTES
            estimate = _np.full(due.size, _np.inf)
            estimate[moving] = now + rem[moving] / rate[moving]
            done |= moving & (estimate <= now)
            deadline = shard.deadline[due]
            expired = ~done & (now >= deadline - _TIME_EPSILON)
            early = ~(done | expired)
            if early.any():
                target = _np.minimum(estimate[early], deadline[early])
                shard.target[due[early]] = target
                tmin = float(target.min())
                if tmin < shard.min_target:
                    shard.min_target = tmin
            leaving = _np.nonzero(done | expired)[0]
            if leaving.size:
                # Extract every column the eviction path needs in one
                # vectorized pass per shard; the per-flow half then runs on
                # plain Python scalars (``tolist`` is bulk conversion),
                # never on numpy scalar indexing.
                slots = due[leaving]
                exp = expired[leaving].tolist()
                fids = shard.fid[slots].tolist()
                rems = shard.rem[slots].tolist()
                rates = shard.rate[slots].tolist()
                srcs = shard.srcid[slots].tolist()
                dsts = shard.dstid[slots].tolist()
                weights = shard.weight[slots].tolist()
                # pos_src/pos_dst are NOT pre-extracted: an earlier eviction's
                # swap-remove may move a later-evicted slot and rewrite them.
                for k, slot in enumerate(slots.tolist()):
                    evictions.append((
                        fids[k], shard, slot, exp[k], rems[k], rates[k],
                        srcs[k], dsts[k], weights[k],
                    ))
        if evictions:
            evictions.sort(key=lambda entry: entry[0])
            for entry in evictions:
                self._evict(entry, now)

    def _recompute(self, now: float) -> None:
        """Drain dirty links into per-shard touched batches and re-rate them."""
        per_part: List[List] = [[] for _ in range(self._count)]
        for dirty, members in (
            (self._dirty_src, self._members_src),
            (self._dirty_dst, self._members_dst),
        ):
            for lid in dirty:
                vecs = members.get(lid)
                if vecs is None:
                    continue
                for part, vec in enumerate(vecs):
                    if vec.size:
                        per_part[part].append(vec.view())
            dirty.clear()
        groups = []
        for part, chunks in enumerate(per_part):
            if not chunks:
                continue
            if len(chunks) == 1:
                slots = chunks[0]  # one link side: members are unique already
            else:
                slots = _np.unique(_np.concatenate(chunks))
            shard = self._shards[part]
            slots = slots[shard.alive[slots]]
            if slots.size:
                groups.append((shard, slots))
        if not groups:
            return
        payloads = [self._gather(shard, slots, now) for shard, slots in groups]
        if (
            self._workers > 1
            and len(groups) > 1
            and sum(slots.size for _, slots in groups) >= self._fanout_min
        ):
            results = self._ensure_pool().map(_rate_batch, payloads, chunksize=1)
        else:
            results = [_rate_batch(payload) for payload in payloads]
        for (shard, slots), (rem, rates, target) in zip(groups, results):
            shard.rem[slots] = rem
            shard.rate[slots] = rates
            shard.last[slots] = now
            shard.target[slots] = target
            shard.stale = True
            tmin = float(target.min())
            if tmin < shard.min_target:
                shard.min_target = tmin

    def _gather(self, shard: _Shard, slots, now: float):
        """Assemble one shard's rate-batch payload (see :func:`_rate_batch`)."""
        src = shard.srcid[slots]
        dst = shard.dstid[slots]
        return (
            shard.rem[slots], shard.rate[slots], shard.last[slots],
            shard.weight[slots], shard.deadline[slots],
            self._up_cap[src], self._down_cap[dst],
            self._src_w[src], self._dst_w[dst],
            self._agg[src], self._agg[dst], now,
        )

    def _aim_wake(self) -> None:
        tmin = float("inf")
        for shard in self._shards:
            if shard.stale:
                shard.min_target = (
                    float(shard.target[: shard.hi].min()) if shard.hi else float("inf")
                )
                shard.stale = False
            if shard.min_target < tmin:
                tmin = shard.min_target
        if tmin == float("inf"):
            # Every slot is stranded (or none exist): watchers revive them.
            if self._wake is not None:
                self._wake.cancel()
                self._wake = None
            return
        if self._wake is not None:
            if self._wake.time <= tmin:
                return  # early wakes are harmless; keep the pending event
            self._wake.cancel()
        self._wake = self.simulator.schedule(tmin, self._on_wake)

    # -- admission / eviction ----------------------------------------------
    def _admit_batch(self, adds: List[Flow], now: float) -> None:
        """Admit one instant's arrivals: per-flow indexing, columnar writes.

        The per-flow half (interning, membership, activation) is dict/list
        work that cannot batch; everything numerical — slot columns and the
        weighted occupancy increments — is written per shard in one pass.
        ``np.add.at`` accumulates duplicate links exactly because weights
        are integer-valued floats.
        """
        count = self._count
        staged: Dict[int, List[Tuple[int, Flow, int, int]]] = {}
        for flow in adds:
            src = self._intern(flow.src)
            dst = self._intern(flow.dst)
            part = _pair_mix(self._lid_region[src], self._lid_region[dst]) % count
            shard = self._shards[part]
            slot = shard.alloc()
            shard.flow_at[slot] = flow
            self._flows[flow.flow_id] = flow
            if self._src_n[src] == 0:
                self._up_cap[src] = self._links[flow.src].uplink.rate_at(now)
                self._agg[src] = self._links[flow.src].aggregate
                self._arm_watcher("uplink", src, now)
            self._src_n[src] += 1
            if self._dst_n[dst] == 0:
                self._down_cap[dst] = self._links[flow.dst].downlink.rate_at(now)
                self._agg[dst] = self._links[flow.dst].aggregate
                self._arm_watcher("downlink", dst, now)
            self._dst_n[dst] += 1
            vecs = self._members_src.get(src)
            if vecs is None:
                vecs = [_SlotVec() for _ in range(count)]
                self._members_src[src] = vecs
            shard.pos_src[slot] = vecs[part].append(slot)
            vecs = self._members_dst.get(dst)
            if vecs is None:
                vecs = [_SlotVec() for _ in range(count)]
                self._members_dst[dst] = vecs
            shard.pos_dst[slot] = vecs[part].append(slot)
            self._dirty_src.add(src)
            self._dirty_dst.add(dst)
            staged.setdefault(part, []).append((slot, flow, src, dst))

        occ_src, occ_dst, occ_w = [], [], []
        inf = float("inf")
        for part, rows in staged.items():
            shard = self._shards[part]
            slots = _np.fromiter((row[0] for row in rows), dtype=_np.int64, count=len(rows))
            srcs = _np.fromiter((row[2] for row in rows), dtype=_np.int64, count=len(rows))
            dsts = _np.fromiter((row[3] for row in rows), dtype=_np.int64, count=len(rows))
            weights = _np.fromiter(
                (row[1].weight for row in rows), dtype=_np.float64, count=len(rows)
            )
            deadlines = _np.fromiter(
                (inf if row[1].deadline is None else row[1].deadline for row in rows),
                dtype=_np.float64,
                count=len(rows),
            )
            shard.srcid[slots] = srcs
            shard.dstid[slots] = dsts
            shard.fid[slots] = _np.fromiter(
                (row[1].flow_id for row in rows), dtype=_np.int64, count=len(rows)
            )
            shard.rem[slots] = _np.fromiter(
                (row[1].remaining for row in rows), dtype=_np.float64, count=len(rows)
            )
            shard.rate[slots] = 0.0
            shard.last[slots] = now
            shard.weight[slots] = weights
            shard.deadline[slots] = deadlines
            shard.target[slots] = deadlines  # the recompute sharpens this
            shard.alive[slots] = True
            shard.stale = True
            dmin = float(deadlines.min())
            if dmin < shard.min_target:
                shard.min_target = dmin
            occ_src.append(srcs)
            occ_dst.append(dsts)
            occ_w.append(weights)
        weights = _np.concatenate(occ_w)
        _np.add.at(self._src_w, _np.concatenate(occ_src), weights)
        _np.add.at(self._dst_w, _np.concatenate(occ_dst), weights)

    def _evict(self, entry, now: float) -> None:
        """Remove one settled slot; ``entry`` carries its pre-extracted columns.

        The caller (:meth:`_settle_due`) pulls every needed column out of
        the shard arrays in bulk, so this per-flow path is dict/list work on
        Python scalars only.
        """
        (fid, shard, slot, expired, rem, rate, src, dst, weight) = entry
        flow = shard.flow_at[slot]
        # Sync the protocol-facing fields before any callback can read them.
        flow.remaining = rem
        flow.rate = rate
        flow.last_update = now
        del self._flows[fid]
        self._src_w[src] -= weight
        self._dst_w[dst] -= weight
        vec = self._members_src[src][shard.part]
        pos = int(shard.pos_src[slot])
        moved = vec.swap_remove(pos)
        if moved >= 0:
            shard.pos_src[moved] = pos
        vec = self._members_dst[dst][shard.part]
        pos = int(shard.pos_dst[slot])
        moved = vec.swap_remove(pos)
        if moved >= 0:
            shard.pos_dst[moved] = pos
        self._src_n[src] -= 1
        if self._src_n[src] == 0:
            self._src_w[src] = 0.0  # kill any float drift while idle
            self._drop_watcher("uplink", src)
        self._dst_n[dst] -= 1
        if self._dst_n[dst] == 0:
            self._dst_w[dst] = 0.0
            self._drop_watcher("downlink", dst)
        self._dirty_src.add(src)
        self._dirty_dst.add(dst)
        shard.alive[slot] = False
        shard.target[slot] = float("inf")
        shard.deadline[slot] = float("inf")
        shard.rate[slot] = 0.0
        shard.flow_at[slot] = None
        shard.free.append(slot)
        shard.stale = True
        self._finished.append((expired, flow))

    def _intern(self, name: str) -> int:
        lid = self._lids.get(name)
        if lid is None:
            lid = len(self._lid_name)
            if lid == self._link_capacity:
                self._grow_links(self._link_capacity * 2)
            self._lids[name] = lid
            self._lid_name.append(name)
            self._lid_region.append(self._partition.region_of(name))
            self._agg[lid] = self._links[name].aggregate
        return lid

    def _grow_links(self, capacity: int) -> None:
        grown = capacity - self._link_capacity
        zeros = _np.zeros(grown, dtype=_np.float64)
        self._up_cap = _np.concatenate([self._up_cap, zeros])
        self._down_cap = _np.concatenate([self._down_cap, zeros.copy()])
        self._src_w = _np.concatenate([self._src_w, zeros.copy()])
        self._dst_w = _np.concatenate([self._dst_w, zeros.copy()])
        self._agg = _np.concatenate([self._agg, _np.zeros(grown, dtype=bool)])
        self._src_n.extend([0] * grown)
        self._dst_n.extend([0] * grown)
        self._link_capacity = capacity

    # -- worker pool ---------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self._workers)
        return self._pool

    # -- breakpoint watchers -----------------------------------------------
    def _arm_watcher(self, side: str, lid: int, now: float) -> None:
        schedule = getattr(self._links[self._lid_name[lid]], side)
        change = schedule.next_change_after(now)
        if change is None:
            self._watchers[(side, lid)] = None
            return
        self._watchers[(side, lid)] = self.simulator.schedule(
            change, self._on_link_event, side, lid
        )

    def _drop_watcher(self, side: str, lid: int) -> None:
        handle = self._watchers.pop((side, lid), None)
        if handle is not None:
            handle.cancel()

    def _on_link_event(self, side: str, lid: int) -> None:
        del self._watchers[(side, lid)]
        now = self.simulator.now
        counts = self._src_n if side == "uplink" else self._dst_n
        if not counts[lid]:  # pragma: no cover - idle links drop watchers
            return
        caps = self._up_cap if side == "uplink" else self._down_cap
        caps[lid] = getattr(self._links[self._lid_name[lid]], side).rate_at(now)
        self._arm_watcher(side, lid, now)
        (self._dirty_src if side == "uplink" else self._dirty_dst).add(lid)
        if not self._in_service:  # watchers fire from the event loop
            self._service(now)
