"""The discrete-event simulation engine.

A deliberately small, deterministic event loop:

* virtual time is a float number of seconds starting at 0;
* events are ordered by ``(time, sequence_number)`` so that ties are broken
  by scheduling order, never by memory layout or hashing;
* cancelled events stay in the heap but are skipped, which keeps cancellation
  O(1).

Every protocol, transport flow, and timer in the library is ultimately an
event in this loop, which is what makes whole-experiment runs reproducible
bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.utils.validation import ReproError, ensure


class SimulationError(ReproError):
    """Raised for impossible simulation operations (e.g. scheduling in the past)."""


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; cancelled events are skipped by the loop."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = "cancelled" if self.cancelled else "pending"
        return "EventHandle(t=%.6f, seq=%d, %s)" % (self.time, self.seq, state)


class Simulator:
    """A deterministic virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._processed_events = 0

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for run-away detection)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                "cannot schedule event at %.6f, current time is %.6f" % (time, self._now)
            )
        handle = EventHandle(max(time, self._now), next(self._seq), callback, args)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_in(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        ensure(delay >= 0, "delay must be non-negative")
        return self.schedule(self._now + delay, callback, *args)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event (no-op for None)."""
        if handle is not None:
            handle.cancel()

    # -- execution -------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when the queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self._processed_events += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue empties or virtual time passes ``until``.

        Returns the virtual time at which the run stopped.  ``max_events``
        protects against runaway protocols in tests.
        """
        executed = 0
        while self._heap:
            # Peek at the next non-cancelled event.
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            next_time = self._heap[0].time
            if until is not None and next_time > until:
                self._now = until
                return self._now
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise SimulationError("exceeded max_events=%d; runaway simulation?" % max_events)
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain; returns the final virtual time."""
        return self.run(until=None, max_events=max_events)
