"""The discrete-event simulation engine.

A deliberately small, deterministic event loop:

* virtual time is a float number of seconds starting at 0;
* events are ordered by ``(time, sequence_number)`` so that ties are broken
  by scheduling order, never by memory layout or hashing.  The heap holds
  ``(time, seq, handle)`` tuples so ordering uses C-level tuple comparison
  rather than a Python ``__lt__`` call per sift step;
* cancelled events stay in the heap but are skipped, which keeps cancellation
  O(1) — and once more than half of the heap is cancelled corpses the heap is
  compacted in one O(n) pass (amortized O(1) per cancellation), so
  cancel-heavy workloads (e.g. the lazy transport scheduler invalidating
  per-flow completion estimates on every rate change) keep the heap bounded
  by the number of live events.

Every protocol, transport flow, and timer in the library is ultimately an
event in this loop, which is what makes whole-experiment runs reproducible
bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils import phases
from repro.utils.validation import ReproError, ensure


class SimulationError(ReproError):
    """Raised for impossible simulation operations (e.g. scheduling in the past)."""


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner", "_executed")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner: "Optional[Simulator]" = None
        self._executed = False

    def cancel(self) -> None:
        """Cancel the event; cancelled events are skipped by the loop.

        Idempotent, and a no-op once the event has executed — in both cases
        the owning simulator's pending counter is only ever decremented once.
        """
        if self.cancelled or self._executed:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        # The heap itself orders (time, seq, handle) tuples and never reaches
        # this method (seq values are unique); kept for explicit comparisons.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = "cancelled" if self.cancelled else "pending"
        return "EventHandle(t=%.6f, seq=%d, %s)" % (self.time, self.seq, state)


class Simulator:
    """A deterministic virtual-time event loop."""

    #: Below this heap size compaction is pointless churn; rebuilds only
    #: trigger once the heap is at least this large.
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._serial = 0
        self._processed_events = 0
        self._pending = 0
        self._cancelled_in_heap = 0
        # Open micro-batches: (time, key) -> list of queued items, drained by
        # one heap event each (see schedule_batch).
        self._batches: Dict[Tuple[float, Any], List[Any]] = {}

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for run-away detection)."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1): kept incrementally)."""
        return self._pending

    # -- serials -------------------------------------------------------------
    def next_serial(self) -> int:
        """The next value of the simulator-owned monotonic counter.

        One counter serves every ordering need in a run — event tie-breaking
        and transport flow ids — so consumers share a single deterministic
        sequence instead of each layer minting its own ``itertools.count``.
        Only relative order is meaningful; values are not contiguous per
        consumer.
        """
        self._serial += 1
        return self._serial

    # -- scheduling ----------------------------------------------------------
    def schedule(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                "cannot schedule event at %.6f, current time is %.6f" % (time, self._now)
            )
        handle = EventHandle(max(time, self._now), self.next_serial(), callback, args)
        handle._owner = self
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        self._pending += 1
        return handle

    def schedule_in(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        ensure(delay >= 0, "delay must be non-negative")
        return self.schedule(self._now + delay, callback, *args)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event (no-op for None)."""
        if handle is not None:
            handle.cancel()

    # -- micro-batching --------------------------------------------------------
    def schedule_batch(
        self, time: float, key: Any, drain: Callable[[List[Any]], None], item: Any
    ) -> None:
        """Queue ``item`` for the micro-batch at ``(time, key)``.

        Handlers that opt in (the network's delivery path) coalesce all
        same-instant work sharing a key — e.g. every message arriving at one
        node at one instant — into a **single** heap event: the first item
        schedules one drain event at ``time``, later items just append.  When
        it fires, ``drain(items)`` receives the batch in append order, which
        is exactly the order the per-item events would have fired (same
        instant, scheduling order).  Every append to one open batch must pass
        the same ``drain``; the one captured first runs.

        Relative order *across* keys at the same instant changes (a batch
        drains contiguously at its first item's serial), which is why callers
        gate this behind their own reference-path switch.
        """
        slot = (time, key)
        batch = self._batches.get(slot)
        if batch is None:
            self._batches[slot] = batch = []
            self.schedule(time, self._drain_batch, slot, drain)
        batch.append(item)

    def _drain_batch(self, slot: Tuple[float, Any], drain: Callable[[List[Any]], None]) -> None:
        drain(self._batches.pop(slot))

    def schedule_window(
        self,
        start: float,
        end: float,
        on_enter: Callable[..., None],
        on_exit: Callable[..., None],
    ) -> Tuple[EventHandle, EventHandle]:
        """Schedule a paired ``on_enter``/``on_exit`` over ``[start, end)``.

        The fault-window primitive: crash windows, partition windows, and any
        other "state holds for an interval" behaviour schedule their
        transitions through here so both edges land on the event loop in
        deterministic order.  Returns both handles for cancellation.
        """
        ensure(end > start, "window end must be after its start")
        ensure(start >= self._now - 1e-12, "window must not start in the past")
        return self.schedule(start, on_enter), self.schedule(end, on_exit)

    # -- heap hygiene ----------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account one freshly cancelled heap entry; compact when they dominate.

        Each compaction pass is O(heap) but removes at least half of it, so
        cancellations pay amortized O(1): a cancel-heavy workload (the lazy
        transport scheduler re-pushing completion estimates on every rate
        change) keeps the heap within a small constant factor of the live
        event count instead of growing with the total cancellation history.
        """
        self._pending -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (order is unchanged:
        entries keep their ``(time, seq)`` keys)."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # -- execution -------------------------------------------------------------
    def _peek_next(self) -> Optional[EventHandle]:
        """The next live event, discarding cancelled heap entries on the way.

        The single place cancelled events are skipped; both :meth:`step` and
        :meth:`run` go through it.
        """
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap -= 1
        return self._heap[0][2] if self._heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when the queue is empty."""
        handle = self._peek_next()
        if handle is None:
            return False
        heapq.heappop(self._heap)
        handle._executed = True
        self._pending -= 1
        self._now = handle.time
        self._processed_events += 1
        handle.callback(*handle.args)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events until the queue empties or virtual time passes ``until``.

        Returns the virtual time at which the run stopped.  ``max_events`` is
        an exact bound protecting against runaway protocols in tests: at most
        ``max_events`` events execute, and the error is raised only when a
        further live event is still due.
        """
        executed = 0
        # The run loop is the outermost `transport` phase bucket: everything
        # not claimed by a nested bucket (protocol handlers, crypto, client
        # waves) is event-loop and flow-scheduling machinery.
        measured = phases.ENABLED
        if measured:
            phases.enter(phases.TRANSPORT)
        try:
            while True:
                handle = self._peek_next()
                if handle is None:
                    break
                if until is not None and handle.time > until:
                    self._now = until
                    return self._now
                if executed >= max_events:
                    raise SimulationError(
                        "exceeded max_events=%d; runaway simulation?" % max_events
                    )
                self.step()
                executed += 1
        finally:
            if measured:
                phases.leave()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain; returns the final virtual time."""
        return self.run(until=None, max_events=max_events)
