"""Deterministic discrete-event network simulator (the Shadow substitute).

The paper evaluates everything on Shadow, a high-fidelity network simulator
running real Tor binaries.  What the experiments actually exercise is much
narrower: message sizes, per-host bandwidth that varies over time (the DDoS
model), propagation latency, protocol timers, and per-connection timeouts.
:mod:`repro.simnet` models exactly those:

* :class:`Simulator` — a deterministic event loop (virtual time, heap-ordered
  events, stable tie-breaking);
* :class:`BandwidthSchedule` — piecewise-constant link capacity over time;
  DDoS attacks and GST are expressed as windows of reduced capacity;
* :class:`SimNetwork` — nodes, links, and a flow-based transport layer with
  either max-min **fair sharing** (TCP-like) or **FIFO** per-uplink
  scheduling, per-flow timeouts, and per-node byte accounting;
* :class:`ProtocolNode` — the base class all protocol state machines extend
  (message handlers, timers, structured logging);
* :class:`TraceLog` — Tor-style log records used to reproduce Figure 1.
"""

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork, TransferStats
from repro.simnet.node import ProtocolNode
from repro.simnet.trace import TraceLog, TraceRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "BandwidthSchedule",
    "Message",
    "LinkConfig",
    "SimNetwork",
    "TransferStats",
    "ProtocolNode",
    "TraceLog",
    "TraceRecord",
]
