"""Deterministic discrete-event network simulator (the Shadow substitute).

The paper evaluates everything on Shadow, a high-fidelity network simulator
running real Tor binaries.  What the experiments actually exercise is much
narrower: message sizes, per-host bandwidth that varies over time (the DDoS
model), propagation latency, protocol timers, and per-connection timeouts.
:mod:`repro.simnet` models exactly those, as a layered transport pipeline:

* :class:`Simulator` — a deterministic event loop (virtual time, heap-ordered
  events, stable tie-breaking, one monotonic serial counter);
* :class:`BandwidthSchedule` — piecewise-constant link capacity over time;
  DDoS attacks and GST are expressed as windows of reduced capacity;
* :class:`LinkModel` — the pluggable rate policy (how concurrent flows share
  links), selected by registry name: max-min **fair** sharing (TCP-like),
  **fifo** per-uplink scheduling, or the sharing-free **latency-only** fast
  model for large sweeps;
* :class:`~repro.simnet.flows.FlowScheduler` — flow lifecycle and
  completion-time maintenance; shared models default to the lazy-advance
  heap-driven engine (:mod:`repro.simnet.shared_sched`, O(touched flows)
  per event), with the legacy global-recompute loop selectable via
  ``REPRO_SHARED_ENGINE=legacy`` as a conformance anchor;
* :class:`SimNetwork` — topology, fault seams, accounting, and the wiring
  that composes the above;
* :class:`ProtocolNode` — the base class all protocol state machines extend
  (message handlers, timers, structured logging);
* :class:`TraceLog` — Tor-style log records used to reproduce Figure 1.
"""

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.flows import Flow, FlowScheduler, resolve_shared_engine, use_shared_engine
from repro.simnet.shared_sched import LazySharedLinkScheduler
from repro.simnet.linkmodel import (
    FairShareLinkModel,
    FifoLinkModel,
    LatencyOnlyLinkModel,
    LinkModel,
    get_link_model,
    link_model_names,
    register_link_model,
)
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork, TransferStats
from repro.simnet.node import ProtocolNode
from repro.simnet.trace import TraceLog, TraceRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "BandwidthSchedule",
    "Flow",
    "FlowScheduler",
    "LazySharedLinkScheduler",
    "resolve_shared_engine",
    "use_shared_engine",
    "LinkModel",
    "FairShareLinkModel",
    "FifoLinkModel",
    "LatencyOnlyLinkModel",
    "get_link_model",
    "link_model_names",
    "register_link_model",
    "Message",
    "LinkConfig",
    "SimNetwork",
    "TransferStats",
    "ProtocolNode",
    "TraceLog",
    "TraceRecord",
]
