"""Base class for protocol state machines running on the simulated network.

A :class:`ProtocolNode` owns a name, a reference to the network it was added
to, and convenience wrappers for the three things a directory-protocol
participant does: send messages, set timers, and log.  Subclasses implement
``on_start`` (called when the simulation starts) and ``on_message`` (called
whenever a message is delivered to the node).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.simnet.engine import EventHandle
from repro.simnet.message import Message
from repro.utils.validation import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.network import SimNetwork


class NodeNotAttachedError(ReproError):
    """Raised when a node is used before being added to a network."""


class ProtocolNode:
    """A named participant of a simulated protocol run."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: Optional["SimNetwork"] = None

    # -- wiring ----------------------------------------------------------
    def _attach(self, network: "SimNetwork") -> None:
        self.network = network

    def _require_network(self) -> "SimNetwork":
        if self.network is None:
            raise NodeNotAttachedError("node %r is not attached to a network" % self.name)
        return self.network

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._require_network().simulator.now

    # -- actions -------------------------------------------------------------
    def send(
        self,
        destination: str,
        message: Message,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
        on_delivered: Optional[Callable[[Message, str, float], None]] = None,
        weight: int = 1,
    ) -> None:
        """Send ``message`` to ``destination``.

        ``timeout`` (seconds) bounds how long the transfer may take; when it
        expires the transfer is aborted and ``on_timeout(message, destination)``
        is invoked on the sender.  ``on_delivered`` is invoked on the sender
        when the transfer completes.  ``weight`` aggregates identical
        endpoint transfers into one weighted flow (see
        :meth:`repro.simnet.network.SimNetwork.send`).
        """
        self._require_network().send(
            self.name,
            destination,
            message,
            timeout=timeout,
            on_timeout=on_timeout,
            on_delivered=on_delivered,
            weight=weight,
        )

    def broadcast(
        self,
        make_message: Callable[[str], Message],
        targets: Optional[Iterable[str]] = None,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
    ) -> int:
        """Send one message to every other node (or to ``targets``).

        ``make_message`` is called once per destination so each transfer gets
        its own :class:`Message` instance.  Returns the number of messages sent.
        """
        network = self._require_network()
        destinations = list(targets) if targets is not None else [
            name for name in network.node_names() if name != self.name
        ]
        for destination in destinations:
            self.send(destination, make_message(destination), timeout=timeout, on_timeout=on_timeout)
        return len(destinations)

    def broadcast_message(
        self,
        message: Message,
        targets: Optional[Iterable[str]] = None,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[Message, str], None]] = None,
    ) -> int:
        """Send one *shared* message to every other node (or to ``targets``).

        The batched twin of :meth:`broadcast` for the common case where every
        destination gets identical content: the single ``message`` (payload
        serialised/sized once) is shared across all transfers and the burst
        is admitted through the network's broadcast fast path
        (:meth:`repro.simnet.network.SimNetwork.send_many`).  Returns the
        number of messages sent.
        """
        network = self._require_network()
        destinations = list(targets) if targets is not None else [
            name for name in network.node_names() if name != self.name
        ]
        network.send_many(
            self.name, destinations, message, timeout=timeout, on_timeout=on_timeout
        )
        return len(destinations)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds.

        Timers route through the network so a fault injector can suppress
        them while this node is crashed.
        """
        network = self._require_network()
        return network.schedule_node_timer(
            self.name, network.simulator.now + delay, callback, *args
        )

    def set_timer_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self._require_network().schedule_node_timer(self.name, time, callback, *args)

    def cancel_timer(self, handle: Optional[EventHandle]) -> None:
        """Cancel a timer created with :meth:`set_timer`."""
        self._require_network().simulator.cancel(handle)

    def log(self, level: str, text: str) -> None:
        """Record a Tor-style log line attributed to this node."""
        network = self._require_network()
        network.trace.record(network.simulator.now, self.name, level, text)

    # -- protocol hooks ----------------------------------------------------
    def on_start(self) -> None:
        """Called once when the simulation starts.  Default: nothing."""

    def on_message(self, message: Message, now: float) -> None:
        """Called when a message is delivered to this node."""
        raise NotImplementedError

    # -- delivery entry point (used by the network) -------------------------
    def receive(self, message: Message) -> None:
        """Deliver ``message`` to this node now."""
        self.on_message(message, self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "%s(name=%r)" % (type(self).__name__, self.name)
