"""Lazy-advance scheduling for shared link models (fair, fifo, tcp).

The legacy :class:`~repro.simnet.flows.SharedLinkScheduler` keeps one global
recompute event and, when it fires, advances *every* active flow and scans
*every* completion/deadline/breakpoint candidate to find the next recompute
instant — O(all active flows) per transport event, which is what capped the
shared models near paper scale (see ``BENCH_scaling.json``).

:class:`LazySharedLinkScheduler` replaces both global passes:

* **Lazy progress.**  Each flow carries ``(last_update, rate)`` and its
  ``remaining`` bytes are only advanced when something actually touches the
  flow — its own event fires, or its rate changes because a neighbouring flow
  started/finished or a link capacity moved.  Between touches the rate is
  constant, so one multiply covers the whole untouched span.
* **Heap-driven next events.**  Every flow owns at most one pending simulator
  event at ``min(completion estimate, deadline)``; every link side with
  active flows owns one *watcher* event at its next bandwidth breakpoint.
  When a flow's rate changes, its estimate is invalidated (the engine's O(1)
  ``EventHandle.cancel``) and a fresh one is pushed; stale heap entries are
  skipped like any cancelled event, and the engine compacts the heap once
  corpses dominate.

Per-event cost becomes O(touched flows × log F) instead of O(all flows):
the *touched* set is exactly the set whose instantaneous rate can have
changed, which each link model knows how to enumerate through its
:class:`LazyRater`:

* ``fair`` — a flow's rate is ``min(up/|up flows|, down/|down flows|)``, a
  pure local function of its two links, so the touched set is the flows
  sharing the event's uplink/downlink.
* ``fifo`` — each uplink serves its oldest flow at full rate and downlinks
  are split among the flows being served into them; the rater maintains the
  per-uplink arrival queue and per-downlink serving counts incrementally, so
  a completion touches only the promoted flow and the eligible flows on the
  two affected downlinks (queued flows have rate 0 and are never touched).
* ``tcp`` — the fair share capped by each flow's Reno congestion window
  (:class:`repro.simnet.linkmodel.TcpLinkModel`); the rater adds one
  simulator *ack-tick* event per flow that advances its congestion state and
  re-aims only that flow, so window dynamics ride on the fair rater's
  touched sets unchanged.

Models without a rater (third-party shared models) keep the legacy
scheduler automatically; the legacy engine also remains selectable via
``REPRO_SHARED_ENGINE=legacy`` (or ``SimNetwork(shared_engine="legacy")``)
and is pinned byte-for-byte by the ``*_legacy`` golden transport traces.

Float semantics, stated plainly: lazy accumulation changes chip
segmentation (``remaining -= rate * elapsed`` does not distribute over a
split of ``elapsed``), so trajectories agree with the legacy engine only to
rounding, not bit-for-bit.  The golden transport traces were regenerated
(GOLDEN format 2 / SPEC v4 / CACHE v4) and the two engines are held to
summary-level equivalence — identical success flags, message and round
counts, dropped-by-cause accounting, latencies within 1e-6 relative — by
hypothesis conformance properties over seeded random specs including fault
plans (``tests/simnet/test_shared_sched.py``).  One deliberate semantic
change rides along: a mid-run ``set_link`` re-rates the replaced link's
flows at the replacement instant, not at the next pre-existing transport
event (the legacy engine's behaviour, an artifact of its single recompute
loop).  Spec-driven runs bake attack schedules into breakpoints and never
call ``set_link`` mid-run, so this is only observable to direct
``SimNetwork`` users.
"""

from __future__ import annotations

import heapq
import operator
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.simnet.flows import (
    _TIME_EPSILON,
    Flow,
    FlowScheduler,
    batch_dispatch_enabled,
)

__all__ = [
    "LazyRater",
    "FairLazyRater",
    "FifoLazyRater",
    "TcpLazyRater",
    "LazySharedLinkScheduler",
]


class LazyRater:
    """Incremental rate policy driven by the lazy shared scheduler.

    A rater answers two questions the scheduler asks on every event:
    *which flows' rates can have changed* (the touched set) and *what is this
    flow's rate now*.  It observes every flow arrival/departure so it can
    maintain whatever occupancy structures the policy needs; the scheduler
    owns the flow indexes (``by_src``/``by_dst``) and shares them.

    Contract: for every flow not in the returned touched set, ``rate_of``
    must be unchanged by the observed transition — that is what makes
    skipping the untouched flows exact rather than approximate.
    """

    def __init__(
        self,
        by_src: Dict[str, Dict[int, Flow]],
        by_dst: Dict[str, Dict[int, Flow]],
        up_cap: Dict[str, float],
        down_cap: Dict[str, float],
        src_weight: Dict[str, int],
        dst_weight: Dict[str, int],
        links,
    ) -> None:
        self._by_src = by_src
        self._by_dst = by_dst
        #: Current uplink/downlink capacity per *active* link side, maintained
        #: by the scheduler (seeded on activation, moved at breakpoint
        #: watchers and link replacements).  Reading these instead of
        #: ``BandwidthSchedule.rate_at`` keeps ``rate_of`` free of bisects on
        #: the hot path; the cached value equals ``rate_at(now)`` exactly,
        #: because every instant a schedule can change value has its own
        #: event.
        self._up_cap = up_cap
        self._down_cap = down_cap
        #: Weighted occupancy per active link side (scheduler-maintained; the
        #: plain flow count when every weight is 1).
        self._src_weight = src_weight
        self._dst_weight = dst_weight
        #: The network's live ``node name -> LinkConfig`` mapping, consulted
        #: for the ``aggregate`` endpoint flag (per-client capacity links).
        self._links = links

    def on_flow_added(self, flow: Flow) -> Iterable[Flow]:
        """Observe an arrival (already in the indexes); return touched flows."""
        raise NotImplementedError

    def on_flow_removed(self, flow: Flow) -> Iterable[Flow]:
        """Observe a departure (already removed); return touched flows."""
        raise NotImplementedError

    def on_flows_removed(self, flows: List[Flow]) -> Dict[int, Flow]:
        """Observe a same-instant departure batch; return touched flows by id.

        The caller has already dropped every flow in ``flows`` from the
        scheduler indexes.  The default preserves per-flow semantics (the
        transition hooks fire once per flow, in batch order); raters whose
        touched set is a pure read of link occupancy override it to take
        each link's remaining members once instead of once per departure.
        """
        touched: Dict[int, Flow] = {}
        for flow in flows:
            for other in self.on_flow_removed(flow):
                touched[other.flow_id] = other
        return touched

    def on_link_rate_changed(self, side: str, name: str) -> Iterable[Flow]:
        """Observe a capacity change on one link side; return touched flows."""
        raise NotImplementedError

    def rate_of(self, flow: Flow, now: float) -> float:
        """The flow's instantaneous rate under current occupancy."""
        raise NotImplementedError

    def rates_of(self, flows: List[Flow], now: float) -> List[float]:
        """Bulk :meth:`rate_of` over an already-ordered touched set.

        The default just loops; raters whose rate is a per-link function
        override it to hoist the per-link state out of the per-flow loop —
        a touched set is the union of a handful of links' flow sets, so the
        same link state is otherwise re-fetched once per flow in the hottest
        loop of a shared run.  Overrides must keep the per-flow arithmetic
        (operation order included) identical to :meth:`rate_of`: the rates
        are trajectory, not just reporting.
        """
        rate_of = self.rate_of
        return [rate_of(flow, now) for flow in flows]


class FairLazyRater(LazyRater):
    """Max-min style fair sharing, incrementally.

    ``rate = min(uplink/|src flows|, downlink/|dst flows|)`` is a pure local
    function of the flow's two links, so the scheduler's own indexes *are*
    the occupancy state and the touched set of any transition is the union
    of the flows on the links whose occupancy or capacity moved.
    """

    def on_flow_added(self, flow: Flow) -> Iterable[Flow]:
        return self._link_union(flow)

    def on_flow_removed(self, flow: Flow) -> Iterable[Flow]:
        return self._link_union(flow)

    def on_link_rate_changed(self, side: str, name: str) -> Iterable[Flow]:
        index = self._by_src if side == "uplink" else self._by_dst
        return list(index.get(name, {}).values())

    def rate_of(self, flow: Flow, now: float) -> float:
        weight = flow.weight
        up_cap = self._up_cap[flow.src]
        down_cap = self._down_cap[flow.dst]
        up_share = (
            up_cap * weight
            if self._links[flow.src].aggregate
            else up_cap * weight / self._src_weight[flow.src]
        )
        down_share = (
            down_cap * weight
            if self._links[flow.dst].aggregate
            else down_cap * weight / self._dst_weight[flow.dst]
        )
        return min(up_share, down_share)

    def rates_of(self, flows: List[Flow], now: float) -> List[float]:
        # Per-link capacity and occupancy are loop invariants of a rate
        # pass; resolve each link's (cap, divisor) once instead of per flow.
        # ``divisor`` is None for aggregate links (per-client capacity, no
        # sharing), mirroring the branch in rate_of; the share expression
        # keeps rate_of's exact operation order (cap * weight / divisor).
        links = self._links
        up_cap = self._up_cap
        down_cap = self._down_cap
        src_weight = self._src_weight
        dst_weight = self._dst_weight
        up_state: Dict[str, Tuple[float, Optional[int]]] = {}
        down_state: Dict[str, Tuple[float, Optional[int]]] = {}
        rates = []
        append = rates.append
        for flow in flows:
            src = flow.src
            dst = flow.dst
            weight = flow.weight
            state = up_state.get(src)
            if state is None:
                state = up_state[src] = (
                    up_cap[src],
                    None if links[src].aggregate else src_weight[src],
                )
            cap, divisor = state
            up_share = cap * weight if divisor is None else cap * weight / divisor
            state = down_state.get(dst)
            if state is None:
                state = down_state[dst] = (
                    down_cap[dst],
                    None if links[dst].aggregate else dst_weight[dst],
                )
            cap, divisor = state
            down_share = cap * weight if divisor is None else cap * weight / divisor
            append(up_share if up_share <= down_share else down_share)
        return rates

    def on_flows_removed(self, flows: List[Flow]) -> Dict[int, Flow]:
        # Occupancy lives in the scheduler-maintained indexes, which the
        # caller already updated for the whole batch: the touched set is the
        # departed flows' links' *remaining* members, read once per link.
        # (The per-flow loop would re-enumerate each link once per departure
        # — O(B·link) for a B-way burst leaving one uplink.)
        touched: Dict[int, Flow] = {}
        seen_src: Set[str] = set()
        seen_dst: Set[str] = set()
        by_src = self._by_src
        by_dst = self._by_dst
        for flow in flows:
            src = flow.src
            if src not in seen_src:
                seen_src.add(src)
                bucket = by_src.get(src)
                if bucket:
                    touched.update(bucket)
            dst = flow.dst
            if dst not in seen_dst:
                seen_dst.add(dst)
                bucket = by_dst.get(dst)
                if bucket:
                    touched.update(bucket)
        return touched

    def _link_union(self, flow: Flow) -> List[Flow]:
        touched: Dict[int, Flow] = dict(self._by_src.get(flow.src, {}))
        touched.update(self._by_dst.get(flow.dst, {}))
        return list(touched.values())


class FifoLazyRater(LazyRater):
    """Strict arrival-order uplinks with fair downlink sharing, incrementally.

    The legacy model re-rates the whole flow set per event because a
    finishing flow promotes the next queued flow, whose destination's
    serving count then changes one hop away.  Maintained incrementally the
    cascade is tiny: per uplink an arrival-order queue (a min-heap over the
    scheduler-stamped ``arrival_seq`` — explicit arrival order, so FIFO
    service cannot silently depend on how flow ids are assigned — with lazy
    deletion for mid-queue expiries), per downlink
    the count of flows currently being served into it, and per downlink the
    set of those eligible flows.  A queued flow's rate is exactly 0 and
    nothing a neighbour does can change that, so queued flows are never
    touched at all.
    """

    def __init__(self, by_src, by_dst, up_cap, down_cap, src_weight, dst_weight, links) -> None:
        super().__init__(by_src, by_dst, up_cap, down_cap, src_weight, dst_weight, links)
        #: Per-uplink arrival queue of (arrival_seq, Flow); the head is
        #: eligible.  Aggregate uplinks (per-client capacity) never queue —
        #: their flows go straight to serving and are tracked only in the
        #: serving sets.
        self._queues: Dict[str, List[Tuple[int, Flow]]] = {}
        #: Arrival seqs lazily deleted from their queue (expired while queued).
        self._gone: Set[int] = set()
        #: Current head (the served flow) per non-aggregate uplink.
        self._head: Dict[str, Flow] = {}
        #: Eligible flows per destination, keyed by flow id.
        self._serving_by_dst: Dict[str, Dict[int, Flow]] = {}
        #: Weighted size of each serving set (sum of weights; equals the
        #: bucket length when every weight is 1).
        self._serving_weight: Dict[str, int] = {}

    # -- transitions -------------------------------------------------------
    def on_flow_added(self, flow: Flow) -> Iterable[Flow]:
        if self._links[flow.src].aggregate:
            return self._serve(flow)
        queue = self._queues.setdefault(flow.src, [])
        heapq.heappush(queue, (flow.arrival_seq, flow))
        if flow.src in self._head:
            # Queued behind the served flow: its rate is 0 and nobody else
            # is affected.
            return [flow]
        return self._promote(flow.src)

    def on_flow_removed(self, flow: Flow) -> Iterable[Flow]:
        if self._links[flow.src].aggregate:
            return list(self._unserve(flow).values())
        if self._head.get(flow.src) is flow:
            touched = dict(self._demote(flow))
            for other in self._promote(flow.src):
                touched[other.flow_id] = other
            return list(touched.values())
        # Expired while queued: lazy-delete; its rate was already 0.
        self._gone.add(flow.arrival_seq)
        return []

    def on_link_rate_changed(self, side: str, name: str) -> Iterable[Flow]:
        if side == "uplink":
            if self._links[name].aggregate:
                return list(self._by_src.get(name, {}).values())
            head = self._head.get(name)
            return [head] if head is not None else []
        return list(self._serving_by_dst.get(name, {}).values())

    def rate_of(self, flow: Flow, now: float) -> float:
        src_aggregate = self._links[flow.src].aggregate
        if not src_aggregate and self._head.get(flow.src) is not flow:
            return 0.0
        # A served flow from a *queued* (non-aggregate) uplink moves one
        # transfer at a time regardless of weight — serial service — so it
        # occupies one downlink share and one client's receive capacity.
        # Flows from aggregate uplinks are w parallel per-client transfers.
        concurrency = flow.weight if src_aggregate else 1
        up_share = self._up_cap[flow.src] * concurrency
        down_cap = self._down_cap[flow.dst]
        down_share = (
            down_cap * concurrency
            if self._links[flow.dst].aggregate
            else down_cap * concurrency / self._serving_weight[flow.dst]
        )
        return min(up_share, down_share)

    # -- machinery ---------------------------------------------------------
    def _concurrency(self, flow: Flow) -> int:
        """How many simultaneous transfers ``flow`` stands for (see rate_of)."""
        return flow.weight if self._links[flow.src].aggregate else 1

    def _serve(self, flow: Flow) -> List[Flow]:
        """Add ``flow`` to its destination's serving set; return touched flows."""
        bucket = self._serving_by_dst.setdefault(flow.dst, {})
        bucket[flow.flow_id] = flow
        self._serving_weight[flow.dst] = (
            self._serving_weight.get(flow.dst, 0) + self._concurrency(flow)
        )
        # The flow itself and every flow sharing its downlink re-split.
        return list(bucket.values())

    def _unserve(self, flow: Flow) -> Dict[int, Flow]:
        """Drop ``flow`` from its serving set; return the remaining sharers."""
        bucket = self._serving_by_dst[flow.dst]
        del bucket[flow.flow_id]
        if not bucket:
            del self._serving_by_dst[flow.dst]
            del self._serving_weight[flow.dst]
            return {}
        self._serving_weight[flow.dst] -= self._concurrency(flow)
        return dict(bucket)

    def _promote(self, src: str) -> List[Flow]:
        """Make the oldest queued flow of ``src`` the served one."""
        queue = self._queues.get(src)
        while queue:
            arrival_seq, flow = queue[0]
            if arrival_seq in self._gone:
                heapq.heappop(queue)
                self._gone.discard(arrival_seq)
                continue
            self._head[src] = flow
            return self._serve(flow)
        if queue is not None and not queue:
            del self._queues[src]
        return []

    def _demote(self, flow: Flow) -> Dict[int, Flow]:
        """Remove the served ``flow`` of its uplink; return touched flows."""
        del self._head[flow.src]
        queue = self._queues[flow.src]
        # The head is never lazy-deleted, so it sits at the heap root.
        assert queue[0][1] is flow, "fifo head out of sync"
        heapq.heappop(queue)
        return self._unserve(flow)


class TcpLazyRater(FairLazyRater):
    """Reno congestion control over lazy fair shares.

    The capacity side is exactly :class:`FairLazyRater` — occupancy-coupled
    equal splits with the same touched sets.  On top of it, each flow's rate
    is capped by its congestion window
    (:class:`repro.simnet.linkmodel.TcpLinkModel` owns the per-flow state),
    and the rater keeps one pending simulator event per flow at the flow's
    next *ack tick*.  A tick advances only that flow's congestion state and
    re-aims only that flow: a window change never moves a neighbour's fair
    share, so the fair rater's touched-set contract carries over unchanged.

    Ticks fire once per estimated RTT, and the queue-delay RTT sample
    inflates ``estRTT`` as the window grows — so per-flow tick frequency is
    self-limiting (roughly ``sqrt`` of transfer progress), which is what the
    perf-smoke ``tcp@30`` budget in CI pins.

    Unlike fair/fifo, tcp makes no cross-engine trajectory claim: the lazy
    engine advances windows at exact tick instants, the legacy engine folds
    due ticks into its recompute events, and the vector engine
    (:class:`repro.simnet.vector_sched._TcpVectorPolicy`) advances whole due
    cohorts per wake — so each of the three engines is pinned by its own
    golden trace.  The Reno state machine itself lives in one place:
    :meth:`repro.simnet.linkmodel.TcpLinkModel.advance_flow`.
    """

    def __init__(self, by_src, by_dst, up_cap, down_cap, src_weight, dst_weight, links) -> None:
        super().__init__(by_src, by_dst, up_cap, down_cap, src_weight, dst_weight, links)
        self._scheduler: Optional["LazySharedLinkScheduler"] = None
        self._model = None
        #: flow_id -> pending ack-tick event.
        self._ticks: Dict[int, object] = {}

    def bind_scheduler(self, scheduler: "LazySharedLinkScheduler") -> None:
        """Late wiring: the scheduler (and its model/simulator) the ticks drive."""
        self._scheduler = scheduler
        self._model = scheduler.model

    # -- transitions -------------------------------------------------------
    def on_flow_added(self, flow: Flow) -> Iterable[Flow]:
        state = self._model.state_of(flow, self._scheduler.simulator.now)
        self._arm_tick(flow, state)
        return super().on_flow_added(flow)

    def on_flow_removed(self, flow: Flow) -> Iterable[Flow]:
        handle = self._ticks.pop(flow.flow_id, None)
        if handle is not None:
            handle.cancel()
        self._model.drop_state(flow.flow_id)
        return super().on_flow_removed(flow)

    def on_flows_removed(self, flows: List[Flow]) -> Dict[int, Flow]:
        # Per-flow teardown (tick cancel, window-state drop), then the fair
        # batch union for the capacity side.
        for flow in flows:
            handle = self._ticks.pop(flow.flow_id, None)
            if handle is not None:
                handle.cancel()
            self._model.drop_state(flow.flow_id)
        return FairLazyRater.on_flows_removed(self, flows)

    def rate_of(self, flow: Flow, now: float) -> float:
        share = super().rate_of(flow, now)
        state = self._model.state_of(flow, now)
        return min(share, state.window_rate(flow.weight))

    def rates_of(self, flows: List[Flow], now: float) -> List[float]:
        # Fair shares in bulk, then the per-flow window cap on top — the
        # same min() rate_of computes.
        shares = FairLazyRater.rates_of(self, flows, now)
        state_of = self._model.state_of
        return [
            min(share, state_of(flow, now).window_rate(flow.weight))
            for flow, share in zip(flows, shares)
        ]

    # -- ack ticks ---------------------------------------------------------
    def _arm_tick(self, flow: Flow, state) -> None:
        self._ticks[flow.flow_id] = self._scheduler.simulator.schedule(
            state.next_tick, self._on_tick, flow
        )

    def _on_tick(self, flow: Flow) -> None:
        now = self._scheduler.simulator.now
        state = self._model.state_of(flow, now)
        self._model.advance_flow(flow, state, now)
        self._arm_tick(flow, state)
        self._scheduler._apply_rate_changes([flow], now)


#: LinkModel name -> rater class; the lazy scheduler applies to models
#: listed here, everything else keeps the legacy scheduler.
LAZY_RATERS = {
    "fair": FairLazyRater,
    "fifo": FifoLazyRater,
    "tcp": TcpLazyRater,
}


class LazySharedLinkScheduler(FlowScheduler):
    """Heap-driven scheduler for occupancy-coupled link models.

    Structurally the shared-regime twin of
    :class:`~repro.simnet.flows.IndependentFlowScheduler`: every flow owns at
    most one pending event at ``min(completion estimate, deadline)``, plus
    one *watcher* event per active link side at its next bandwidth
    breakpoint.  What the independent scheduler never needs — reacting to
    neighbours — is delegated to the model's :class:`LazyRater`, which
    returns the (small) set of flows whose rate an event actually changed;
    only those are advanced and re-pushed.
    """

    def __init__(self, model, simulator, links, complete, expire) -> None:
        super().__init__(model, simulator, links, complete, expire)
        #: Current capacity per active link side (see LazyRater.__init__).
        self._up_cap: Dict[str, float] = {}
        self._down_cap: Dict[str, float] = {}
        rater_class = LAZY_RATERS[model.name]
        self._rater: LazyRater = rater_class(
            self._by_src,
            self._by_dst,
            self._up_cap,
            self._down_cap,
            self._src_weight,
            self._dst_weight,
            links,
        )
        #: (side, name) -> pending breakpoint watcher (None: constant link).
        self._watchers: Dict[Tuple[str, str], Optional[object]] = {}
        #: Same-instant completion coalescing (the REPRO_BATCH_DISPATCH fast
        #: path): a finishing flow sweeps its links for peers due at the same
        #: instant and the whole batch finishes under one rate pass.
        self._batch_completions = batch_dispatch_enabled()
        # Raters with scheduler-driven dynamics (tcp ack ticks) get a back
        # reference once construction is complete.
        bind = getattr(self._rater, "bind_scheduler", None)
        if bind is not None:
            bind(self)

    # -- interface ---------------------------------------------------------
    def start_flow(self, flow: Flow, now: float) -> None:
        flow.last_update = now
        self._add(flow)
        if flow.src not in self._up_cap:
            self._up_cap[flow.src] = self._links[flow.src].uplink.rate_at(now)
            self._arm_watcher("uplink", flow.src, now)
        if flow.dst not in self._down_cap:
            self._down_cap[flow.dst] = self._links[flow.dst].downlink.rate_at(now)
            self._arm_watcher("downlink", flow.dst, now)
        touched = self._rater.on_flow_added(flow)
        self._apply_rate_changes(touched, now)

    def start_flows(self, flows: List[Flow], now: float) -> None:
        """Admit a same-instant burst with one rate pass over the union.

        The sequential loop re-rates the sender's growing uplink set per
        start — O(B²) flow touches for a B-way broadcast burst, the dominant
        cost of protocol rounds at 300 authorities.  Final state is the
        loop's: rates after the last add depend only on final occupancy, and
        the intermediate rates the loop assigns advance nothing (all adds
        share one instant, so every progress chip has zero width).  What
        differs is event bookkeeping — the loop aims each flow at its
        momentary estimate and lets later arrivals stale it — so heap serial
        consumption (and same-instant tie-break order against unrelated
        events) changes; the network gates this path behind
        ``REPRO_BATCH_DISPATCH``.
        """
        if len(flows) == 1:
            self.start_flow(flows[0], now)
            return
        for flow in flows:
            flow.last_update = now
            self._add(flow)
            if flow.src not in self._up_cap:
                self._up_cap[flow.src] = self._links[flow.src].uplink.rate_at(now)
                self._arm_watcher("uplink", flow.src, now)
            if flow.dst not in self._down_cap:
                self._down_cap[flow.dst] = self._links[flow.dst].downlink.rate_at(now)
                self._arm_watcher("downlink", flow.dst, now)
        touched: Dict[int, Flow] = {}
        for flow in flows:
            for other in self._rater.on_flow_added(flow):
                touched[other.flow_id] = other
        self._apply_rate_changes(touched.values(), now)

    def on_link_replaced(self, name: str, now: float) -> None:
        # The replaced schedule applies immediately: drop both watchers (they
        # track the old schedule's breakpoints), refresh the capacity caches,
        # re-rate every flow on the link, and re-arm watchers against the new
        # schedule.  (The legacy engine instead lets the new capacity take
        # effect at the next pre-existing transport event — an artifact of
        # its single recompute loop; see the module docstring.)
        for side, cap, index in (
            ("uplink", self._up_cap, self._by_src),
            ("downlink", self._down_cap, self._by_dst),
        ):
            self._drop_watcher(side, name)
            if name in index:
                cap[name] = getattr(self._links[name], side).rate_at(now)
                self._arm_watcher(side, name, now)
        touched: Dict[int, Flow] = dict(self._by_src.get(name, {}))
        touched.update(self._by_dst.get(name, {}))
        self._apply_rate_changes(list(touched.values()), now)

    # -- rate maintenance --------------------------------------------------
    def _apply_rate_changes(self, touched: Iterable[Flow], now: float) -> None:
        """Advance exactly the flows whose rate moved; re-aim their events.

        Iteration is in flow-id order so that same-instant reschedules (and
        therefore event sequence numbers) are independent of which link
        structure enumerated the touched set.
        """
        flows = sorted(touched, key=_flow_id_of)
        rates = self._rater.rates_of(flows, now)
        for flow, new_rate in zip(flows, rates):
            if new_rate == flow.rate and flow.pending is not None:
                continue
            # Chip progress under the old rate before switching: ``remaining``
            # integrates a piecewise-constant rate, so each rate change is a
            # mandatory chip boundary (everything between them is one multiply).
            # This is _advance inlined — the hottest loop in a shared run
            # makes millions of these chips, and the method-call overhead is
            # measurable; keep the two in sync.
            elapsed = now - flow.last_update
            if elapsed > 0 and flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
            flow.last_update = now
            flow.rate = new_rate
            self._aim(flow, now)

    def _aim(self, flow: Flow, now: float) -> None:
        """Keep ``flow``'s pending event unless its target moved *earlier*.

        A pending event that is now too early is harmless — it fires, finds
        the flow incomplete, and re-aims — so rate *drops* (the common case
        in a broadcast burst, where every arrival dilutes its peers) cost no
        heap traffic at all.  Only a target that moved earlier than the
        pending event forces a cancel + re-push, and stale entries are
        skipped/compacted by the engine.
        """
        candidates = []
        if flow.rate > 0:
            candidates.append(now + flow.remaining / flow.rate)
        if flow.deadline is not None:
            candidates.append(flow.deadline)
        if not candidates:
            # Starved with no deadline: the link watcher revives it if the
            # capacity ever comes back; until then there is nothing to wait
            # for (exactly the legacy scheduler's behaviour).
            if flow.pending is not None:
                flow.pending.cancel()
                flow.pending = None
            return
        target = min(candidates)
        if target < now:
            target = now
        if flow.pending is not None:
            if flow.pending.time <= target:
                return
            flow.pending.cancel()
        flow.pending = self.simulator.schedule(target, self._on_flow_event, flow)

    def _advance(self, flow: Flow, now: float) -> None:
        # Inlined in _apply_rate_changes (hot path) — keep the two in sync.
        elapsed = now - flow.last_update
        if elapsed > 0 and flow.rate > 0:
            flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        flow.last_update = now

    # -- flow events -------------------------------------------------------
    def _on_flow_event(self, flow: Flow) -> None:
        flow.pending = None
        now = self.simulator.now
        self._advance(flow, now)
        if self._is_complete(flow, now):
            if self._batch_completions:
                self._finish_batch(flow, now)
            else:
                self._finish(flow, now, expired=False)
            return
        if flow.deadline is not None and now >= flow.deadline - _TIME_EPSILON:
            self._finish(flow, now, expired=True)
            return
        # Fired early — the rate dropped since this event was pushed, or the
        # residual was too small to predict exactly (float rounding).  Re-aim
        # at the current estimate; `_is_complete`'s sub-ulp test guarantees
        # this terminates instead of spinning at `now`.
        self._aim(flow, now)

    def _finish_batch(self, trigger: Flow, now: float) -> None:
        """Finish ``trigger`` and, transitively, every same-instant completer.

        A symmetric broadcast wave finishes all at once: flows share equal
        splits, so their completion events aim at bit-identical instants —
        at full fan-in that is every in-flight flow in the system.  Finishing
        them one event at a time re-rates each departure's whole link
        neighbourhood — O(N³) flow touches per wave at N authorities, the
        dominant cost of the lazy engine at scale.  Instead, the first
        completion to fire claims the wave: departures expose their touched
        neighbours, neighbours whose pending event is also due *now* and
        whose transfer is done join the batch (their events are cancelled),
        and the survivors are rated once at the end against final occupancy.

        Occupancy-equivalent to the sequential path — every intermediate
        rate it would assign lives for zero width at ``now`` — with
        completion callbacks firing after the whole neighbourhood is
        consistent, in discovery order.  The event-serial permutation this
        implies is exactly what the ``REPRO_BATCH_DISPATCH`` conformance
        contract allows, and ``off`` restores the per-event path.  Peers
        whose aim differs even by an ulp simply fire on their own; the batch
        is an optimisation, never a correctness requirement.
        """
        rater = self._rater
        live = self._flows
        batch = [trigger]
        frontier = batch
        survivors: Dict[int, Flow] = {}
        while frontier:
            for flow in frontier:
                self._remove(flow)
            touched = rater.on_flows_removed(frontier)
            next_frontier: List[Flow] = []
            for other in touched.values():
                if other.flow_id not in live:
                    continue
                pending = other.pending
                if pending is not None and pending.time == now:
                    self._advance(other, now)
                    if self._is_complete(other, now):
                        pending.cancel()
                        other.pending = None
                        next_frontier.append(other)
                        survivors.pop(other.flow_id, None)
                        continue
                survivors[other.flow_id] = other
            frontier = next_frontier
            batch.extend(next_frontier)
        self._apply_rate_changes(survivors.values(), now)
        for flow in batch:
            if flow.src not in self._by_src:
                self._up_cap.pop(flow.src, None)
                self._drop_watcher("uplink", flow.src)
            if flow.dst not in self._by_dst:
                self._down_cap.pop(flow.dst, None)
                self._drop_watcher("downlink", flow.dst)
        # Callbacks fire last, once the neighbourhood is consistent, so
        # protocol code reacting to a delivery observes final rates.
        for flow in batch:
            self._clamp_residual(flow)
            self._complete(flow)

    def _finish(self, flow: Flow, now: float, expired: bool) -> None:
        self._remove(flow)
        touched = self._rater.on_flow_removed(flow)
        self._apply_rate_changes(touched, now)
        if flow.src not in self._by_src:
            del self._up_cap[flow.src]
            self._drop_watcher("uplink", flow.src)
        if flow.dst not in self._by_dst:
            del self._down_cap[flow.dst]
            self._drop_watcher("downlink", flow.dst)
        # Callbacks fire after the neighbourhood is consistent, so protocol
        # code reacting to a timeout (e.g. re-sending) observes final rates.
        if expired:
            self._expire(flow)
        else:
            self._clamp_residual(flow)
            self._complete(flow)

    # -- breakpoint watchers -----------------------------------------------
    def _arm_watcher(self, side: str, name: str, now: float) -> None:
        """Schedule the next breakpoint event for an (active) link side.

        The caller guarantees the slot is free.  Constant-from-here links
        store ``None`` so busy links do not re-query their schedule on every
        flow arrival; replaced links drop the marker in
        :meth:`on_link_replaced`.
        """
        change = getattr(self._links[name], side).next_change_after(now)
        if change is None:
            self._watchers[(side, name)] = None
            return
        self._watchers[(side, name)] = self.simulator.schedule(
            change, self._on_link_event, side, name
        )

    def _drop_watcher(self, side: str, name: str) -> None:
        handle = self._watchers.pop((side, name), None)
        if handle is not None:
            handle.cancel()

    def _on_link_event(self, side: str, name: str) -> None:
        del self._watchers[(side, name)]
        now = self.simulator.now
        cap, index = (
            (self._up_cap, self._by_src)
            if side == "uplink"
            else (self._down_cap, self._by_dst)
        )
        if name not in index:  # pragma: no cover - idle links drop watchers
            cap.pop(name, None)
            return
        cap[name] = getattr(self._links[name], side).rate_at(now)
        self._arm_watcher(side, name, now)
        touched = self._rater.on_link_rate_changed(side, name)
        self._apply_rate_changes(touched, now)


#: Sort key for deterministic rate-pass ordering; C-level attrgetter because
#: it runs once per touched flow in the hottest loop of a shared run.
_flow_id_of = operator.attrgetter("flow_id")
