"""Flow scheduling: lifecycle and completion-time maintenance for transfers.

This is the middle layer of the transport pipeline.  A
:class:`~repro.simnet.network.SimNetwork` turns ``send()`` calls into
:class:`Flow` objects and hands them to a scheduler; the scheduler advances
flow progress, asks the run's :class:`~repro.simnet.linkmodel.LinkModel` for
instantaneous rates, and fires the network's completion/timeout callbacks at
the right virtual instants.  Two schedulers cover the two coupling regimes a
link model can declare:

:class:`~repro.simnet.shared_sched.LazySharedLinkScheduler` (``LinkModel.shared``)
    The default engine for models where flow rates couple through link
    occupancy (``fair``, ``fifo``): lazy per-flow progress and one pending
    heap event per flow, re-pushed only when the flow's rate actually
    changes — O(touched flows × log F) per event.  See
    :mod:`repro.simnet.shared_sched`.

:class:`SharedLinkScheduler` (legacy engine, ``REPRO_SHARED_ENGINE=legacy``)
    The pre-lazy shared-regime loop, kept selectable for conformance testing
    and for shared models without a lazy rater.  Progress is advanced for
    every active flow at each transport event and a single recompute event
    is kept at the earliest next instant anything can change — exactly the
    pre-refactor float trajectory, which the ``*_legacy`` golden transport
    traces pin byte-for-byte.  What *is* incremental is the expensive part:
    rate assignment is scoped to the uplink/downlink sets an event actually
    touches (for models that opt in via ``scopes_to_touched_links``),
    per-link occupancy is maintained as flows start and finish instead of
    being rebuilt per event, and per-link breakpoint candidates are computed
    once per active link rather than once per flow.  An unaffected flow's
    rate is a pure function of unchanged inputs — its link occupancies and
    current link rates — so skipping its reassignment is bit-identical to
    recomputing it.

:class:`IndependentFlowScheduler` (``not LinkModel.shared``)
    For models where a flow's rate depends on its own two links only
    (``latency-only``).  Every flow owns a single pending event at the
    minimum of its completion estimate, its deadline, and its links' next
    bandwidth breakpoints; flow events cost O(1) and never touch other
    flows, which is what makes 10×-paper node counts tractable.

Flow ids come from the simulator's serial counter
(:meth:`~repro.simnet.engine.Simulator.next_serial`), so the fifo model's
arrival order is the event loop's own deterministic order and no per-network
id generator is needed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Mapping, Optional, Set

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.linkmodel import LinkModel
from repro.simnet.message import Message
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.network import LinkConfig

#: Residual bytes below which a flow counts as complete (floating-point slack).
_COMPLETION_EPSILON_BYTES = 1e-6

#: Slack when comparing virtual times.
_TIME_EPSILON = 1e-9

#: Environment variable gating the batched dispatch fast paths.  Anything
#: other than ``"off"`` (including unset) enables them; ``off`` selects the
#: per-message reference path, whose event trajectory is the pre-batching
#: one — the conformance anchor for the fast paths.  Lives here (not in
#: ``network``) because the lazy scheduler gates its same-instant completion
#: sweep on it too.
BATCH_DISPATCH_ENV = "REPRO_BATCH_DISPATCH"


def batch_dispatch_enabled() -> bool:
    """Whether the batched dispatch fast paths are enabled (default: yes)."""
    return os.environ.get(BATCH_DISPATCH_ENV, "on") != "off"


#: Environment variable selecting the shared-regime engine for networks that
#: do not pass one explicitly (values: "lazy", "legacy" or "vector").
SHARED_ENGINE_ENV = "REPRO_SHARED_ENGINE"

#: The shared-regime engines :func:`make_flow_scheduler` knows how to build.
SHARED_ENGINES = ("lazy", "legacy", "vector", "parallel")


def resolve_shared_engine(explicit: Optional[str] = None) -> str:
    """The shared-regime engine to use: explicit argument, else environment.

    The flag exists for the conformance gate of the lazy-advance scheduler:
    the legacy loop stays selectable so old-engine-vs-new-engine equivalence
    properties (and the byte-pinned ``*_legacy`` golden traces) can run both
    inside one process, and ``"vector"`` opts in to the numpy
    structure-of-arrays engine (:mod:`repro.simnet.vector_sched`).
    Production entry points always use the default.
    """
    engine = explicit if explicit is not None else os.environ.get(SHARED_ENGINE_ENV, "lazy")
    if engine not in SHARED_ENGINES:
        raise ValidationError(
            "unknown shared engine %r; expected one of %r" % (engine, SHARED_ENGINES)
        )
    return engine


def effective_shared_engine(
    explicit: Optional[str] = None, transport: Optional[str] = None
) -> str:
    """The engine that would actually run: ``"vector"`` downgrades to
    ``"lazy"`` when numpy is not installed, so callers that key behaviour on
    the engine (the result cache) agree with :func:`make_flow_scheduler`.

    When ``transport`` is given, the downgrade also accounts for shared
    models without a vector policy: a vector request for such a model runs —
    and is cache-keyed as — the lazy engine.  Every shipped shared model
    (``fair``, ``fifo``, ``tcp``) now has a vector policy, so this branch
    only guards third-party models.

    ``"parallel"`` downgrades to ``"lazy"`` on a numpy-less install and in
    the degenerate single-partition configuration, where the
    partition-parallel engine *is* the serial lazy engine by definition
    (which is what makes the 1-partition conformance case byte-identical).
    For shared models without a partitioned policy (``fifo``, ``tcp`` —
    their serialising dynamics defeat partition-local batching, see
    :data:`repro.simnet.parallel_sched.PARALLEL_MODELS`) a parallel request
    falls back to the *vector* engine instead: the next-best batched engine,
    resolved by the vector rules above rather than straight to lazy.
    """
    engine = resolve_shared_engine(explicit)
    if engine == "parallel":
        from repro.simnet.parallel_sched import PARALLEL_MODELS, parallel_available
        from repro.simnet.partition import resolve_partition_count

        if not parallel_available() or resolve_partition_count() == 1:
            return "lazy"
        if transport is not None:
            from repro.simnet.linkmodel import get_link_model

            model = get_link_model(transport)
            if model.shared and model.name not in PARALLEL_MODELS:
                engine = "vector"  # fall through to the vector resolution
    if engine == "vector":
        from repro.simnet.vector_sched import VECTOR_POLICIES, vector_available

        if not vector_available():
            return "lazy"
        if transport is not None:
            from repro.simnet.linkmodel import get_link_model

            model = get_link_model(transport)
            if model.shared and model.name not in VECTOR_POLICIES:
                return "lazy"
    return engine


@contextmanager
def use_shared_engine(engine: str) -> Iterator[None]:
    """Force the shared-regime engine for networks built inside the block.

    Spec-driven entry points (``execute_spec``) construct their own
    ``SimNetwork``, so engine selection for conformance tests travels
    through the environment rather than a parameter; this context manager
    scopes it safely.
    """
    resolve_shared_engine(engine)  # validate before mutating the environment
    previous = os.environ.get(SHARED_ENGINE_ENV)
    os.environ[SHARED_ENGINE_ENV] = engine
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SHARED_ENGINE_ENV, None)
        else:
            os.environ[SHARED_ENGINE_ENV] = previous


class Flow:
    """One in-flight transfer: transport-level state for a single message.

    ``weight`` is the number of identical endpoint transfers this flow stands
    in for (cohort-aggregated dir-clients fetch with ``weight == batch
    size``).  A weight-``w`` flow occupies ``w`` shares of every shared link
    it crosses and carries the *aggregate* byte count in ``message.size_bytes``
    — which makes it exactly equivalent, under weighted fair sharing, to
    ``w`` unit flows started at the same instant.  Ordinary protocol traffic
    always has weight 1 and is bit-identical to the pre-weight transport.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "message",
        "remaining",
        "start_time",
        "deadline",
        "rate",
        "weight",
        "last_update",
        "pending",
        "on_timeout",
        "on_delivered",
        "arrival_seq",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        message: Message,
        start_time: float,
        deadline: Optional[float],
        on_timeout: Optional[Callable[[Message, str], None]],
        on_delivered: Optional[Callable[[Message, str, float], None]],
        weight: int = 1,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.message = message
        self.remaining = float(message.size_bytes)
        self.start_time = start_time
        self.deadline = deadline
        self.rate = 0.0
        self.weight = weight
        self.last_update = start_time
        self.pending: Optional[EventHandle] = None
        self.on_timeout = on_timeout
        self.on_delivered = on_delivered
        # Explicit arrival order for FIFO service.  Defaults to the flow id
        # (today's ids come from the simulator's serial counter, so id order
        # *is* arrival order); schedulers overwrite it with their own arrival
        # counter in ``_add`` so an id source that recycles or reorders ids
        # cannot corrupt FIFO queues.
        self.arrival_seq = flow_id


class FlowScheduler:
    """Common state and bookkeeping shared by both scheduling regimes.

    Parameters
    ----------
    model:
        The run's link model (rate policy).
    simulator:
        The event loop flows schedule themselves on.
    links:
        Live ``node name -> LinkConfig`` mapping owned by the network;
        :meth:`on_link_replaced` must be called when an entry is swapped.
    complete / expire:
        Network callbacks fired when a flow finishes or times out.  The
        network owns delivery latency, fault filtering, and accounting; the
        scheduler owns *when*.
    """

    def __init__(
        self,
        model: LinkModel,
        simulator: Simulator,
        links: Mapping[str, "LinkConfig"],
        complete: Callable[[Flow], None],
        expire: Callable[[Flow], None],
    ) -> None:
        self.model = model
        self.simulator = simulator
        self._links = links
        self._complete = complete
        self._expire = expire
        self._flows: Dict[int, Flow] = {}
        self._by_src: Dict[str, Dict[int, Flow]] = {}
        self._by_dst: Dict[str, Dict[int, Flow]] = {}
        # Weighted occupancy per active link side (sum of flow weights; equal
        # to the bucket length when every flow has weight 1).  Maintained here
        # so every scheduling regime and link model shares one definition of
        # "how loaded is this link".
        self._src_weight: Dict[str, int] = {}
        self._dst_weight: Dict[str, int] = {}
        # Monotone arrival counter stamped onto flows in ``_add``; the fifo
        # model's service order is defined over this, not over flow ids.
        self._arrival_counter = 0

    # -- queries -----------------------------------------------------------
    def active_count(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    # -- index maintenance -------------------------------------------------
    def _add(self, flow: Flow) -> None:
        flow.arrival_seq = self._arrival_counter
        self._arrival_counter += 1
        self._flows[flow.flow_id] = flow
        self._by_src.setdefault(flow.src, {})[flow.flow_id] = flow
        self._by_dst.setdefault(flow.dst, {})[flow.flow_id] = flow
        self._src_weight[flow.src] = self._src_weight.get(flow.src, 0) + flow.weight
        self._dst_weight[flow.dst] = self._dst_weight.get(flow.dst, 0) + flow.weight

    def _remove(self, flow: Flow) -> None:
        del self._flows[flow.flow_id]
        for index, weights, name in (
            (self._by_src, self._src_weight, flow.src),
            (self._by_dst, self._dst_weight, flow.dst),
        ):
            bucket = index[name]
            del bucket[flow.flow_id]
            if not bucket:
                del index[name]
                del weights[name]
            else:
                weights[name] -= flow.weight

    def _clamp_residual(self, flow: Flow) -> None:
        """Clamp a completing flow's residual to exactly zero, once.

        Residuals inside ``(-epsilon, epsilon]`` are floating-point slack
        from the final progress chip; a residual below ``-epsilon`` would
        mean the flow was advanced past its completion instant — a scheduler
        bug — so it is surfaced instead of silently absorbed.
        """
        if flow.remaining < -_COMPLETION_EPSILON_BYTES:  # pragma: no cover - guard
            raise AssertionError(
                "flow %d advanced %.3g bytes past completion"
                % (flow.flow_id, -flow.remaining)
            )
        flow.remaining = 0.0

    @staticmethod
    def _is_complete(flow: Flow, now: float) -> bool:
        """Whether ``flow`` counts as finished at virtual time ``now``.

        Two cases: the residual is inside the byte epsilon, or the residual
        transfer time is too small to advance float virtual time at all
        (``now + remaining/rate == now``).  Without the second test a flow
        can strand microscopically above the byte epsilon — its completion
        event then lands *at* ``now``, the zero-width progress chip moves
        nothing, and the recompute reschedules itself forever.  The test
        only fires exactly where that non-terminating loop would begin, so
        every terminating trajectory (and all golden traces) is unchanged.
        """
        if flow.remaining <= _COMPLETION_EPSILON_BYTES:
            return True
        return flow.rate > 0 and now + flow.remaining / flow.rate <= now

    # -- interface ---------------------------------------------------------
    def start_flow(self, flow: Flow, now: float) -> None:
        """Register ``flow`` and schedule its first transport event."""
        raise NotImplementedError

    def start_flows(self, flows: List[Flow], now: float) -> None:
        """Register a same-instant batch of flows (a broadcast burst).

        The default is the sequential loop — exactly ``start_flow`` per flow
        — which is already right for the independent scheduler (each start is
        O(1)) and for the legacy engine (whose conformance contract is the
        per-start trajectory).  Occupancy-coupled engines override this: a
        burst of B flows from one sender re-rates the sender's growing uplink
        set per start, O(B²) flow touches, where one rate pass over the final
        occupancy does the same work in O(B).
        """
        for flow in flows:
            self.start_flow(flow, now)

    def on_link_replaced(self, name: str, now: float) -> None:
        """React to ``links[name]`` having been swapped mid-run."""
        raise NotImplementedError


class SharedLinkScheduler(FlowScheduler):
    """Legacy scheduler for link models with occupancy-coupled rates.

    Kept behind ``REPRO_SHARED_ENGINE=legacy`` (and as the fallback for
    shared models without a lazy rater) as the conformance anchor for
    :class:`~repro.simnet.shared_sched.LazySharedLinkScheduler`: its float
    trajectory is the pre-lazy one, pinned byte-for-byte by the
    ``golden_transport_{fair,fifo}_legacy.json`` traces.
    """

    def __init__(self, model, simulator, links, complete, expire) -> None:
        super().__init__(model, simulator, links, complete, expire)
        self._last_update = 0.0
        self._pending_recompute: Optional[EventHandle] = None
        self._scoped = model.scopes_to_touched_links()
        # Link rates as of the last rate assignment; a changed value means a
        # bandwidth-schedule breakpoint (or a link replacement) crossed and
        # the link's flows must be re-rated.
        self._up_rates: Dict[str, float] = {}
        self._down_rates: Dict[str, float] = {}

    # -- interface ---------------------------------------------------------
    def start_flow(self, flow: Flow, now: float) -> None:
        self._advance_progress(now)
        self._add(flow)
        self._recompute(now, touched_srcs={flow.src}, touched_dsts={flow.dst})

    def on_link_replaced(self, name: str, now: float) -> None:
        # Deliberately *only* reschedules the next recompute (matching the
        # pre-refactor transport): rates change at the recompute instant, not
        # at the replacement instant, and the rate cache flags the new link's
        # changed capacity then.
        self._schedule_recompute(now)

    # -- machinery ---------------------------------------------------------
    def _advance_progress(self, now: float) -> None:
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        self._last_update = now

    def _recompute(
        self,
        now: Optional[float] = None,
        touched_srcs: Optional[Set[str]] = None,
        touched_dsts: Optional[Set[str]] = None,
    ) -> None:
        now = self.simulator.now if now is None else now
        self._advance_progress(now)
        touched_srcs = set() if touched_srcs is None else touched_srcs
        touched_dsts = set() if touched_dsts is None else touched_dsts

        # Completions.
        completed = [f for f in self._flows.values() if self._is_complete(f, now)]
        for flow in completed:
            self._remove(flow)
            touched_srcs.add(flow.src)
            touched_dsts.add(flow.dst)
            self._clamp_residual(flow)
            self._complete(flow)

        # Timeouts.
        expired = [
            f
            for f in self._flows.values()
            if f.deadline is not None and now >= f.deadline - _TIME_EPSILON
        ]
        for flow in expired:
            self._remove(flow)
            touched_srcs.add(flow.src)
            touched_dsts.add(flow.dst)
            self._expire(flow)

        # New rates — scoped to the links this event touched — and the next
        # instant at which anything can change.
        self._assign_rates(now, touched_srcs, touched_dsts)
        self._schedule_recompute(now)

    def _assign_rates(self, now: float, touched_srcs: Set[str], touched_dsts: Set[str]) -> None:
        if not self._flows:
            self._up_rates.clear()
            self._down_rates.clear()
            return
        if not self._scoped:
            self.model.assign_rates(self._flows, self._links, now)
            return

        # A link whose capacity value moved since the last assignment (a
        # schedule breakpoint crossed, or set_link swapped the config) is as
        # touched as one whose occupancy changed.
        for name in self._by_src:
            rate = self._links[name].uplink.rate_at(now)
            if self._up_rates.get(name) != rate:
                self._up_rates[name] = rate
                touched_srcs.add(name)
        for name in self._by_dst:
            rate = self._links[name].downlink.rate_at(now)
            if self._down_rates.get(name) != rate:
                self._down_rates[name] = rate
                touched_dsts.add(name)
        for cache, index in ((self._up_rates, self._by_src), (self._down_rates, self._by_dst)):
            for name in [cached for cached in cache if cached not in index]:
                del cache[name]

        affected: Dict[int, Flow] = {}
        for name in touched_srcs:
            affected.update(self._by_src.get(name, {}))
        for name in touched_dsts:
            affected.update(self._by_dst.get(name, {}))
        if not affected:
            return
        self.model.assign_rates(
            self._flows,
            self._links,
            now,
            affected=affected.values(),
            up_counts=self._src_weight,
            down_counts=self._dst_weight,
        )

    def _schedule_recompute(self, now: float) -> None:
        if self._pending_recompute is not None:
            self._pending_recompute.cancel()
            self._pending_recompute = None
        if not self._flows:
            return
        candidates = []
        for flow in self._flows.values():
            if flow.rate > 0:
                candidates.append(now + flow.remaining / flow.rate)
            if flow.deadline is not None:
                candidates.append(flow.deadline)
        for index, side in ((self._by_src, "uplink"), (self._by_dst, "downlink")):
            for name in index:
                change = getattr(self._links[name], side).next_change_after(now)
                if change is not None:
                    candidates.append(change)
        model_next = self.model.next_event_time(self._flows, now)
        if model_next is not None:
            candidates.append(model_next)
        if not candidates:
            return
        next_time = max(min(candidates), now)
        self._pending_recompute = self.simulator.schedule(next_time, self._recompute)


class IndependentFlowScheduler(FlowScheduler):
    """Scheduler for link models whose flow rates never couple (latency-only).

    Each flow owns exactly one pending event — the earliest of its completion
    estimate, its deadline, and its links' next bandwidth breakpoints — so a
    flow starting or finishing costs O(1) regardless of how many other
    transfers are in flight.
    """

    def start_flow(self, flow: Flow, now: float) -> None:
        self._add(flow)
        self._refresh(flow, now)

    def on_link_replaced(self, name: str, now: float) -> None:
        affected = dict(self._by_src.get(name, {}))
        affected.update(self._by_dst.get(name, {}))
        for flow in affected.values():
            self._refresh(flow, now)

    # -- machinery ---------------------------------------------------------
    def _refresh(self, flow: Flow, now: float) -> None:
        """Advance one flow to ``now``, settle it, or reschedule its event."""
        elapsed = now - flow.last_update
        if elapsed > 0 and flow.rate > 0:
            # Clamped like the shared scheduler's advance: the completion
            # event lands at fl(now + remaining/rate), whose rounding error
            # grows with virtual time — by t ≈ 3000 s a 31 MB/s flow can
            # overshoot its residual by ~1e-5 bytes, past the byte epsilon.
            flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed)
        flow.last_update = now

        if flow.pending is not None:
            flow.pending.cancel()
            flow.pending = None

        if self._is_complete(flow, now):
            self._remove(flow)
            self._clamp_residual(flow)
            self._complete(flow)
            return
        if flow.deadline is not None and now >= flow.deadline - _TIME_EPSILON:
            self._remove(flow)
            self._expire(flow)
            return

        flow.rate = self.model.flow_rate(flow, self._links, now)
        candidates = []
        if flow.rate > 0:
            candidates.append(now + flow.remaining / flow.rate)
        if flow.deadline is not None:
            candidates.append(flow.deadline)
        for schedule in (self._links[flow.src].uplink, self._links[flow.dst].downlink):
            change = schedule.next_change_after(now)
            if change is not None:
                candidates.append(change)
        if not candidates:
            # Zero rate forever and no deadline: the transfer can never
            # finish nor abort, exactly like a starved shared-model flow.
            return
        flow.pending = self.simulator.schedule(
            max(min(candidates), now), self._on_flow_event, flow
        )

    def _on_flow_event(self, flow: Flow) -> None:
        flow.pending = None
        self._refresh(flow, self.simulator.now)


def make_flow_scheduler(
    model: LinkModel,
    simulator: Simulator,
    links: Mapping[str, "LinkConfig"],
    complete: Callable[[Flow], None],
    expire: Callable[[Flow], None],
    shared_engine: Optional[str] = None,
    latency_fn: Optional[Callable[[str, str], float]] = None,
) -> FlowScheduler:
    """Build the scheduler matching ``model``'s coupling regime.

    For shared models, ``shared_engine`` (default: the
    ``REPRO_SHARED_ENGINE`` environment variable, else ``"lazy"``) selects
    between the lazy-advance engine, the numpy structure-of-arrays engine
    (``"vector"``; requires the ``[perf]`` extra and a registered vector
    policy, otherwise it silently falls back to lazy), the partition-parallel
    engine (``"parallel"``; same numpy requirement, with one partition *is*
    the lazy engine, and for models without a partitioned policy falls back
    to the vector engine rather than straight to lazy), and the legacy
    global-recompute loop.  Shared models without a registered lazy rater
    always get the legacy scheduler — it handles any ``assign_rates``
    implementation.  ``latency_fn`` (the network's pairwise latency lookup)
    prices the parallel engine's boundary channels; other engines ignore it.
    """
    if not model.shared:
        return IndependentFlowScheduler(model, simulator, links, complete, expire)
    from repro.simnet.shared_sched import LAZY_RATERS, LazySharedLinkScheduler

    engine = resolve_shared_engine(shared_engine)
    if engine == "parallel":
        from repro.simnet.parallel_sched import (
            PARALLEL_MODELS,
            ParallelSharedLinkScheduler,
            parallel_available,
        )
        from repro.simnet.partition import resolve_partition_count

        partitions = resolve_partition_count()
        if parallel_available() and partitions > 1:
            if model.name in PARALLEL_MODELS:
                return ParallelSharedLinkScheduler(
                    model,
                    simulator,
                    links,
                    complete,
                    expire,
                    partitions=partitions,
                    latency_fn=latency_fn,
                )
            engine = "vector"  # unsupported model: next-best batched engine
        else:
            engine = "lazy"  # pure-Python install or 1 partition
    if engine == "vector":
        from repro.simnet.vector_sched import (
            VECTOR_POLICIES,
            VectorSharedLinkScheduler,
            vector_available,
        )

        if vector_available() and model.name in VECTOR_POLICIES:
            return VectorSharedLinkScheduler(model, simulator, links, complete, expire)
        engine = "lazy"  # pure-Python install or unvectorized model
    if engine == "lazy" and model.name in LAZY_RATERS:
        return LazySharedLinkScheduler(model, simulator, links, complete, expire)
    return SharedLinkScheduler(model, simulator, links, complete, expire)
