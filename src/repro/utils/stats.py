"""Small statistics helpers used by the directory aggregation algorithm.

Tor's consensus rules (Figure 2 of the paper) rely on two primitives:

* the **median** of measured bandwidth votes, and
* **majority** counting for relay inclusion and per-flag decisions.

Both are re-implemented here so that the exact tie-breaking behaviour is under
our control and documented, rather than depending on library quirks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def median(values: Sequence[float]) -> float:
    """Return the median of ``values``.

    Tor's directory specification uses the *low median* for an even number of
    bandwidth measurements (the lower of the two central values), which keeps
    the result equal to one of the submitted measurements.  We follow that
    convention.
    """
    if not values:
        raise ValueError("median of an empty sequence is undefined")
    ordered = sorted(values)
    mid = (len(ordered) - 1) // 2
    return ordered[mid]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def strict_majority(count: int, total: int) -> bool:
    """True when ``count`` is a strict majority of ``total`` (count > total/2)."""
    if total <= 0:
        raise ValueError("total must be positive")
    return count * 2 > total


def at_least_half(count: int, total: int) -> bool:
    """True when ``count`` reaches at least ⌊total/2⌋ (the paper's Figure-2 rule)."""
    if total <= 0:
        raise ValueError("total must be positive")
    return count >= total // 2


def majority_value(values: Iterable[T]) -> List[T]:
    """Return the values that occur most frequently (all tied maxima).

    Helper used by flag/property aggregation; the caller applies the
    protocol's tie-break rule when more than one value is returned.
    """
    counts: dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        return []
    top = max(counts.values())
    return [value for value, count in counts.items() if count == top]
