"""Shared utilities: unit conversions, deterministic RNG, validation helpers.

These helpers are deliberately tiny and dependency-free; every other
sub-package of :mod:`repro` builds on them.
"""

from repro.utils.units import (
    BYTE,
    KIB,
    MIB,
    Bandwidth,
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_mib,
    mbps_to_bytes_per_s,
    bytes_per_s_to_mbps,
    seconds,
    minutes,
    hours,
)
from repro.utils.rng import DeterministicRNG, derive_seed
from repro.utils.validation import (
    ReproError,
    ValidationError,
    ensure,
    ensure_type,
    ensure_positive,
    ensure_non_negative,
    ensure_in_range,
)
from repro.utils.stats import median, strict_majority, at_least_half, mean

__all__ = [
    "BYTE",
    "KIB",
    "MIB",
    "Bandwidth",
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_to_mib",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
    "seconds",
    "minutes",
    "hours",
    "DeterministicRNG",
    "derive_seed",
    "ReproError",
    "ValidationError",
    "ensure",
    "ensure_type",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in_range",
    "median",
    "strict_majority",
    "at_least_half",
    "mean",
]
