"""Instance-level memoization for (effectively) immutable objects.

Frozen dataclasses forbid attribute assignment but still carry a
``__dict__``, so a computed value can be stashed there via
``object.__setattr__`` without touching declared fields (dataclass
equality/``replace`` ignore it, and copies recompute).  Every hot-path
memo in the library — vote/relay/consensus serialisations, document
digests, canonical signature payloads — goes through this one helper so
the idiom and its caveats live in a single place.

Caveats, stated once: the object's *inputs to compute* must not change
after the first call (that is what "effectively immutable" means here);
values of ``None`` cannot be cached (``None`` means "not yet computed");
and mutable-container fields need their own guard if tests poke them
(see ``ConsensusDocument.serialize_body``, which keys its cache on the
relay count for exactly that reason).
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

T = TypeVar("T")


def instance_memo(obj: Any, key: str, compute: Callable[[], T]) -> T:
    """Return ``obj.__dict__[key]``, computing and stashing it on first use."""
    cached = obj.__dict__.get(key)
    if cached is None:
        cached = compute()
        object.__setattr__(obj, key, cached)
    return cached
