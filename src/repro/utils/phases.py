"""Phase-attributed wall-clock accounting for the simulation hot path.

``BENCH_scaling.json`` answers "how fast is the run"; this module answers
"*where did the wall clock go*".  A run's time is split into named buckets —
``transport`` (event loop, flow scheduling, rate maintenance), ``protocol``
(node timer bodies and message handlers), ``crypto`` (HMAC signing and
verification), and ``client_wave`` (cohort wave ticks) — so a regression can
be attributed to a layer instead of re-profiled from scratch
(``benchmarks/profile_scaling.py --phases`` prints the table; the scaling
sweep records it per cell in format 5).

Accounting is **exclusive** (self-time): entering a nested bucket stops the
clock of the enclosing one, so the buckets sum to the instrumented span and
``sum(buckets) - transport`` is exactly the *non-transport floor* the perf
work tracks.  The mechanism is a stack of ``[bucket, last_stamp]`` frames:
``enter`` charges the elapsed slice to the current top and pushes, ``leave``
charges the top and pops, re-stamping the parent.

Cost discipline: instrumentation sites guard with ``if phases.ENABLED:``
(a module-global bool read), so the disabled path costs one attribute load
per site — unmeasurable against the work it wraps.  Enabled, each
enter/leave pair is two ``perf_counter`` calls and a few dict/list
operations (~1–2 % on protocol-heavy cells), which is why the scaling
sweep's phase collection is opt-in per cell rather than always-on.

Not thread-safe and not re-entrant across simulators: one process measures
one run at a time (sweep workers each own a process, so this holds in
practice).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List

#: Instrumentation master switch.  Sites check this inline; use
#: :func:`measuring` (or :func:`enable`/:func:`disable`) to flip it.
ENABLED = False

#: Bucket names, in reporting order.  ``transport`` is the outermost bucket
#: (the simulator's run loop); the others carve their self-time out of it.
TRANSPORT = "transport"
PROTOCOL = "protocol"
CRYPTO = "crypto"
CLIENT_WAVE = "client_wave"
BUCKETS = (TRANSPORT, PROTOCOL, CRYPTO, CLIENT_WAVE)

#: Accumulated self-time per bucket (seconds of wall clock).
_totals: Dict[str, float] = {}

#: Stack of ``[bucket, last_stamp]`` frames; the top owns the clock.
_stack: List[List] = []


def reset() -> None:
    """Clear accumulated totals and any dangling stack frames."""
    _totals.clear()
    del _stack[:]


def enter(bucket: str) -> None:
    """Start charging wall clock to ``bucket`` (pausing the enclosing one)."""
    now = perf_counter()
    if _stack:
        top = _stack[-1]
        _totals[top[0]] = _totals.get(top[0], 0.0) + (now - top[1])
        top[1] = now
    _stack.append([bucket, now])


def leave() -> None:
    """Stop the innermost bucket and resume its parent."""
    now = perf_counter()
    top = _stack.pop()
    _totals[top[0]] = _totals.get(top[0], 0.0) + (now - top[1])
    if _stack:
        _stack[-1][1] = now


def snapshot() -> Dict[str, float]:
    """The accumulated self-time per bucket so far (a copy)."""
    return dict(_totals)


def non_transport_total(buckets: Dict[str, float]) -> float:
    """The non-transport floor: every bucket except ``transport``."""
    return sum(value for name, value in buckets.items() if name != TRANSPORT)


@contextmanager
def measuring() -> Iterator[None]:
    """Enable instrumentation for the block; totals reset on entry.

    Read the result with :func:`snapshot` *inside* the block or after it —
    exiting restores the previous ``ENABLED`` state but keeps the totals, so
    callers can collect them after the measured run returns.
    """
    global ENABLED
    previous = ENABLED
    reset()
    ENABLED = True
    try:
        yield
    finally:
        ENABLED = previous


def profile(fn, *args, **kwargs):
    """Run ``fn`` with phases enabled; return ``(result, buckets, wall_s)``.

    ``buckets`` includes an ``other`` entry for wall clock spent outside any
    instrumented bucket (setup, teardown, result assembly), so the entries
    always sum to ``wall_s``.
    """
    started = perf_counter()
    with measuring():
        result = fn(*args, **kwargs)
    wall = perf_counter() - started
    buckets = snapshot()
    buckets["other"] = max(0.0, wall - sum(buckets.values()))
    reset()
    return result, buckets, wall
