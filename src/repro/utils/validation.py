"""Validation helpers and the exception hierarchy for :mod:`repro`.

The library favours loud, early failures: malformed protocol configuration or
impossible simulator parameters raise :class:`ValidationError` at construction
time rather than producing silently wrong experiment results.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """Raised when a caller supplies invalid configuration or arguments."""


def ensure(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def ensure_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        raise ValidationError(
            "%s must be an instance of %s, got %r" % (name, types, type(value).__name__)
        )


def ensure_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValidationError("%s must be positive, got %r" % (name, value))


def ensure_non_negative(value: float, name: str) -> None:
    """Raise unless ``value`` is zero or positive."""
    if value < 0:
        raise ValidationError("%s must be non-negative, got %r" % (name, value))


def ensure_in_range(value: float, low: float, high: float, name: str) -> None:
    """Raise unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValidationError(
            "%s must be within [%r, %r], got %r" % (name, low, high, value)
        )
