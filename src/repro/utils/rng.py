"""Deterministic random number generation.

All stochastic behaviour in the reproduction (relay populations, latency
jitter, leader schedules for randomized ablations) flows through
:class:`DeterministicRNG`, a thin wrapper over :class:`random.Random` that

* forbids unseeded construction, and
* supports hierarchical seed derivation so that independent subsystems get
  independent, reproducible streams.

The event-driven simulator itself is fully deterministic; randomness only
appears in workload generation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a new 64-bit seed from a base seed and a label path.

    The derivation is stable across processes and Python versions because it
    uses SHA-256 over a canonical string encoding rather than ``hash()``.
    """
    material = repr((int(base_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRNG:
    """A seeded random stream with convenience samplers.

    Parameters
    ----------
    seed:
        Integer seed.  Two instances created with the same seed produce the
        same sequence of samples.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def child(self, *labels: object) -> "DeterministicRNG":
        """Return an independent stream derived from this one and ``labels``."""
        return DeterministicRNG(derive_seed(self._seed, *labels))

    # -- scalar samplers -------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential sample with the given rate."""
        return self._random.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal sample (used for relay bandwidth distributions)."""
        return self._random.lognormvariate(mu, sigma)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        return self._random.random() < p

    # -- collection samplers ---------------------------------------------
    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Pick ``k`` distinct elements uniformly without replacement."""
        return self._random.sample(list(items), k)

    def shuffle(self, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is not mutated)."""
        copied = list(items)
        self._random.shuffle(copied)
        return copied

    def hex_string(self, length: int) -> str:
        """Return a deterministic uppercase hex string of the given length."""
        alphabet = "0123456789ABCDEF"
        return "".join(self._random.choice(alphabet) for _ in range(length))
