"""Unit conversions used throughout the simulator and analyses.

The paper (and the Tor operational documents it cites) mixes several unit
systems: link capacities in Mbit/s, document sizes in bytes or MiB, and
protocol timers in seconds or minutes.  Keeping all conversions in a single
module avoids the classic factor-of-8 bandwidth bugs.

Internally the simulator always works in **bytes** and **seconds**; the
conversion helpers here are the only place where Mbit/s appears.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of bytes in common size units.
BYTE = 1
KIB = 1024
MIB = 1024 * 1024

#: Bits per byte.  Network capacities are quoted in bits.
BITS_PER_BYTE = 8

#: One megabit expressed in bits.  Networking uses decimal mega (1e6).
MEGABIT = 1_000_000


def bits_to_bytes(bits: float) -> float:
    """Convert a number of bits to bytes."""
    return bits / BITS_PER_BYTE


def bytes_to_bits(nbytes: float) -> float:
    """Convert a number of bytes to bits."""
    return nbytes * BITS_PER_BYTE


def bytes_to_mib(nbytes: float) -> float:
    """Convert bytes to MiB (useful for human-readable reports)."""
    return nbytes / MIB


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Convert a bandwidth in Mbit/s to bytes per second.

    Example: 10 Mbit/s -> 1.25e6 bytes/s, matching the paper's statement
    that 10 Mbit/s equals 1.25 MB/s.
    """
    return mbps * MEGABIT / BITS_PER_BYTE


def bytes_per_s_to_mbps(bytes_per_s: float) -> float:
    """Convert a bandwidth in bytes per second to Mbit/s."""
    return bytes_per_s * BITS_PER_BYTE / MEGABIT


def seconds(value: float) -> float:
    """Identity helper that documents a literal as seconds."""
    return float(value)


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * 3600.0


@dataclass(frozen=True)
class Bandwidth:
    """A link capacity with explicit unit handling.

    Instances are immutable and comparable.  ``Bandwidth.from_mbps(10)`` and
    ``Bandwidth.from_bytes_per_s(1.25e6)`` describe the same capacity.
    """

    bytes_per_s: float

    def __post_init__(self) -> None:
        if self.bytes_per_s < 0:
            raise ValueError("bandwidth must be non-negative, got %r" % self.bytes_per_s)

    @classmethod
    def from_mbps(cls, mbps: float) -> "Bandwidth":
        """Build a bandwidth from a value in Mbit/s."""
        return cls(mbps_to_bytes_per_s(mbps))

    @classmethod
    def from_bytes_per_s(cls, bytes_per_s: float) -> "Bandwidth":
        """Build a bandwidth from a value in bytes per second."""
        return cls(float(bytes_per_s))

    @property
    def mbps(self) -> float:
        """The capacity expressed in Mbit/s."""
        return bytes_per_s_to_mbps(self.bytes_per_s)

    def transfer_time(self, nbytes: float) -> float:
        """Time (seconds) needed to move ``nbytes`` at this rate.

        Raises :class:`ZeroDivisionError` semantics explicitly: a zero-rate
        link never finishes, which we represent with ``float('inf')``.
        """
        if self.bytes_per_s == 0:
            return float("inf")
        return nbytes / self.bytes_per_s

    def __lt__(self, other: "Bandwidth") -> bool:
        return self.bytes_per_s < other.bytes_per_s

    def __le__(self, other: "Bandwidth") -> bool:
        return self.bytes_per_s <= other.bytes_per_s

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return "%.3f Mbit/s" % self.mbps
