"""Signed claims, proposals, and digest-vector proofs for ICPS.

The dissemination sub-protocol (Section 5.2.1 of the paper) manipulates three
kinds of signed objects:

* a **digest claim** — node ``i``'s signature over "node ``j``'s document has
  digest ``h``" (or over ⊥, meaning "I did not receive ``j``'s document");
* a **proposal** ``P_i`` — node ``i``'s claims about every node's digest,
  paired with the subject's own signature for non-⊥ entries (the paper's
  ``(h_j, σ_j(j, h_j), σ_i(j, h_j))`` triples);
* a **digest vector with proof** ``(H, π)`` — the leader's combination of at
  least ``n - f`` proposals, where every entry carries an externally
  verifiable proof: ``f + 1`` matching claims for an OK entry, a pair of
  conflicting subject signatures for an equivocation entry, or ``f + 1``
  ⊥-claims for a timeout entry.

``(H, π)`` is exactly the value the agreement sub-protocol decides on, and
:func:`validate_digest_vector` is the external-validity predicate handed to
the consensus engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.digest import DIGEST_SIZE_BYTES
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import SIGNATURE_SIZE_BYTES, Signature, sign, verify
from repro.utils.memo import instance_memo
from repro.utils.validation import ValidationError

#: Signature context for digest claims.
CLAIM_CONTEXT = "icps/digest-claim"


def claim_payload(subject: str, digest: Optional[bytes]) -> Optional[bytes]:
    """Canonical signed payload for the claim "subject's document digest is X"."""
    if digest is None:
        return None
    return subject.encode("utf-8") + b"|" + digest


def sign_claim(pair: KeyPair, subject: str, digest: Optional[bytes]) -> Signature:
    """Sign a digest claim (``digest=None`` signs the ⊥ claim)."""
    return sign(pair, CLAIM_CONTEXT + "|" + subject, claim_payload(subject, digest))


def verify_claim(
    ring: KeyRing, signature: Signature, subject: str, digest: Optional[bytes]
) -> bool:
    """Verify that ``signature`` is a claim by its signer about ``(subject, digest)``."""
    if signature.context != CLAIM_CONTEXT + "|" + subject:
        return False
    if signature.message != claim_payload(subject, digest):
        return False
    return verify(ring, signature)


@dataclass(frozen=True)
class ProposalEntry:
    """One entry of a proposal ``P_i``: node ``i``'s claim about node ``subject``."""

    subject: str
    digest: Optional[bytes]
    subject_signature: Optional[Signature]
    proposer_signature: Signature

    @property
    def is_bottom(self) -> bool:
        """True when the proposer claims it did not receive the subject's document."""
        return self.digest is None

    @property
    def size_bytes(self) -> int:
        """Wire size of the entry."""
        size = len(self.subject) + SIGNATURE_SIZE_BYTES
        if self.digest is not None:
            size += DIGEST_SIZE_BYTES
        if self.subject_signature is not None:
            size += SIGNATURE_SIZE_BYTES
        return size


@dataclass(frozen=True)
class ProposalMessage:
    """A full proposal ``P_i``: one :class:`ProposalEntry` per node."""

    proposer: str
    entries: Tuple[ProposalEntry, ...]

    @property
    def non_bottom_count(self) -> int:
        """Number of entries with a concrete digest."""
        return sum(1 for entry in self.entries if not entry.is_bottom)

    @property
    def size_bytes(self) -> int:
        """Wire size of the proposal (entries are frozen, so computed once)."""
        return instance_memo(
            self,
            "_size",
            lambda: sum(entry.size_bytes for entry in self.entries) + len(self.proposer),
        )

    def entry_for(self, subject: str) -> Optional[ProposalEntry]:
        """The entry about ``subject`` (None if absent)."""
        for entry in self.entries:
            if entry.subject == subject:
                return entry
        return None


def _verdict_memo(obj: object, ring: KeyRing, nodes: Sequence[str], f: int):
    """Per-instance validation-verdict cache for frozen signed objects.

    Broadcast dissemination re-validates the *same* proposal or digest vector
    once per receiving authority; the verdict only depends on the (immutable)
    object and the ``(ring, nodes, f)`` validation context, so it is cached on
    the instance.  The ring keys by identity — a different ring (different
    keys) gets its own verdict.  Returns ``(memo, key)``.
    """
    memo = obj.__dict__.get("_verdict_memo")
    if memo is None:
        memo = {}
        object.__setattr__(obj, "_verdict_memo", memo)
    return memo, (ring, tuple(nodes), f)


def validate_proposal(
    proposal: ProposalMessage,
    ring: KeyRing,
    nodes: Sequence[str],
    f: int,
) -> bool:
    """Check a proposal's well-formedness and signatures.

    A valid proposal covers every node exactly once, carries the proposer's
    claim signature on every entry, carries the subject's own signature on
    every non-⊥ entry, and has at least ``n - f`` non-⊥ entries (a node only
    proposes once it received that many documents).

    The verdict is cached per ``(ring, nodes, f)``: every authority receiving
    a relayed copy of the same proposal object reuses the first validation.
    """
    memo, key = _verdict_memo(proposal, ring, nodes, f)
    verdict = memo.get(key)
    if verdict is None:
        verdict = memo[key] = _validate_proposal_uncached(proposal, ring, nodes, f)
    return verdict


def _validate_proposal_uncached(
    proposal: ProposalMessage,
    ring: KeyRing,
    nodes: Sequence[str],
    f: int,
) -> bool:
    expected = list(nodes)
    subjects = [entry.subject for entry in proposal.entries]
    if subjects != expected:
        return False
    if proposal.non_bottom_count < len(expected) - f:
        return False
    for entry in proposal.entries:
        if entry.proposer_signature.signer != proposal.proposer:
            return False
        if not verify_claim(ring, entry.proposer_signature, entry.subject, entry.digest):
            return False
        if entry.is_bottom:
            if entry.subject_signature is not None:
                return False
        else:
            if entry.subject_signature is None:
                return False
            if entry.subject_signature.signer != entry.subject:
                return False
            if not verify_claim(ring, entry.subject_signature, entry.subject, entry.digest):
                return False
    return True


@dataclass(frozen=True)
class EntryProof:
    """Externally verifiable proof attached to one entry of the digest vector.

    ``kind`` is one of:

    * ``"ok"`` — ``signatures`` holds ``f + 1`` distinct proposers' claims on
      the same digest (so at least one correct node has the document);
    * ``"equivocation"`` — ``signatures`` holds two of the *subject's own*
      signatures on different digests;
    * ``"timeout"`` — ``signatures`` holds ``f + 1`` distinct proposers'
      ⊥-claims (so at least one correct node timed out on the subject).
    """

    kind: str
    signatures: Tuple[Signature, ...]
    conflicting_digests: Tuple[bytes, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("ok", "equivocation", "timeout"):
            raise ValidationError("unknown proof kind %r" % self.kind)

    @property
    def size_bytes(self) -> int:
        """Wire size of the proof."""
        return (
            len(self.signatures) * SIGNATURE_SIZE_BYTES
            + len(self.conflicting_digests) * DIGEST_SIZE_BYTES
        )


@dataclass(frozen=True)
class DigestVectorValue:
    """The agreement sub-protocol's value: the digest vector ``H`` plus proof ``π``."""

    leader: str
    entries: Tuple[Tuple[str, Optional[bytes], EntryProof], ...]

    @property
    def non_bottom_count(self) -> int:
        """|H|≠⊥ — number of entries carrying a digest."""
        return sum(1 for _node, digest, _proof in self.entries if digest is not None)

    def digest_of(self, node: str) -> Optional[bytes]:
        """The agreed digest for ``node`` (None for ⊥)."""
        for name, digest, _proof in self.entries:
            if name == node:
                return digest
        return None

    def digests(self) -> Dict[str, Optional[bytes]]:
        """Mapping node → agreed digest (or None)."""
        return {name: digest for name, digest, _proof in self.entries}

    @property
    def size_bytes(self) -> int:
        """Wire size of the ``(H, π)`` pair (Table 1's O(n²κ) consensus input)."""

        def compute() -> int:
            total = len(self.leader)
            for name, digest, proof in self.entries:
                total += len(name) + (DIGEST_SIZE_BYTES if digest is not None else 0)
                total += proof.size_bytes
            return total

        return instance_memo(self, "_size", compute)

    def canonical_encoding(self) -> bytes:
        """Stable encoding used by the consensus engines' value digests.

        The vector is frozen, so the encoding is computed once and memoised:
        every vote, digest, and view change hashes this value, and at ``n``
        authorities the walk covers ``O(n)`` entries with ``O(f)`` signatures
        each.
        """

        def compute() -> bytes:
            parts: List[bytes] = [self.leader.encode("utf-8")]
            for name, digest, proof in self.entries:
                parts.append(name.encode("utf-8"))
                parts.append(digest if digest is not None else b"<bottom>")
                parts.append(proof.kind.encode("utf-8"))
                for signature in proof.signatures:
                    parts.append(signature.signer.encode("utf-8"))
                    parts.append(signature.tag)
            return b"|".join(parts)

        return instance_memo(self, "_encoding", compute)


def validate_digest_vector(
    value: DigestVectorValue,
    ring: KeyRing,
    nodes: Sequence[str],
    f: int,
) -> bool:
    """External-validity predicate for the agreement sub-protocol.

    Checks, per Section 5.2.1: the vector covers every node once; at least
    ``n - f`` entries are non-⊥; every OK entry carries ``f + 1`` distinct
    valid claims on its digest; every ⊥ entry carries either an equivocation
    proof (two conflicting subject signatures) or ``f + 1`` distinct valid
    ⊥-claims.

    The verdict is cached per ``(ring, nodes, f)`` on the (frozen) value:
    the agreement engine hands the same ``(H, π)`` object to every replica's
    external-validity predicate, and the claim-set checks are the crypto-heavy
    part of the round.
    """
    if not isinstance(value, DigestVectorValue):
        return False
    memo, key = _verdict_memo(value, ring, nodes, f)
    verdict = memo.get(key)
    if verdict is None:
        verdict = memo[key] = _validate_digest_vector_uncached(value, ring, nodes, f)
    return verdict


def _validate_digest_vector_uncached(
    value: DigestVectorValue,
    ring: KeyRing,
    nodes: Sequence[str],
    f: int,
) -> bool:
    expected = list(nodes)
    subjects = [name for name, _digest, _proof in value.entries]
    if subjects != expected:
        return False
    if value.non_bottom_count < len(expected) - f:
        return False
    for name, digest, proof in value.entries:
        if digest is not None:
            if proof.kind != "ok":
                return False
            if not _validate_claim_set(ring, proof.signatures, name, digest, f + 1):
                return False
        elif proof.kind == "equivocation":
            if not _validate_equivocation(ring, proof, name):
                return False
        elif proof.kind == "timeout":
            if not _validate_claim_set(ring, proof.signatures, name, None, f + 1):
                return False
        else:
            return False
    return True


def _validate_claim_set(
    ring: KeyRing,
    signatures: Sequence[Signature],
    subject: str,
    digest: Optional[bytes],
    minimum: int,
) -> bool:
    signers = set()
    for signature in signatures:
        if not verify_claim(ring, signature, subject, digest):
            return False
        signers.add(signature.signer)
    return len(signers) >= minimum


def _validate_equivocation(ring: KeyRing, proof: EntryProof, subject: str) -> bool:
    if len(proof.signatures) != 2 or len(proof.conflicting_digests) != 2:
        return False
    first, second = proof.conflicting_digests
    if first == second:
        return False
    for signature, digest in zip(proof.signatures, proof.conflicting_digests):
        if signature.signer != subject:
            return False
        if not verify_claim(ring, signature, subject, digest):
            return False
    return True
