"""Interactive Consistency under Partial Synchrony (ICPS) — the paper's core.

The paper defines a new functionality (Definition 5.1) combining interactive
consistency with Byzantine broadcast under partial synchrony, and a protocol
implementing it in three sub-protocols:

1. **Dissemination** — every node broadcasts its document with a signed
   digest; nodes assemble signed *proposals* describing which digests they
   received; a (view) leader combines ``n - f`` proposals into a digest
   vector ``H`` plus an externally verifiable proof ``π``.
2. **Agreement** — any view-based BFT engine (:mod:`repro.consensus`) agrees
   on one ``(H, π)`` pair; ``π`` is checked by the engine's external-validity
   predicate.
3. **Aggregation** — nodes fetch any documents referenced by the agreed
   ``H`` that they do not hold yet (at least one correct node holds each),
   then output the document vector.

:class:`ICPSNode` implements all three phases as a pure state machine with
the same action-based interface as the consensus engines, so it can be driven
by the local test driver, by adversarial drivers, and by the network
simulator (see :mod:`repro.protocols.partialsync`).
"""

from repro.core.documents import Document
from repro.core.proofs import (
    DigestVectorValue,
    EntryProof,
    ProposalEntry,
    ProposalMessage,
    validate_digest_vector,
    validate_proposal,
)
from repro.core.dissemination import DisseminationTracker, build_digest_vector
from repro.core.icps import ICPSConfig, ICPSNode, ICPSOutput
from repro.core.properties import (
    check_agreement,
    check_common_set_validity,
    check_termination,
    check_value_validity,
)

__all__ = [
    "Document",
    "DigestVectorValue",
    "EntryProof",
    "ProposalEntry",
    "ProposalMessage",
    "validate_digest_vector",
    "validate_proposal",
    "DisseminationTracker",
    "build_digest_vector",
    "ICPSConfig",
    "ICPSNode",
    "ICPSOutput",
    "check_agreement",
    "check_common_set_validity",
    "check_termination",
    "check_value_validity",
]
