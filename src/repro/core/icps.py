"""The ICPS protocol node (dissemination → agreement → aggregation).

:class:`ICPSNode` is a pure state machine with the same action-based
interface as the consensus engines: hosts feed it messages and timer expiries
and execute the actions it returns.  Internally it owns

* a :class:`~repro.core.dissemination.DisseminationTracker` for phase 1,
* a view-based consensus engine (:mod:`repro.consensus`) for phase 2, whose
  messages are wrapped in ``AGREEMENT`` envelopes, and
* a document-fetch loop for phase 3 (aggregation), which retrieves any
  documents referenced by the agreed digest vector that the node does not
  hold, then emits the final output vector.

The output is an :class:`ICPSOutput`: a vector assigning each node either its
document or ⊥, satisfying the four properties of Definition 5.1 (termination,
agreement, value validity, common-set validity) — the property checkers in
:mod:`repro.core.properties` verify exactly those over a set of outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus import EngineConfig, make_engine
from repro.consensus.interfaces import (
    Action,
    BroadcastAction,
    ConsensusMessage,
    DecideAction,
    SendAction,
    SetTimerAction,
)
from repro.core.documents import Document
from repro.core.dissemination import DisseminationTracker
from repro.core.proofs import DigestVectorValue, ProposalMessage, validate_digest_vector
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import SIGNATURE_SIZE_BYTES, Signature
from repro.utils.memo import instance_memo
from repro.utils.validation import ValidationError, ensure

#: Timer identifiers used by the ICPS layer itself.
DISSEMINATION_TIMER = "dissemination"
FETCH_RETRY_TIMER = "fetch-retry"
_ENGINE_TIMER_PREFIX = "engine:"


@dataclass(frozen=True)
class ICPSMessage:
    """A message of the ICPS protocol.

    ``msg_type`` is one of ``DOCUMENT``, ``PROPOSAL``, ``AGREEMENT``,
    ``FETCH_REQUEST``, ``FETCH_RESPONSE``.
    """

    msg_type: str
    sender: str
    payload: Any = None

    @property
    def size_bytes(self) -> int:
        """Wire size of the message, derived from its payload.

        Memoised on the instance: payloads are not mutated after the message
        is built, and a broadcast prices the same message once per peer.
        """
        return instance_memo(self, "_size", self._compute_size_bytes)

    def _compute_size_bytes(self) -> int:
        base = 64  # framing
        if self.msg_type == "DOCUMENT":
            document: Document = self.payload["document"]
            return base + document.size_bytes + SIGNATURE_SIZE_BYTES + 32
        if self.msg_type == "PROPOSAL":
            proposal: ProposalMessage = self.payload
            return base + proposal.size_bytes
        if self.msg_type == "AGREEMENT":
            return base + _agreement_message_size(self.payload)
        if self.msg_type == "FETCH_REQUEST":
            return base + 48 * len(self.payload)
        if self.msg_type == "FETCH_RESPONSE":
            return base + sum(document.size_bytes + 48 for document in self.payload.values())
        return base


def _agreement_message_size(inner: ConsensusMessage) -> int:
    """Wire size of a wrapped consensus-engine message."""
    size = 128
    payload = inner.payload or {}
    if isinstance(payload, dict):
        value = payload.get("value")
        if isinstance(value, DigestVectorValue):
            size += value.size_bytes
        qc = payload.get("qc") or payload.get("justify") or payload.get("high_qc")
        if qc is not None:
            size += SIGNATURE_SIZE_BYTES * max(1, len(getattr(qc, "voters", ())))
        if payload.get("digest") is not None:
            size += 32
        prepared = payload.get("prepared")
        if prepared is not None and isinstance(getattr(prepared, "value", None), DigestVectorValue):
            size += prepared.value.size_bytes
    return size


@dataclass(frozen=True)
class ICPSConfig:
    """Static configuration of one ICPS node.

    Attributes
    ----------
    node_id / nodes:
        This node's identifier and the globally ordered node list.
    delta:
        The dissemination timeout Δ: after Δ a node proposes as soon as it
        holds ``n - f`` documents instead of waiting for all ``n``.
    engine:
        Name of the agreement engine (``hotstuff``, ``pbft``, ``tendermint``).
    view_timeout / timeout_growth:
        Agreement view-timer parameters.
    fetch_retry_interval:
        How often the aggregation phase re-requests missing documents.
    """

    node_id: str
    nodes: Tuple[str, ...]
    delta: float = 30.0
    engine: str = "hotstuff"
    view_timeout: float = 20.0
    timeout_growth: float = 1.5
    fetch_retry_interval: float = 30.0

    def __post_init__(self) -> None:
        ensure(len(self.nodes) >= 1, "nodes must not be empty")
        if self.node_id not in self.nodes:
            raise ValidationError("node_id must be a member of nodes")
        ensure(self.delta > 0, "delta must be positive")
        ensure(self.view_timeout > 0, "view_timeout must be positive")
        ensure(self.fetch_retry_interval > 0, "fetch_retry_interval must be positive")

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def f(self) -> int:
        """Fault tolerance under partial synchrony (⌊(n-1)/3⌋)."""
        return (self.n - 1) // 3


@dataclass(frozen=True)
class ICPSOutput:
    """The protocol output: a document (or ⊥) per node, plus the agreed vector."""

    node_id: str
    documents: Dict[str, Optional[Document]]
    agreed_vector: DigestVectorValue
    decided_view: int

    @property
    def non_bottom_count(self) -> int:
        """Number of nodes whose document appears in the output."""
        return sum(1 for document in self.documents.values() if document is not None)

    def document_of(self, node: str) -> Optional[Document]:
        """The output entry for ``node``."""
        return self.documents.get(node)


class ICPSNode:
    """One participant of the ICPS protocol (all three sub-protocols)."""

    def __init__(
        self,
        config: ICPSConfig,
        ring: KeyRing,
        keypair: KeyPair,
        engine_factory: Optional[Callable[[EngineConfig], Any]] = None,
    ) -> None:
        self.config = config
        self.ring = ring
        self.keypair = keypair
        self.tracker = DisseminationTracker(
            node_id=config.node_id,
            nodes=config.nodes,
            f=config.f,
            ring=ring,
            keypair=keypair,
        )
        engine_config = EngineConfig(
            node_id=config.node_id,
            nodes=config.nodes,
            base_timeout=config.view_timeout,
            timeout_growth=config.timeout_growth,
            validator=lambda value: validate_digest_vector(value, ring, config.nodes, config.f),
        )
        if engine_factory is not None:
            self.engine = engine_factory(engine_config)
        else:
            self.engine = make_engine(config.engine, engine_config)

        self._started = False
        self._delta_expired = False
        self._proposal_sent = False
        self._engine_input_set = False
        self._agreed_vector: Optional[DigestVectorValue] = None
        self._output: Optional[ICPSOutput] = None
        self._fetch_outstanding: Tuple[str, ...] = ()

    # -- observable state -----------------------------------------------------
    @property
    def started(self) -> bool:
        """True once :meth:`start` has run."""
        return self._started

    @property
    def agreed(self) -> bool:
        """True once the agreement phase has decided a digest vector."""
        return self._agreed_vector is not None

    @property
    def agreed_vector(self) -> Optional[DigestVectorValue]:
        """The agreed digest vector (None before agreement)."""
        return self._agreed_vector

    @property
    def decided(self) -> bool:
        """True once the full output (with documents) is available."""
        return self._output is not None

    @property
    def output(self) -> Optional[ICPSOutput]:
        """The protocol output (None until :attr:`decided`)."""
        return self._output

    @property
    def decision(self) -> Optional[ICPSOutput]:
        """Alias for :attr:`output` so generic drivers can treat ICPS like an engine."""
        return self._output

    @property
    def decision_view(self) -> Optional[int]:
        """View in which the agreement phase decided (None before output)."""
        return None if self._output is None else self._output.decided_view

    # -- lifecycle ----------------------------------------------------------------
    def start(self, document: Document) -> List[Action]:
        """Start the protocol with this node's input document."""
        ensure(not self._started, "ICPS node already started")
        self._started = True
        signature = self.tracker.record_own_document(document)
        actions: List[Action] = [
            BroadcastAction(
                ICPSMessage(
                    msg_type="DOCUMENT",
                    sender=self.config.node_id,
                    payload={"document": document, "signature": signature},
                )
            ),
            SetTimerAction(timer_id=DISSEMINATION_TIMER, duration=self.config.delta),
        ]
        actions.extend(self._wrap_engine_actions(self.engine.start(None)))
        actions.extend(self._maybe_send_proposal())
        return actions

    # -- message handling -----------------------------------------------------------
    def on_message(self, message: ICPSMessage) -> List[Action]:
        """Process an incoming ICPS message."""
        if not self._started or not isinstance(message, ICPSMessage):
            return []
        handlers = {
            "DOCUMENT": self._on_document,
            "PROPOSAL": self._on_proposal,
            "AGREEMENT": self._on_agreement,
            "FETCH_REQUEST": self._on_fetch_request,
            "FETCH_RESPONSE": self._on_fetch_response,
        }
        handler = handlers.get(message.msg_type)
        if handler is None:
            return []
        return handler(message)

    def on_timeout(self, timer_id: str) -> List[Action]:
        """Process a timer expiry."""
        if not self._started:
            return []
        if timer_id == DISSEMINATION_TIMER:
            self._delta_expired = True
            return self._maybe_send_proposal()
        if timer_id == FETCH_RETRY_TIMER:
            return self._request_missing_documents()
        if timer_id.startswith(_ENGINE_TIMER_PREFIX):
            inner_actions = self.engine.on_timeout(timer_id[len(_ENGINE_TIMER_PREFIX) :])
            return self._wrap_engine_actions(inner_actions)
        return []

    # -- dissemination ---------------------------------------------------------------
    def _on_document(self, message: ICPSMessage) -> List[Action]:
        payload = message.payload or {}
        document = payload.get("document")
        signature = payload.get("signature")
        if not isinstance(document, Document) or not isinstance(signature, Signature):
            return []
        newly_received = self.tracker.document_of(message.sender) is None
        accepted = self.tracker.record_document(message.sender, document, signature)
        actions: List[Action] = []
        if accepted and newly_received and self._proposal_sent and not self.agreed:
            # The paper re-sends proposals at the start of every view so that
            # late-arriving documents still make it into the digest vector; we
            # achieve the same by broadcasting an updated proposal whenever a
            # new document arrives after our first proposal went out.
            actions.extend(self._broadcast_proposal())
        actions.extend(self._maybe_send_proposal())
        actions.extend(self._maybe_complete_output())
        return actions

    def _broadcast_proposal(self) -> List[Action]:
        proposal = self.tracker.make_proposal()
        self.tracker.record_proposal(proposal)
        actions: List[Action] = [
            BroadcastAction(
                ICPSMessage(msg_type="PROPOSAL", sender=self.config.node_id, payload=proposal)
            )
        ]
        actions.extend(self._maybe_feed_engine())
        return actions

    def _maybe_send_proposal(self) -> List[Action]:
        if self._proposal_sent:
            return []
        ready = self.tracker.has_all_documents() or (
            self._delta_expired and self.tracker.has_quorum_of_documents()
        )
        if not ready:
            return []
        self._proposal_sent = True
        return self._broadcast_proposal()

    def _on_proposal(self, message: ICPSMessage) -> List[Action]:
        proposal = message.payload
        if not isinstance(proposal, ProposalMessage) or proposal.proposer != message.sender:
            return []
        if not self.tracker.record_proposal(proposal):
            return []
        return self._maybe_feed_engine()

    def _maybe_feed_engine(self) -> List[Action]:
        if self._engine_input_set:
            return []
        value = self.tracker.try_build_digest_vector()
        if value is None:
            return []
        self._engine_input_set = True
        return self._wrap_engine_actions(self.engine.set_input(value))

    # -- agreement ----------------------------------------------------------------------
    def _on_agreement(self, message: ICPSMessage) -> List[Action]:
        inner = message.payload
        if not isinstance(inner, ConsensusMessage):
            return []
        return self._wrap_engine_actions(self.engine.on_message(inner))

    def _wrap_engine_actions(self, actions: List[Action]) -> List[Action]:
        wrapped: List[Action] = []
        pending_loopback: List[ConsensusMessage] = []
        for action in actions:
            if isinstance(action, SendAction):
                if action.to == self.config.node_id:
                    pending_loopback.append(action.message)
                else:
                    wrapped.append(
                        SendAction(
                            to=action.to,
                            message=ICPSMessage(
                                msg_type="AGREEMENT",
                                sender=self.config.node_id,
                                payload=action.message,
                            ),
                        )
                    )
            elif isinstance(action, BroadcastAction):
                wrapped.append(
                    BroadcastAction(
                        ICPSMessage(
                            msg_type="AGREEMENT",
                            sender=self.config.node_id,
                            payload=action.message,
                        )
                    )
                )
                pending_loopback.append(action.message)
            elif isinstance(action, SetTimerAction):
                wrapped.append(
                    SetTimerAction(
                        timer_id=_ENGINE_TIMER_PREFIX + action.timer_id,
                        duration=action.duration,
                    )
                )
            elif isinstance(action, DecideAction):
                wrapped.extend(self._on_agreement_decision(action))
        # Deliver the engine's own broadcasts back to itself (hosts never
        # loop ICPS broadcasts back to the sender).
        for inner in pending_loopback:
            wrapped.extend(self._wrap_engine_actions(self.engine.on_message(inner)))
        return wrapped

    def _on_agreement_decision(self, action: DecideAction) -> List[Action]:
        value = action.value
        if not isinstance(value, DigestVectorValue) or self._agreed_vector is not None:
            return []
        self._agreed_vector = value
        actions = self._maybe_complete_output()
        if self._output is None:
            actions.extend(self._request_missing_documents())
        return actions

    # -- aggregation --------------------------------------------------------------------------
    def _missing_documents(self) -> List[str]:
        if self._agreed_vector is None:
            return []
        missing = []
        for subject, digest in self._agreed_vector.digests().items():
            if digest is None:
                continue
            document = self.tracker.document_of(subject)
            if document is None or document.digest() != digest:
                missing.append(subject)
        return missing

    def _request_missing_documents(self) -> List[Action]:
        if self._output is not None:
            return []
        missing = self._missing_documents()
        if not missing:
            return self._maybe_complete_output()
        self._fetch_outstanding = tuple(missing)
        return [
            BroadcastAction(
                ICPSMessage(
                    msg_type="FETCH_REQUEST",
                    sender=self.config.node_id,
                    payload=tuple(missing),
                )
            ),
            SetTimerAction(timer_id=FETCH_RETRY_TIMER, duration=self.config.fetch_retry_interval),
        ]

    def _on_fetch_request(self, message: ICPSMessage) -> List[Action]:
        requested = message.payload or ()
        available: Dict[str, Document] = {}
        for subject in requested:
            if subject not in self.config.nodes:
                continue
            document = self.tracker.document_of(subject)
            if document is not None:
                available[subject] = document
        if not available:
            return []
        return [
            SendAction(
                to=message.sender,
                message=ICPSMessage(
                    msg_type="FETCH_RESPONSE",
                    sender=self.config.node_id,
                    payload=available,
                ),
            )
        ]

    def _on_fetch_response(self, message: ICPSMessage) -> List[Action]:
        if self._agreed_vector is None or self._output is not None:
            return []
        documents = message.payload or {}
        expected = self._agreed_vector.digests()
        for subject, document in documents.items():
            if subject not in self.config.nodes or not isinstance(document, Document):
                continue
            digest = expected.get(subject)
            if digest is None or document.digest() != digest:
                continue
            # Store the fetched document; the claim signature is not needed
            # because the agreed digest vector already vouches for the digest.
            state = self.tracker._subjects[subject]
            state.document = document
            if state.digest is None:
                state.digest = digest
        return self._maybe_complete_output()

    def _maybe_complete_output(self) -> List[Action]:
        if self._output is not None or self._agreed_vector is None:
            return []
        if self._missing_documents():
            return []
        documents: Dict[str, Optional[Document]] = {}
        for subject, digest in self._agreed_vector.digests().items():
            documents[subject] = self.tracker.document_of(subject) if digest is not None else None
        self._output = ICPSOutput(
            node_id=self.config.node_id,
            documents=documents,
            agreed_vector=self._agreed_vector,
            decided_view=self.engine.decision_view or 0,
        )
        return [DecideAction(value=self._output, view=self._output.decided_view)]
