"""Documents disseminated by the ICPS protocol.

The ICPS protocol is generic over document contents: for the Tor directory
protocol the document is an authority's serialised vote, but the protocol
itself only needs bytes, a digest, and a size.  :class:`Document` packages
those, keeping the core protocol decoupled from :mod:`repro.directory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.digest import sha256_digest
from repro.utils.memo import instance_memo
from repro.utils.validation import ensure


@dataclass(frozen=True)
class Document:
    """An opaque document with a stable digest.

    Attributes
    ----------
    data:
        The document bytes (e.g. a serialised vote).
    label:
        Optional human-readable label used in traces.
    payload:
        Optional decoded object carried alongside the bytes (e.g. the
        :class:`~repro.directory.vote.VoteDocument` the bytes serialise).  It
        stands in for re-parsing the bytes on the receiving side and does not
        participate in equality or the digest.
    size_override:
        Optional wire size to report instead of ``len(data)``.  Large-scale
        benchmarks use it to model full-size votes while keeping a reduced
        relay sample as content (see DESIGN-calibration.md).
    """

    data: bytes
    label: str = ""
    payload: object = field(default=None, compare=False, repr=False)
    size_override: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        ensure(isinstance(self.data, bytes), "document data must be bytes")
        ensure(self.size_override >= 0, "size_override must be non-negative")

    @classmethod
    def from_text(cls, text: str, label: str = "") -> "Document":
        """Build a document from text content."""
        return cls(data=text.encode("utf-8"), label=label)

    @property
    def size_bytes(self) -> int:
        """Wire size of the document."""
        if self.size_override:
            return self.size_override
        return len(self.data)

    def digest(self) -> bytes:
        """SHA-256 digest of the document bytes.

        Memoized: the dataclass is frozen, and dissemination verifies the
        digest of the same document once per claim/proposal/fetch per peer,
        so identical bytes are hashed once instead of O(n²) times per round.
        """
        return instance_memo(self, "_digest", lambda: sha256_digest(self.data))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "Document(label=%r, size=%d)" % (self.label, self.size_bytes)
