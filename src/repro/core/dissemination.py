"""Dissemination sub-protocol state (Section 5.2.1).

:class:`DisseminationTracker` holds one node's dissemination state: the
documents and digest claims it received, any equivocation evidence it
collected, and the proposals other nodes sent.  It produces the node's own
:class:`~repro.core.proofs.ProposalMessage` and — when the node acts as a
view leader — the digest vector ``(H, π)`` fed into the agreement
sub-protocol via :func:`build_digest_vector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.documents import Document
from repro.core.proofs import (
    DigestVectorValue,
    EntryProof,
    ProposalEntry,
    ProposalMessage,
    sign_claim,
    validate_proposal,
    verify_claim,
)
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import Signature
from repro.utils.validation import ensure


@dataclass
class _SubjectState:
    """Everything one node knows about another node's document."""

    document: Optional[Document] = None
    digest: Optional[bytes] = None
    signature: Optional[Signature] = None
    # Conflicting (digest, signature) pairs observed for this subject.
    conflicts: List[Tuple[bytes, Signature]] = field(default_factory=list)

    @property
    def equivocated(self) -> bool:
        """True when two different validly signed digests were observed."""
        digests = {digest for digest, _sig in self.conflicts}
        if self.digest is not None:
            digests.add(self.digest)
        return len(digests) >= 2


class DisseminationTracker:
    """One node's view of the dissemination sub-protocol."""

    def __init__(
        self,
        node_id: str,
        nodes: Sequence[str],
        f: int,
        ring: KeyRing,
        keypair: KeyPair,
    ) -> None:
        ensure(node_id in nodes, "node_id must be one of nodes")
        ensure(f >= 0, "f must be non-negative")
        ensure(len(nodes) >= 3 * f + 1, "ICPS requires n >= 3f + 1")
        self.node_id = node_id
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.f = f
        self.ring = ring
        self.keypair = keypair
        self._subjects: Dict[str, _SubjectState] = {name: _SubjectState() for name in self.nodes}
        self._proposals: Dict[str, ProposalMessage] = {}

    # -- documents -------------------------------------------------------------
    def record_own_document(self, document: Document) -> Signature:
        """Store this node's own document and return the signed claim to broadcast."""
        digest = document.digest()
        signature = sign_claim(self.keypair, self.node_id, digest)
        state = self._subjects[self.node_id]
        state.document = document
        state.digest = digest
        state.signature = signature
        return signature

    def record_document(self, sender: str, document: Document, signature: Signature) -> bool:
        """Record a DOCUMENT message.  Returns True when accepted.

        Rejects unknown senders and invalid signatures; detects equivocation
        when the sender previously claimed a different digest.
        """
        if sender not in self._subjects:
            return False
        digest = document.digest()
        if signature.signer != sender:
            return False
        if not verify_claim(self.ring, signature, sender, digest):
            return False
        state = self._subjects[sender]
        if state.digest is not None and state.digest != digest:
            state.conflicts.append((digest, signature))
            return False
        if state.digest is None:
            state.digest = digest
            state.signature = signature
        state.document = document
        return True

    def record_claim(self, subject: str, digest: Optional[bytes], signature: Signature) -> None:
        """Record a digest claim seen inside someone else's proposal.

        Claims carry the subject's own signature, so a claim for a digest that
        differs from what we saw directly is evidence of equivocation.
        """
        if subject not in self._subjects or digest is None:
            return
        if not verify_claim(self.ring, signature, subject, digest):
            return
        state = self._subjects[subject]
        if state.digest is None:
            # We learn the subject's digest (but not the document itself).
            state.digest = digest
            state.signature = signature
        elif state.digest != digest:
            state.conflicts.append((digest, signature))

    def document_of(self, subject: str) -> Optional[Document]:
        """The full document received from ``subject`` (None if not yet received)."""
        return self._subjects[subject].document

    def digest_claim_of(self, subject: str) -> Tuple[Optional[bytes], Optional[Signature]]:
        """The digest and subject signature recorded for ``subject``."""
        state = self._subjects[subject]
        return state.digest, state.signature

    @property
    def received_document_count(self) -> int:
        """Number of full documents received (including our own)."""
        return sum(1 for state in self._subjects.values() if state.document is not None)

    def has_all_documents(self) -> bool:
        """True when every node's document has been received."""
        return self.received_document_count == len(self.nodes)

    def has_quorum_of_documents(self) -> bool:
        """True when at least ``n - f`` documents have been received."""
        return self.received_document_count >= len(self.nodes) - self.f

    # -- proposals ------------------------------------------------------------
    def make_proposal(self) -> ProposalMessage:
        """Create this node's proposal ``P_i`` over its current document set."""
        entries: List[ProposalEntry] = []
        for subject in self.nodes:
            state = self._subjects[subject]
            if state.document is not None and state.digest is not None:
                entries.append(
                    ProposalEntry(
                        subject=subject,
                        digest=state.digest,
                        subject_signature=state.signature,
                        proposer_signature=sign_claim(self.keypair, subject, state.digest),
                    )
                )
            else:
                entries.append(
                    ProposalEntry(
                        subject=subject,
                        digest=None,
                        subject_signature=None,
                        proposer_signature=sign_claim(self.keypair, subject, None),
                    )
                )
        return ProposalMessage(proposer=self.node_id, entries=tuple(entries))

    def record_proposal(self, proposal: ProposalMessage) -> bool:
        """Validate and store a proposal from another node."""
        if proposal.proposer not in self._subjects:
            return False
        if not validate_proposal(proposal, self.ring, self.nodes, self.f):
            return False
        self._proposals[proposal.proposer] = proposal
        # Mine the proposal's claims for equivocation evidence and digests.
        for entry in proposal.entries:
            if entry.digest is not None and entry.subject_signature is not None:
                self.record_claim(entry.subject, entry.digest, entry.subject_signature)
        return True

    @property
    def proposal_count(self) -> int:
        """Number of valid proposals recorded (including our own, if recorded)."""
        return len(self._proposals)

    def proposals(self) -> Dict[str, ProposalMessage]:
        """The recorded proposals keyed by proposer."""
        return dict(self._proposals)

    # -- digest-vector construction (the leader's job) ---------------------------
    def equivocation_proof(self, subject: str) -> Optional[EntryProof]:
        """Build an equivocation proof for ``subject`` if evidence exists."""
        state = self._subjects[subject]
        if not state.equivocated:
            return None
        pairs: List[Tuple[bytes, Signature]] = []
        if state.digest is not None and state.signature is not None:
            pairs.append((state.digest, state.signature))
        pairs.extend(state.conflicts)
        # Pick two entries with different digests.
        for index, (digest_a, sig_a) in enumerate(pairs):
            for digest_b, sig_b in pairs[index + 1 :]:
                if digest_a != digest_b:
                    return EntryProof(
                        kind="equivocation",
                        signatures=(sig_a, sig_b),
                        conflicting_digests=(digest_a, digest_b),
                    )
        return None

    def try_build_digest_vector(self) -> Optional[DigestVectorValue]:
        """Attempt to build a ready ``(H, π)`` from the proposals collected so far.

        Returns None until (a) at least ``n - f`` proposals are available and
        (b) the resulting vector has at least ``n - f`` non-⊥ entries.
        """
        quorum = len(self.nodes) - self.f
        if len(self._proposals) < quorum:
            return None

        entries: List[Tuple[str, Optional[bytes], EntryProof]] = []
        for subject in self.nodes:
            entry = self._resolve_subject(subject)
            if entry is None:
                return None
            entries.append(entry)

        value = DigestVectorValue(leader=self.node_id, entries=tuple(entries))
        if value.non_bottom_count < quorum:
            return None
        return value

    def _resolve_subject(self, subject: str) -> Optional[Tuple[str, Optional[bytes], EntryProof]]:
        """Resolve one subject into an (subject, digest, proof) entry, or None."""
        threshold = self.f + 1

        equivocation = self.equivocation_proof(subject)
        if equivocation is not None:
            return (subject, None, equivocation)

        by_digest: Dict[Optional[bytes], List[Signature]] = {}
        for proposal in self._proposals.values():
            entry = proposal.entry_for(subject)
            if entry is None:
                continue
            by_digest.setdefault(entry.digest, []).append(entry.proposer_signature)

        for digest, claims in by_digest.items():
            if digest is None:
                continue
            if len(claims) >= threshold:
                return (subject, digest, EntryProof(kind="ok", signatures=tuple(claims[:threshold])))

        bottom_claims = by_digest.get(None, [])
        if len(bottom_claims) >= threshold:
            return (subject, None, EntryProof(kind="timeout", signatures=tuple(bottom_claims[:threshold])))
        return None


def build_digest_vector(tracker: DisseminationTracker) -> Optional[DigestVectorValue]:
    """Functional wrapper over :meth:`DisseminationTracker.try_build_digest_vector`."""
    return tracker.try_build_digest_vector()
