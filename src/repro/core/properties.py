"""Property checkers for Interactive Consistency under Partial Synchrony.

Definition 5.1 of the paper lists four properties.  These helpers check them
over the outputs of a (simulated or driver-based) protocol run and are used
by the unit, integration, and property-based tests as the single source of
truth for "did the protocol behave correctly".
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.core.documents import Document
from repro.core.icps import ICPSOutput


def check_termination(
    outputs: Mapping[str, Optional[ICPSOutput]],
    correct_nodes: Sequence[str],
) -> bool:
    """Termination: every correct node produced an output."""
    return all(outputs.get(node) is not None for node in correct_nodes)


def check_agreement(
    outputs: Mapping[str, Optional[ICPSOutput]],
    correct_nodes: Sequence[str],
) -> bool:
    """Agreement: all correct nodes output the same vector.

    Vectors are compared entry by entry on document *bytes* (⊥ compares equal
    to ⊥ only), which is stricter than comparing digests.
    """
    decided = [outputs[node] for node in correct_nodes if outputs.get(node) is not None]
    if len(decided) <= 1:
        return True
    reference = decided[0]
    for output in decided[1:]:
        if set(output.documents) != set(reference.documents):
            return False
        for subject, document in reference.documents.items():
            other = output.documents[subject]
            if (document is None) != (other is None):
                return False
            if document is not None and other is not None and document.data != other.data:
                return False
    return True


def check_value_validity(
    outputs: Mapping[str, Optional[ICPSOutput]],
    inputs: Mapping[str, Document],
    correct_nodes: Sequence[str],
    gst_zero: bool,
) -> bool:
    """Value validity: a correct node's own entry is its input or ⊥.

    When GST is zero (the network never lost synchrony) the entry must be the
    node's input, for *every* correct node's entry in *every* correct output.
    """
    for node in correct_nodes:
        output = outputs.get(node)
        if output is None:
            continue
        for subject in correct_nodes:
            entry = output.document_of(subject)
            expected = inputs.get(subject)
            if entry is not None and expected is not None and entry.data != expected.data:
                return False
            if gst_zero and entry is None:
                return False
    return True


def check_common_set_validity(
    outputs: Mapping[str, Optional[ICPSOutput]],
    correct_nodes: Sequence[str],
    n: int,
    f: int,
) -> bool:
    """Common-set validity: every correct output has at least ``n - f`` entries."""
    for node in correct_nodes:
        output = outputs.get(node)
        if output is None:
            continue
        if output.non_bottom_count < n - f:
            return False
    return True


def check_all_properties(
    outputs: Mapping[str, Optional[ICPSOutput]],
    inputs: Mapping[str, Document],
    correct_nodes: Sequence[str],
    n: int,
    f: int,
    gst_zero: bool,
) -> Dict[str, bool]:
    """Run all four checks and return a name → result mapping."""
    return {
        "termination": check_termination(outputs, correct_nodes),
        "agreement": check_agreement(outputs, correct_nodes),
        "value_validity": check_value_validity(outputs, inputs, correct_nodes, gst_zero),
        "common_set_validity": check_common_set_validity(outputs, correct_nodes, n, f),
    }
