"""Per-authority views of a relay population.

Real directory authorities do not see identical relay populations: a relay's
self-published descriptor may have reached one authority and not another,
reachability tests disagree, and only bandwidth authorities attach measured
bandwidths.  Those disagreements are exactly what makes the Figure-2
aggregation algorithm non-trivial, so the vote generator models them:

* each authority *misses* a small fraction of relays entirely,
* each authority flips Running/Stable/Guard flags on a small fraction,
* bandwidth authorities attach noisy measured bandwidths,
* a small fraction of nicknames disagree (exercising the largest-authority-ID
  rule).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.directory.authority import DirectoryAuthority
from repro.directory.relay import Relay, RelayFlag
from repro.directory.vote import VoteDocument
from repro.netgen.relaygen import RelayPopulation
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import ensure


@dataclass(frozen=True)
class AuthorityViewConfig:
    """Controls how much authorities' views disagree."""

    miss_probability: float = 0.01
    flag_flip_probability: float = 0.03
    nickname_disagreement_probability: float = 0.002
    measurement_noise: float = 0.10
    seed: int = 11

    def __post_init__(self) -> None:
        for name in (
            "miss_probability",
            "flag_flip_probability",
            "nickname_disagreement_probability",
        ):
            value = getattr(self, name)
            ensure(0.0 <= value <= 1.0, "%s must be within [0, 1]" % name)
        ensure(self.measurement_noise >= 0.0, "measurement_noise must be non-negative")


def _perturb_flags(rng: DeterministicRNG, relay: Relay, config: AuthorityViewConfig) -> Relay:
    flags = set(relay.flags)
    for flag in (RelayFlag.RUNNING, RelayFlag.STABLE, RelayFlag.GUARD, RelayFlag.FAST):
        if rng.bernoulli(config.flag_flip_probability):
            if flag in flags:
                flags.discard(flag)
            else:
                flags.add(flag)
    return relay.with_flags(frozenset(flags))


def _authority_entry(
    rng: DeterministicRNG,
    relay: Relay,
    authority: DirectoryAuthority,
    config: AuthorityViewConfig,
) -> Relay:
    entry = _perturb_flags(rng, relay, config)
    if rng.bernoulli(config.nickname_disagreement_probability):
        entry = replace(entry, nickname=relay.nickname + "x")
    if authority.is_bandwidth_authority:
        noise = 1.0 + rng.uniform(-config.measurement_noise, config.measurement_noise)
        entry = entry.with_bandwidth(max(1, int(relay.bandwidth * noise)), measured=True)
    return entry


def generate_authority_votes(
    population: RelayPopulation,
    authorities: Sequence[DirectoryAuthority],
    config: AuthorityViewConfig = AuthorityViewConfig(),
    valid_after: float = 0.0,
    voting_interval: float = 3600.0,
    padded_relay_count: "Optional[int]" = None,
) -> Dict[int, VoteDocument]:
    """Generate one vote per authority over ``population``.

    Returns a mapping from authority ID to that authority's
    :class:`~repro.directory.vote.VoteDocument`.  ``padded_relay_count``
    makes each vote report the wire size of a vote covering that many relays
    (used by large parameter sweeps that materialise only a relay sample).
    """
    ensure(len(authorities) > 0, "need at least one authority")
    votes: Dict[int, VoteDocument] = {}
    base_rng = DeterministicRNG(config.seed).child("authority-views")
    for authority in authorities:
        auth_rng = base_rng.child(authority.authority_id)
        entries: List[Relay] = []
        for index, relay in enumerate(population.relays):
            relay_rng = auth_rng.child(index)
            if relay_rng.bernoulli(config.miss_probability):
                continue
            entries.append(_authority_entry(relay_rng, relay, authority, config))
        votes[authority.authority_id] = VoteDocument.from_relays(
            authority_id=authority.authority_id,
            authority_fingerprint=authority.fingerprint,
            relays=entries,
            valid_after=valid_after,
            voting_interval=voting_interval,
            padded_relay_count=padded_relay_count,
        )
    return votes
