"""Synthetic Tor network generation (the tornettools / Tor-Metrics substitute).

The paper derives its workloads from two data sources we do not have access
to in an offline reproduction:

* **tornettools** private-Tor-network configurations, which determine how
  many relays each authority knows about and with what attributes, and
* **Tor Metrics** relay-count history (Figure 6), which motivates the sweep
  over 1,000–10,000 relays.

This sub-package replaces both with seeded synthetic generators that preserve
the properties the experiments actually depend on: the number of relays, the
per-relay vote-entry size, realistic attribute distributions for the
aggregation algorithm, and per-authority *views* that differ slightly (an
authority may have missed a relay or measured a different bandwidth), which
is what makes aggregation non-trivial.
"""

from repro.netgen.relaygen import RelayPopulation, RelayPopulationConfig, generate_population
from repro.netgen.views import AuthorityViewConfig, generate_authority_votes
from repro.netgen.metrics import RelayCountSeries, TOR_METRICS_AVERAGE, synthesize_relay_counts
from repro.netgen.topology_gen import AuthorityTopology, generate_topology

__all__ = [
    "RelayPopulation",
    "RelayPopulationConfig",
    "generate_population",
    "AuthorityViewConfig",
    "generate_authority_votes",
    "RelayCountSeries",
    "TOR_METRICS_AVERAGE",
    "synthesize_relay_counts",
    "AuthorityTopology",
    "generate_topology",
]
