"""Authority network topologies.

Shadow (via tornettools) models the authorities as hosts with configurable
link bandwidth and realistic inter-host latencies.  The reproduction models
the same two quantities:

* a per-authority **link capacity** (the paper cites ~250 Mbit/s for live
  authorities and sweeps lower values to model DDoS throttling), and
* a pairwise **propagation latency** matrix drawn from realistic wide-area
  values (tens of milliseconds), since the nine live authorities are spread
  across Europe and North America.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.directory.authority import DirectoryAuthority
from repro.utils.rng import DeterministicRNG
from repro.utils.units import Bandwidth
from repro.utils.validation import ensure

#: Link capacity of a live directory authority (Mbit/s), per the paper.
DEFAULT_AUTHORITY_BANDWIDTH_MBPS = 250.0


@dataclass
class AuthorityTopology:
    """Bandwidths and latencies for a set of authorities."""

    authorities: List[DirectoryAuthority]
    bandwidth_mbps: Dict[int, float]
    latency_seconds: Dict[Tuple[int, int], float]

    def bandwidth_of(self, authority_id: int) -> Bandwidth:
        """Link capacity of one authority."""
        return Bandwidth.from_mbps(self.bandwidth_mbps[authority_id])

    def latency_between(self, a: int, b: int) -> float:
        """One-way propagation latency between two authorities (seconds)."""
        if a == b:
            return 0.0
        key = (min(a, b), max(a, b))
        return self.latency_seconds[key]

    def region_of(self, authority_id: int, region_count: int) -> int:
        """The authority's region under a ``region_count``-way partitioning.

        Regions model the geographic clusters the live authorities sit in
        (Europe / North America) and are what the partition-parallel
        transport engine partitions by: the rule is the stable round-robin
        ``authority_id mod region_count``, which
        :func:`repro.simnet.partition.region_of_name` reproduces from node
        names alone — the two layers agree on regions without the transport
        ever seeing a topology object.
        """
        ensure(region_count >= 1, "region count must be at least 1")
        return authority_id % region_count

    def min_cross_region_latency(self, region_count: int) -> float:
        """Minimum pairwise latency between authorities in different regions.

        The conservative lookahead of the partition-parallel engine's
        boundary channels; ``inf`` when every authority shares one region.
        """
        bound = float("inf")
        ids = [auth.authority_id for auth in self.authorities]
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if self.region_of(a, region_count) != self.region_of(b, region_count):
                    latency = self.latency_between(a, b)
                    if latency < bound:
                        bound = latency
        return bound

    def with_uniform_bandwidth(self, mbps: float) -> "AuthorityTopology":
        """Return a copy where every authority has the same link capacity."""
        ensure(mbps >= 0, "bandwidth must be non-negative")
        return AuthorityTopology(
            authorities=list(self.authorities),
            bandwidth_mbps={auth.authority_id: float(mbps) for auth in self.authorities},
            latency_seconds=dict(self.latency_seconds),
        )


def generate_topology(
    authorities: Sequence[DirectoryAuthority],
    bandwidth_mbps: float = DEFAULT_AUTHORITY_BANDWIDTH_MBPS,
    min_latency_s: float = 0.02,
    max_latency_s: float = 0.12,
    seed: int = 3,
) -> AuthorityTopology:
    """Generate a topology with uniform bandwidth and random pairwise latency."""
    ensure(len(authorities) >= 1, "need at least one authority")
    ensure(max_latency_s >= min_latency_s, "max latency must be >= min latency")
    rng = DeterministicRNG(seed).child("topology")
    latency: Dict[Tuple[int, int], float] = {}
    ids = [auth.authority_id for auth in authorities]
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            latency[(min(a, b), max(a, b))] = rng.uniform(min_latency_s, max_latency_s)
    return AuthorityTopology(
        authorities=list(authorities),
        bandwidth_mbps={auth.authority_id: float(bandwidth_mbps) for auth in authorities},
        latency_seconds=latency,
    )
