"""Synthetic Tor-Metrics relay-count history (Figure 6).

Figure 6 of the paper plots the number of Tor relays from September 2022 to
October 2024 (Tor Metrics data) and reports an average of **7141.79** relays.
Tor Metrics is an online service, so the reproduction synthesises a daily
series with the same qualitative shape — a dip in early 2023, growth through
2023, a plateau around 8,000 in 2024 — and, by construction, the same
average.  The synthesis is deterministic and the normalisation step makes the
mean match the published average exactly (up to floating point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, timedelta
from typing import List, Tuple

from repro.utils.rng import DeterministicRNG
from repro.utils.validation import ensure

#: The average relay count the paper reports for Figure 6.
TOR_METRICS_AVERAGE = 7141.79

#: Span covered by Figure 6.
FIGURE6_START = date(2022, 9, 1)
FIGURE6_END = date(2024, 10, 31)


@dataclass(frozen=True)
class RelayCountSeries:
    """A daily relay-count time series."""

    dates: Tuple[date, ...]
    counts: Tuple[float, ...]

    def __post_init__(self) -> None:
        ensure(len(self.dates) == len(self.counts), "dates and counts must have equal length")
        ensure(len(self.dates) > 0, "series must not be empty")

    @property
    def average(self) -> float:
        """Mean relay count over the whole series."""
        return sum(self.counts) / len(self.counts)

    @property
    def minimum(self) -> float:
        """Smallest daily relay count."""
        return min(self.counts)

    @property
    def maximum(self) -> float:
        """Largest daily relay count."""
        return max(self.counts)

    def monthly_averages(self) -> List[Tuple[str, float]]:
        """Average count per calendar month, as ``(\"YYYY-MM\", value)`` rows."""
        buckets: dict = {}
        for day, count in zip(self.dates, self.counts):
            key = "%04d-%02d" % (day.year, day.month)
            buckets.setdefault(key, []).append(count)
        return [(key, sum(values) / len(values)) for key, values in sorted(buckets.items())]


def _shape(day_index: int, total_days: int) -> float:
    """Unit-less trend shape for the Figure 6 window.

    Starts around 1.0, dips ~12% in the first quarter (the late-2022/early-2023
    relay-count decline), then grows to ~1.15 and plateaus — mirroring the
    qualitative shape of the published plot.
    """
    x = day_index / max(1, total_days - 1)
    dip = -0.12 * math.exp(-((x - 0.18) ** 2) / 0.008)
    growth = 0.18 / (1.0 + math.exp(-(x - 0.55) * 12.0))
    seasonal = 0.015 * math.sin(2 * math.pi * x * 4.0)
    return 1.0 + dip + growth + seasonal


def synthesize_relay_counts(
    start: date = FIGURE6_START,
    end: date = FIGURE6_END,
    target_average: float = TOR_METRICS_AVERAGE,
    noise: float = 0.01,
    seed: int = 2022,
) -> RelayCountSeries:
    """Create a daily relay-count series whose mean equals ``target_average``."""
    ensure(end > start, "end date must be after start date")
    ensure(target_average > 0, "target_average must be positive")
    total_days = (end - start).days + 1
    rng = DeterministicRNG(seed).child("tor-metrics")

    dates: List[date] = []
    raw: List[float] = []
    for day_index in range(total_days):
        day = start + timedelta(days=day_index)
        jitter = 1.0 + rng.gauss(0.0, noise)
        dates.append(day)
        raw.append(_shape(day_index, total_days) * jitter)

    scale = target_average / (sum(raw) / len(raw))
    counts = tuple(value * scale for value in raw)
    return RelayCountSeries(dates=tuple(dates), counts=counts)
