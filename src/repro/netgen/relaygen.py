"""Synthetic relay population generator.

Creates a population of :class:`~repro.directory.relay.Relay` entries with
attribute distributions loosely matching the live Tor network:

* roughly 15% of relays are exits, 40% guards, nearly all Running/Valid,
* bandwidths follow a log-normal distribution (most relays are slow, a few
  are very fast),
* a handful of Tor versions are in circulation at any time,
* exit policies come from a small set of common summaries.

The absolute values do not need to match Tor Metrics — only the *sizes* of
the resulting vote entries and the fact that attribute disagreement between
authorities exercises every branch of the aggregation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.directory.relay import ExitPolicySummary, Relay, RelayFlag
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import ensure

#: Tor versions commonly seen on the network, oldest to newest.
COMMON_VERSIONS: Tuple[str, ...] = (
    "Tor 0.4.7.16",
    "Tor 0.4.8.10",
    "Tor 0.4.8.12",
    "Tor 0.4.8.13",
)

#: Exit-policy summaries commonly seen on the network.
COMMON_EXIT_POLICIES: Tuple[ExitPolicySummary, ...] = (
    ExitPolicySummary(accept=True, ports="80,443"),
    ExitPolicySummary(accept=True, ports="20-23,43,53,79-81,443,8080"),
    ExitPolicySummary(accept=False, ports="25,119,135-139,445,563"),
    ExitPolicySummary(accept=False, ports="1-65535"),
)


@dataclass(frozen=True)
class RelayPopulationConfig:
    """Configuration for :func:`generate_population`."""

    relay_count: int = 8000
    exit_fraction: float = 0.15
    guard_fraction: float = 0.40
    fast_fraction: float = 0.80
    stable_fraction: float = 0.55
    hsdir_fraction: float = 0.50
    running_fraction: float = 0.97
    bandwidth_lognormal_mu: float = 8.0
    bandwidth_lognormal_sigma: float = 1.4
    seed: int = 1

    def __post_init__(self) -> None:
        ensure(self.relay_count >= 0, "relay_count must be non-negative")
        for name in (
            "exit_fraction",
            "guard_fraction",
            "fast_fraction",
            "stable_fraction",
            "hsdir_fraction",
            "running_fraction",
        ):
            value = getattr(self, name)
            ensure(0.0 <= value <= 1.0, "%s must be within [0, 1]" % name)


@dataclass
class RelayPopulation:
    """A generated relay population (the "ground truth" network)."""

    config: RelayPopulationConfig
    relays: List[Relay]

    @property
    def relay_count(self) -> int:
        """Number of relays in the population."""
        return len(self.relays)

    def total_vote_entry_bytes(self) -> int:
        """Sum of per-relay vote-entry sizes; the dominant part of a vote."""
        return sum(relay.entry_size_bytes for relay in self.relays)

    def average_entry_bytes(self) -> float:
        """Average serialised size of one relay entry."""
        if not self.relays:
            return 0.0
        return self.total_vote_entry_bytes() / len(self.relays)


def _relay_flags(rng: DeterministicRNG, config: RelayPopulationConfig, is_exit: bool) -> frozenset:
    flags = {RelayFlag.VALID}
    if rng.bernoulli(config.running_fraction):
        flags.add(RelayFlag.RUNNING)
    if is_exit:
        flags.add(RelayFlag.EXIT)
    if rng.bernoulli(config.guard_fraction):
        flags.add(RelayFlag.GUARD)
    if rng.bernoulli(config.fast_fraction):
        flags.add(RelayFlag.FAST)
    if rng.bernoulli(config.stable_fraction):
        flags.add(RelayFlag.STABLE)
    if rng.bernoulli(config.hsdir_fraction):
        flags.add(RelayFlag.HSDIR)
    if rng.bernoulli(0.3):
        flags.add(RelayFlag.V2DIR)
    return frozenset(flags)


def generate_population(config: RelayPopulationConfig = RelayPopulationConfig()) -> RelayPopulation:
    """Generate a deterministic relay population from ``config``."""
    rng = DeterministicRNG(config.seed).child("relay-population")
    relays: List[Relay] = []
    for index in range(config.relay_count):
        relay_rng = rng.child(index)
        is_exit = relay_rng.bernoulli(config.exit_fraction)
        bandwidth = max(
            20,
            int(relay_rng.lognormal(config.bandwidth_lognormal_mu, config.bandwidth_lognormal_sigma) / 8),
        )
        relay = Relay(
            fingerprint=relay_rng.hex_string(40),
            nickname="relay%06d" % index,
            address="10.%d.%d.%d"
            % (relay_rng.randint(0, 254), relay_rng.randint(0, 254), relay_rng.randint(1, 254)),
            or_port=relay_rng.choice([443, 9001, 9002, 8443]),
            dir_port=relay_rng.choice([0, 80, 9030]),
            flags=_relay_flags(relay_rng, config, is_exit),
            version=relay_rng.choice(list(COMMON_VERSIONS)),
            exit_policy=relay_rng.choice(list(COMMON_EXIT_POLICIES))
            if is_exit
            else ExitPolicySummary(accept=False, ports="1-65535"),
            bandwidth=bandwidth,
            measured=False,
            descriptor_digest=relay_rng.hex_string(40),
        )
        relays.append(relay)
    return RelayPopulation(config=config, relays=relays)
