"""DDoS attack modelling: bandwidth throttling plans, adversaries, and costs.

Follows the threat model of Section 4: the attacker is an outsider who rents
DDoS-for-hire stressor capacity and floods a majority of the directory
authorities during the protocol's vote rounds.  Per Jansen et al. (and the
paper), a host under volumetric attack is modelled as having its usable
bandwidth reduced to a residual value (0.5 Mbit/s) for the attack window.

* :class:`DDoSAttackPlan` turns "attack these authorities from t₀ for d
  seconds" into per-authority :class:`~repro.simnet.bandwidth.BandwidthSchedule`
  overrides for the simulator.
* :mod:`repro.attack.cost` implements the stressor cost model that produces
  the paper's $0.074-per-instance and $53.28-per-month figures.
* :mod:`repro.attack.adversary` provides Byzantine ICPS participants
  (equivocating, silent, crashing) used by the security test-suite.
"""

from repro.attack.ddos import (
    ATTACK_RESIDUAL_BANDWIDTH_MBPS,
    DDoSAttackPlan,
    majority_attack_plan,
)
from repro.attack.cost import AttackCostModel, AttackCostEstimate
from repro.attack.adversary import (
    CrashingICPSAdversary,
    EquivocatingICPSAdversary,
    SilentICPSAdversary,
)

__all__ = [
    "ATTACK_RESIDUAL_BANDWIDTH_MBPS",
    "DDoSAttackPlan",
    "majority_attack_plan",
    "AttackCostModel",
    "AttackCostEstimate",
    "CrashingICPSAdversary",
    "EquivocatingICPSAdversary",
    "SilentICPSAdversary",
]
