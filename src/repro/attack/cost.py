"""The stressor-service cost model (Section 4.3).

The paper derives its headline number — "$53.28 per month to keep Tor down" —
from three inputs taken from prior measurements:

* an authority link capacity of 250 Mbit/s,
* a protocol bandwidth requirement of ~10 Mbit/s for ~8,000 relays, so the
  attacker must generate 240 Mbit/s of flood traffic per target, and
* an amortised stressor price of $0.00074 per Mbit/s of attack traffic per
  hour (Jansen et al.).

With 5 targets flooded for 5 minutes per hourly consensus run, one disrupted
run costs ≈ $0.074 and a month of hourly disruptions ≈ $53.28.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure

#: Amortised stressor cost per Mbit/s of attack traffic per hour (USD).
JANSEN_COST_PER_MBPS_HOUR = 0.00074

#: Hours per month used by the paper's monthly extrapolation (30 days).
HOURS_PER_MONTH = 24 * 30


@dataclass(frozen=True)
class AttackCostEstimate:
    """Cost breakdown for a sustained directory-protocol DDoS campaign."""

    traffic_per_target_mbps: float
    targets: int
    attack_seconds_per_run: float
    runs_per_month: int
    cost_per_run_usd: float
    cost_per_day_usd: float
    cost_per_month_usd: float


@dataclass(frozen=True)
class AttackCostModel:
    """Parameters of the stressor cost calculation."""

    authority_link_mbps: float = 250.0
    required_bandwidth_mbps: float = 10.0
    cost_per_mbps_hour_usd: float = JANSEN_COST_PER_MBPS_HOUR
    targets: int = 5
    attack_seconds_per_run: float = 300.0
    runs_per_hour: int = 1

    def __post_init__(self) -> None:
        ensure(self.authority_link_mbps > 0, "authority link capacity must be positive")
        ensure(self.required_bandwidth_mbps >= 0, "required bandwidth must be non-negative")
        ensure(self.cost_per_mbps_hour_usd >= 0, "cost rate must be non-negative")
        ensure(self.targets >= 1, "attack needs at least one target")
        ensure(self.attack_seconds_per_run > 0, "attack duration must be positive")
        ensure(self.runs_per_hour >= 1, "at least one consensus run per hour")

    @property
    def traffic_per_target_mbps(self) -> float:
        """Flood volume per target needed to deny the protocol its bandwidth."""
        return max(0.0, self.authority_link_mbps - self.required_bandwidth_mbps)

    def cost_per_run(self) -> float:
        """Cost (USD) of disrupting a single consensus run."""
        attack_hours = self.attack_seconds_per_run / 3600.0
        return (
            self.traffic_per_target_mbps
            * self.targets
            * attack_hours
            * self.cost_per_mbps_hour_usd
        )

    def cost_per_day(self) -> float:
        """Cost (USD) of disrupting every consensus run for a day."""
        return self.cost_per_run() * 24 * self.runs_per_hour

    def cost_per_month(self) -> float:
        """Cost (USD) of disrupting every consensus run for a 30-day month."""
        return self.cost_per_run() * HOURS_PER_MONTH * self.runs_per_hour

    def estimate(self) -> AttackCostEstimate:
        """Full cost breakdown."""
        return AttackCostEstimate(
            traffic_per_target_mbps=self.traffic_per_target_mbps,
            targets=self.targets,
            attack_seconds_per_run=self.attack_seconds_per_run,
            runs_per_month=HOURS_PER_MONTH * self.runs_per_hour,
            cost_per_run_usd=self.cost_per_run(),
            cost_per_day_usd=self.cost_per_day(),
            cost_per_month_usd=self.cost_per_month(),
        )
