"""Byzantine participants for the ICPS security tests.

The paper's protocol claims safety with up to ``f < n/3`` Byzantine
authorities.  These adversaries implement the misbehaviours the protocol is
designed to survive, using the same action-based interface as
:class:`~repro.core.icps.ICPSNode`, so they can be dropped into the local
driver next to honest nodes:

* :class:`SilentICPSAdversary` — contributes nothing (models a crashed or
  permanently DDoS-ed authority);
* :class:`EquivocatingICPSAdversary` — sends *different* documents to
  different peers (the equivocation attack of Luo et al.); the dissemination
  proofs turn this into a ⊥ entry backed by an equivocation proof;
* :class:`CrashingICPSAdversary` — behaves honestly for a bounded number of
  steps, then goes silent.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.consensus.interfaces import Action, SendAction
from repro.core.documents import Document
from repro.core.icps import ICPSConfig, ICPSMessage, ICPSNode
from repro.core.proofs import sign_claim
from repro.crypto.keys import KeyPair, KeyRing


class _BaseAdversary:
    """Common plumbing for engine-compatible adversaries."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.decided = False
        self.decision: Any = None
        self.decision_view: Optional[int] = None
        self.output: Any = None

    def start(self, value: Any) -> List[Action]:
        """Called by the driver with the adversary's (ignored) input."""
        return []

    def set_input(self, value: Any) -> List[Action]:
        """Late input is ignored."""
        return []

    def on_message(self, message: Any) -> List[Action]:
        """Incoming messages are ignored."""
        return []

    def on_timeout(self, timer_id: str) -> List[Action]:
        """Timers are ignored."""
        return []


class SilentICPSAdversary(_BaseAdversary):
    """A node that never sends anything."""


class EquivocatingICPSAdversary(_BaseAdversary):
    """A node that tells different peers different documents.

    The first half of the peer list receives ``document_a``; the rest receive
    ``document_b``.  Both documents carry valid signatures, so honest nodes
    that compare notes during the proposal exchange obtain a valid
    equivocation proof and the agreed vector marks this node as ⊥.
    """

    def __init__(
        self,
        node_id: str,
        peers: Sequence[str],
        keypair: KeyPair,
        document_a: Document,
        document_b: Document,
    ) -> None:
        super().__init__(node_id)
        self.peers = [peer for peer in peers if peer != node_id]
        self.keypair = keypair
        self.document_a = document_a
        self.document_b = document_b

    def start(self, value: Any) -> List[Action]:
        actions: List[Action] = []
        half = len(self.peers) // 2
        for index, peer in enumerate(self.peers):
            document = self.document_a if index < half else self.document_b
            signature = sign_claim(self.keypair, self.node_id, document.digest())
            actions.append(
                SendAction(
                    to=peer,
                    message=ICPSMessage(
                        msg_type="DOCUMENT",
                        sender=self.node_id,
                        payload={"document": document, "signature": signature},
                    ),
                )
            )
        return actions


class CrashingICPSAdversary:
    """An honest ICPS node that stops participating after ``crash_after_events`` steps."""

    def __init__(
        self,
        config: ICPSConfig,
        ring: KeyRing,
        keypair: KeyPair,
        crash_after_events: int = 5,
    ) -> None:
        self._inner = ICPSNode(config, ring, keypair)
        self.node_id = config.node_id
        self.crash_after_events = crash_after_events
        self._events = 0

    # -- driver-facing state --------------------------------------------------
    @property
    def decided(self) -> bool:
        """Crashing nodes are not required to decide."""
        return self._inner.decided

    @property
    def decision(self) -> Any:
        return self._inner.decision

    @property
    def decision_view(self) -> Optional[int]:
        return self._inner.decision_view

    @property
    def output(self) -> Any:
        return self._inner.output

    def _gate(self, actions: List[Action]) -> List[Action]:
        self._events += 1
        if self._events > self.crash_after_events:
            return []
        return actions

    def start(self, value: Any) -> List[Action]:
        return self._gate(self._inner.start(value))

    def set_input(self, value: Any) -> List[Action]:
        return self._gate(self._inner.set_input(value))

    def on_message(self, message: Any) -> List[Action]:
        return self._gate(self._inner.on_message(message))

    def on_timeout(self, timer_id: str) -> List[Action]:
        return self._gate(self._inner.on_timeout(timer_id))
