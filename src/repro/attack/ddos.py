"""DDoS attack plans expressed as bandwidth schedules.

The paper's attack needs only three parameters: *which* authorities to flood
(a majority — 5 of 9), *when* (the first two rounds of a consensus run, i.e.
300 seconds), and *how hard* (enough to leave less usable bandwidth than the
directory protocol needs; Jansen et al. measure ~0.5 Mbit/s of residual
capacity on a flooded host).  :class:`DDoSAttackPlan` captures those and
converts them into per-authority bandwidth schedules for the simulator —
either directly (:meth:`DDoSAttackPlan.schedules`) or as declarative
:class:`~repro.runtime.spec.BandwidthOverride` entries
(:meth:`DDoSAttackPlan.bandwidth_overrides`) so an attacked run can be
expressed as a frozen :class:`~repro.runtime.spec.RunSpec` and executed,
cached, and parallelised by the :mod:`repro.runtime` layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.plan import FaultPlan, LinkFault
from repro.runtime.spec import BandwidthOverride
from repro.simnet.bandwidth import BandwidthSchedule
from repro.utils.validation import ensure

#: Residual usable bandwidth of a host under volumetric DDoS (Jansen et al.).
ATTACK_RESIDUAL_BANDWIDTH_MBPS = 0.5

#: Link capacity of a live directory authority (Mbit/s).
DEFAULT_AUTHORITY_LINK_MBPS = 250.0


@dataclass(frozen=True)
class DDoSAttackPlan:
    """A bandwidth-degradation attack against a set of authorities.

    Attributes
    ----------
    target_authority_ids:
        The authorities being flooded.
    start / duration:
        Attack window in simulation seconds.  The paper's headline attack is
        ``start=0, duration=300`` — the two vote rounds.
    residual_bandwidth_mbps:
        Usable bandwidth left to a target during the attack.
    baseline_bandwidth_mbps:
        The targets' normal link capacity outside the attack window.
    """

    target_authority_ids: Tuple[int, ...]
    start: float = 0.0
    duration: float = 300.0
    residual_bandwidth_mbps: float = ATTACK_RESIDUAL_BANDWIDTH_MBPS
    baseline_bandwidth_mbps: float = DEFAULT_AUTHORITY_LINK_MBPS

    def __post_init__(self) -> None:
        ensure(len(self.target_authority_ids) > 0, "attack needs at least one target")
        ensure(self.duration > 0, "attack duration must be positive")
        ensure(self.start >= 0, "attack start must be non-negative")
        ensure(self.residual_bandwidth_mbps >= 0, "residual bandwidth must be non-negative")
        ensure(self.baseline_bandwidth_mbps > 0, "baseline bandwidth must be positive")

    @property
    def end(self) -> float:
        """Time at which the attack stops."""
        return self.start + self.duration

    @property
    def target_count(self) -> int:
        """Number of authorities under attack."""
        return len(self.target_authority_ids)

    def schedule_for_target(self) -> BandwidthSchedule:
        """Bandwidth schedule of one attacked authority."""
        return BandwidthSchedule.constant_mbps(self.baseline_bandwidth_mbps).with_window_mbps(
            self.start, self.end, self.residual_bandwidth_mbps
        )

    def schedules(self) -> Dict[int, BandwidthSchedule]:
        """Per-authority schedule overrides to merge into a scenario."""
        schedule = self.schedule_for_target()
        return {authority_id: schedule for authority_id in self.target_authority_ids}

    def bandwidth_overrides(self) -> Tuple[BandwidthOverride, ...]:
        """This attack as declarative RunSpec bandwidth overrides.

        Attach with ``spec.with_overrides(*plan.bandwidth_overrides())`` to
        get a frozen, cacheable description of the attacked run.
        """
        return tuple(
            BandwidthOverride(
                authority_id=authority_id,
                base_mbps=self.baseline_bandwidth_mbps,
                windows=((self.start, self.end, self.residual_bandwidth_mbps),),
            )
            for authority_id in self.target_authority_ids
        )

    def fault_plan(self, drop_probability: Optional[float] = None) -> FaultPlan:
        """This attack re-expressed as a declarative :class:`FaultPlan`.

        Where :meth:`bandwidth_overrides` models the flood as capacity
        starvation (transfers crawl but survive the window), the fault-plan
        form models it as *packet loss*: a total flood (zero residual
        bandwidth) partitions each target for the attack window, a partial
        flood drops each message within the window with the fraction of
        capacity the flood consumes.  ``drop_probability`` overrides that
        derived loss rate.  Attach with ``spec.with_faults(plan.fault_plan())``;
        both forms are frozen, hashable, and cache-addressable.
        """
        if self.residual_bandwidth_mbps <= 0.0:
            return FaultPlan.partition(self.target_authority_ids, self.start, self.end)
        if drop_probability is None:
            drop_probability = max(
                0.0, 1.0 - self.residual_bandwidth_mbps / self.baseline_bandwidth_mbps
            )
        if drop_probability <= 0.0:  # residual ≥ baseline: the flood is harmless
            return FaultPlan()
        return FaultPlan(
            link_faults=tuple(
                LinkFault(
                    authority_id=authority_id,
                    drop_probability=drop_probability,
                    loss_windows=((self.start, self.end),),
                )
                for authority_id in self.target_authority_ids
            )
        )

    def attack_traffic_mbps(self, required_bandwidth_mbps: float) -> float:
        """Flood volume needed per target to push usable bandwidth below requirement.

        The attacker must consume everything above what the protocol needs:
        ``link - required`` (240 Mbit/s in the paper's running example of a
        250 Mbit/s link and a 10 Mbit/s requirement).
        """
        ensure(required_bandwidth_mbps >= 0, "required bandwidth must be non-negative")
        return max(0.0, self.baseline_bandwidth_mbps - required_bandwidth_mbps)


def majority_attack_plan(
    authority_count: int = 9,
    start: float = 0.0,
    duration: float = 300.0,
    residual_bandwidth_mbps: float = ATTACK_RESIDUAL_BANDWIDTH_MBPS,
    baseline_bandwidth_mbps: float = DEFAULT_AUTHORITY_LINK_MBPS,
) -> DDoSAttackPlan:
    """The paper's attack: flood a bare majority of authorities for ``duration`` s."""
    ensure(authority_count >= 1, "authority_count must be positive")
    majority = authority_count // 2 + 1
    return DDoSAttackPlan(
        target_authority_ids=tuple(range(majority)),
        start=start,
        duration=duration,
        residual_bandwidth_mbps=residual_bandwidth_mbps,
        baseline_bandwidth_mbps=baseline_bandwidth_mbps,
    )
