"""Test package."""
