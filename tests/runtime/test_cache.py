"""ResultCache tests: hit/miss round-trips and corruption tolerance."""

import json

from repro.protocols.base import ProtocolRunResult
from repro.protocols.runner import execute_spec
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

SPEC = RunSpec(protocol="current", relay_count=200, max_time=700.0)


def test_miss_then_hit_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(SPEC) is None
    assert SPEC not in cache

    result = execute_spec(SPEC)
    cache.put(SPEC, result.summary())
    assert SPEC in cache
    assert len(cache) == 1

    restored = ProtocolRunResult.from_summary(cache.get(SPEC))
    assert restored.success == result.success
    assert restored.latency == result.latency
    assert restored.relay_count == result.relay_count
    assert restored.stats.total_bytes_delivered == result.stats.total_bytes_delivered
    assert restored.stats.bytes_by_type == result.stats.bytes_by_type
    assert {aid: o.completion_time for aid, o in restored.outcomes.items()} == {
        aid: o.completion_time for aid, o in result.outcomes.items()
    }
    # The trace is deliberately not cached.
    assert len(restored.trace) == 0


def test_different_specs_use_different_entries(tmp_path):
    cache = ResultCache(tmp_path)
    other = SPEC.derive(seed=99)
    assert cache.path_for(SPEC) != cache.path_for(other)
    cache.put(SPEC, {"version": 1, "marker": "a"})
    assert cache.get(other) is None


def test_corrupted_and_mismatched_entries_read_as_misses(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.path_for(SPEC)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(SPEC) is None
    path.write_text(json.dumps({"format": 999, "summary": {}}), encoding="utf-8")
    assert cache.get(SPEC) is None


def test_clear_removes_all_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, {"k": 1})
    cache.put(SPEC.derive(seed=8), {"k": 2})
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get(SPEC) is None


def test_legacy_engine_runs_cache_separately_from_default_runs(tmp_path):
    # The shared-scheduler engine is an execution flag, not a spec field,
    # but fair/fifo summaries differ between engines at rounding level — a
    # legacy-engine conformance run must never be served a lazy-engine
    # entry, nor poison the cache for default runs.
    from repro.simnet.flows import use_shared_engine

    cache = ResultCache(tmp_path)
    default_path = cache.path_for(SPEC)
    cache.put(SPEC, {"engine": "lazy"})
    with use_shared_engine("legacy"):
        assert cache.path_for(SPEC) != default_path
        assert cache.get(SPEC) is None
        cache.put(SPEC, {"engine": "legacy"})
        assert cache.get(SPEC) == {"engine": "legacy"}
    assert cache.get(SPEC) == {"engine": "lazy"}
    assert len(cache) == 2
