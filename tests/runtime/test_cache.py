"""ResultCache tests: hit/miss round-trips and corruption tolerance."""

import json

from repro.protocols.base import ProtocolRunResult
from repro.protocols.runner import execute_spec
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

SPEC = RunSpec(protocol="current", relay_count=200, max_time=700.0)


def test_miss_then_hit_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(SPEC) is None
    assert SPEC not in cache

    result = execute_spec(SPEC)
    cache.put(SPEC, result.summary())
    assert SPEC in cache
    assert len(cache) == 1

    restored = ProtocolRunResult.from_summary(cache.get(SPEC))
    assert restored.success == result.success
    assert restored.latency == result.latency
    assert restored.relay_count == result.relay_count
    assert restored.stats.total_bytes_delivered == result.stats.total_bytes_delivered
    assert restored.stats.bytes_by_type == result.stats.bytes_by_type
    assert {aid: o.completion_time for aid, o in restored.outcomes.items()} == {
        aid: o.completion_time for aid, o in result.outcomes.items()
    }
    # The trace is deliberately not cached.
    assert len(restored.trace) == 0


def test_different_specs_use_different_entries(tmp_path):
    cache = ResultCache(tmp_path)
    other = SPEC.derive(seed=99)
    assert cache.path_for(SPEC) != cache.path_for(other)
    cache.put(SPEC, {"version": 1, "marker": "a"})
    assert cache.get(other) is None


def test_corrupted_and_mismatched_entries_read_as_misses(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.path_for(SPEC)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(SPEC) is None
    path.write_text(json.dumps({"format": 999, "summary": {}}), encoding="utf-8")
    assert cache.get(SPEC) is None


def test_clear_removes_all_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(SPEC, {"k": 1})
    cache.put(SPEC.derive(seed=8), {"k": 2})
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get(SPEC) is None


def test_prune_is_a_no_op_at_or_under_the_limit(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in range(3):
        cache.put(SPEC.derive(seed=seed), {"seed": seed})
    assert cache.prune(max_entries=3) == 0
    assert cache.prune(max_entries=10) == 0
    assert len(cache) == 3


def test_prune_evicts_oldest_entries_first(tmp_path):
    import os

    cache = ResultCache(tmp_path)
    specs = [SPEC.derive(seed=seed) for seed in range(5)]
    for age, spec in enumerate(specs):
        path = cache.put(spec, {"seed": spec.seed})
        # Deterministic mtimes: seed 0 oldest, seed 4 newest.
        os.utime(path, (1_000_000 + age, 1_000_000 + age))

    assert cache.prune(max_entries=2) == 3
    assert len(cache) == 2
    # The two newest survive.
    assert cache.get(specs[3]) == {"seed": 3}
    assert cache.get(specs[4]) == {"seed": 4}
    for old in specs[:3]:
        assert cache.get(old) is None


def test_put_refreshes_an_entry_against_pruning(tmp_path):
    import os

    cache = ResultCache(tmp_path)
    specs = [SPEC.derive(seed=seed) for seed in range(3)]
    for age, spec in enumerate(specs):
        path = cache.put(spec, {"seed": spec.seed})
        os.utime(path, (1_000_000 + age, 1_000_000 + age))
    # Rewriting the oldest entry makes it the newest.
    refreshed = cache.put(specs[0], {"seed": 0, "refreshed": True})
    os.utime(refreshed, (1_000_010, 1_000_010))

    assert cache.prune(max_entries=1) == 2
    assert cache.get(specs[0]) == {"seed": 0, "refreshed": True}


def test_prune_ignores_concurrent_writers_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(SPEC, {"k": 1})
    # A concurrent writer's staging file in the same shard directory.
    staging = path.parent / "inflight0123.tmp"
    staging.write_text("{}", encoding="utf-8")

    assert cache.prune(max_entries=0) == 1
    assert staging.exists()
    assert cache.get(SPEC) is None


def test_prune_rejects_negative_limits(tmp_path):
    import pytest

    with pytest.raises(Exception):
        ResultCache(tmp_path).prune(max_entries=-1)


def test_pre_reno_tcp_entries_can_never_mis_hit_tcp_vector_runs(tmp_path):
    # Before tcp grew a vector policy, a vector request on a tcp spec ran —
    # and was cache-keyed as — the lazy engine: format-5 builds stored tcp
    # vector-request summaries at the *unsuffixed* path.  Two independent
    # layers must keep those Tahoe-era entries away from tcp-vector runs:
    # the path (vector runs now key under ``.vector``) and the format
    # version (Reno changed every lossy tcp trajectory, so v6 rejects v5).
    import json as _json

    from repro.simnet.flows import use_shared_engine
    from repro.simnet.vector_sched import vector_available

    cache = ResultCache(tmp_path)
    tcp_spec = RunSpec(protocol="current", relay_count=30, transport="tcp")
    # Forge the entry a format-5 build would have written for a vector
    # request under the old downgrade: lazy path, format 5.
    stale_path = cache.path_for(tcp_spec)
    stale_path.parent.mkdir(parents=True, exist_ok=True)
    stale_path.write_text(
        _json.dumps(
            {"format": 5, "spec": tcp_spec.to_dict(), "summary": {"era": "tahoe"}}
        ),
        encoding="utf-8",
    )
    # Layer 1 — the format gate: even at the same path, v5 reads as a miss.
    assert cache.get(tcp_spec) is None
    # Layer 2 — the path gate: a tcp vector run keys under ``.vector`` and
    # never even opens the stale lazy-keyed file.
    with use_shared_engine("vector"):
        if vector_available():
            assert cache.path_for(tcp_spec) != stale_path
        assert cache.get(tcp_spec) is None
        cache.put(tcp_spec, {"era": "reno"})
        assert cache.get(tcp_spec) == {"era": "reno"}
    # The fresh vector entry never leaks back into default (lazy) runs.
    assert cache.get(tcp_spec) is None


def test_prune_treats_engine_suffixed_tcp_entries_as_first_class(tmp_path):
    # Stale unsuffixed tcp entries and fresh ``.vector``-suffixed ones live
    # in the same directory; prune must see both, evict by age (the stale
    # lazy-keyed file first), and never confuse the two paths.
    import time

    from repro.simnet.flows import use_shared_engine
    from repro.simnet.vector_sched import vector_available

    if not vector_available():
        import pytest

        pytest.skip("suffix split needs the vector engine (numpy)")
    cache = ResultCache(tmp_path)
    tcp_spec = RunSpec(protocol="current", relay_count=30, transport="tcp")
    lazy_path = cache.put(tcp_spec, {"engine": "lazy"})
    with use_shared_engine("vector"):
        vector_path = cache.put(tcp_spec, {"engine": "vector"})
    assert lazy_path != vector_path
    assert len(cache) == 2
    # Make the age order deterministic regardless of filesystem timestamp
    # granularity: the lazy entry is strictly older.
    now = time.time()
    import os as _os

    _os.utime(lazy_path, (now - 60.0, now - 60.0))
    _os.utime(vector_path, (now, now))
    assert cache.prune(1) == 1
    assert not lazy_path.exists()
    assert vector_path.exists()
    with use_shared_engine("vector"):
        assert cache.get(tcp_spec) == {"engine": "vector"}


def test_legacy_engine_runs_cache_separately_from_default_runs(tmp_path):
    # The shared-scheduler engine is an execution flag, not a spec field,
    # but fair/fifo summaries differ between engines at rounding level — a
    # legacy-engine conformance run must never be served a lazy-engine
    # entry, nor poison the cache for default runs.
    from repro.simnet.flows import use_shared_engine

    cache = ResultCache(tmp_path)
    default_path = cache.path_for(SPEC)
    cache.put(SPEC, {"engine": "lazy"})
    with use_shared_engine("legacy"):
        assert cache.path_for(SPEC) != default_path
        assert cache.get(SPEC) is None
        cache.put(SPEC, {"engine": "legacy"})
        assert cache.get(SPEC) == {"engine": "legacy"}
    assert cache.get(SPEC) == {"engine": "lazy"}
    assert len(cache) == 2
