"""SweepExecutor tests: serial/parallel equivalence, caching, determinism."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor, cap_partition_workers
from repro.runtime.spec import RunSpec, SweepSpec
from repro.simnet.partition import PARTITION_ENV, WORKERS_ENV

# Small, fast grid: tiny relay counts at generous bandwidth.
GRID = SweepSpec.grid(
    "executor-test",
    protocols=("current", "ours"),
    bandwidths_mbps=(50.0,),
    relay_counts=(150, 300),
    max_time=900.0,
)


def test_serial_and_parallel_runs_are_identical():
    serial = SweepExecutor(workers=1).run_summaries(GRID)
    parallel = SweepExecutor(workers=2).run_summaries(GRID)
    assert serial == parallel
    assert all(summary["success"] for summary in serial)


def test_seeds_are_deterministic_across_worker_counts():
    reference = SweepExecutor(workers=1).run_summaries(GRID)
    for workers in (2, 3):
        assert SweepExecutor(workers=workers).run_summaries(GRID) == reference


def test_results_come_back_in_submission_order():
    executor = SweepExecutor(workers=2)
    results = executor.run(GRID)
    assert [(r.protocol, r.relay_count) for r in results] == [
        (s.protocol, s.relay_count) for s in GRID
    ]


def test_warm_cache_performs_zero_executions(tmp_path):
    cache = ResultCache(tmp_path)
    cold = SweepExecutor(workers=2, cache=cache)
    first = cold.run_summaries(GRID)
    assert cold.executed_runs == len(GRID)
    assert cold.cache_hits == 0

    warm = SweepExecutor(workers=2, cache=cache)
    second = warm.run_summaries(GRID)
    assert warm.executed_runs == 0
    assert warm.cache_hits == len(GRID)
    assert second == first


def test_duplicate_specs_execute_once():
    spec = RunSpec(protocol="current", relay_count=150, max_time=900.0)
    executor = SweepExecutor()
    results = executor.run([spec, spec, spec])
    assert executor.executed_runs == 1
    assert len(results) == 3
    assert results[0].summary() == results[1].summary() == results[2].summary()


def test_run_one_full_keeps_the_trace_and_feeds_the_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(protocol="current", relay_count=150, max_time=900.0)
    executor = SweepExecutor(cache=cache)
    full = executor.run_one(spec, full=True)
    assert len(full.trace) > 0
    assert spec in cache

    # The cached summary now serves compact reads without re-executing.
    again = SweepExecutor(cache=cache)
    compact = again.run_one(spec)
    assert again.executed_runs == 0
    assert compact.success == full.success
    assert compact.latency == full.latency
    assert len(compact.trace) == 0


class TestCapPartitionWorkers:
    """The sweep-worker × partition-worker oversubscription guard.

    ``cap_partition_workers`` runs as the pool initializer in every sweep
    worker: a run inside a sweep must not spawn its own partition-worker
    pool (nested pool explosion), but must keep the partition *count* the
    parent environment implied, or partition trajectories and cache keys
    would differ between serial and pooled sweeps.
    """

    def test_noop_when_no_parallel_workers_requested(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(PARTITION_ENV, raising=False)
        cap_partition_workers()
        import os

        assert WORKERS_ENV not in os.environ
        assert PARTITION_ENV not in os.environ

    def test_caps_workers_and_pins_implied_partition_count(self, monkeypatch):
        # REPRO_PARALLEL_WORKERS doubles as the default partition count:
        # capping workers alone would silently change the partitioning.
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.delenv(PARTITION_ENV, raising=False)
        cap_partition_workers()
        import os

        assert os.environ[WORKERS_ENV] == "1"
        assert os.environ[PARTITION_ENV] == "4"

    def test_explicit_partition_count_is_preserved(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.setenv(PARTITION_ENV, "2")
        cap_partition_workers()
        import os

        assert os.environ[WORKERS_ENV] == "1"
        assert os.environ[PARTITION_ENV] == "2"

    def test_pooled_sweep_under_parallel_workers_matches_serial(self, monkeypatch):
        # End to end: a 2-worker sweep with partition workers requested in
        # the environment must equal the serial run (the initializer caps
        # each worker to in-process partitions, never a nested pool).
        monkeypatch.setenv(WORKERS_ENV, "2")
        specs = list(GRID)[:2]
        serial = SweepExecutor(workers=1).run_summaries(specs)
        pooled = SweepExecutor(workers=2).run_summaries(specs)
        assert pooled == serial


def test_invalid_worker_count_rejected():
    with pytest.raises(Exception):
        SweepExecutor(workers=0)


@pytest.mark.parametrize("workers", (1, 2))
def test_on_result_fires_once_per_position_with_cached_flag(tmp_path, workers):
    cache = ResultCache(tmp_path)
    SweepExecutor(workers=1, cache=cache).run_summaries(list(GRID)[:2])  # warm 2 of 4

    events = []

    def on_result(index, spec, summary, cached):
        events.append((index, spec, summary["success"], cached))

    executor = SweepExecutor(workers=workers, cache=cache, on_result=on_result)
    summaries = executor.run_summaries(GRID)

    assert sorted(index for index, *_ in events) == list(range(len(GRID)))
    by_index = {index: (spec, success, cached) for index, spec, success, cached in events}
    for index, spec in enumerate(GRID):
        reported_spec, success, cached = by_index[index]
        assert reported_spec == spec
        assert success == summaries[index]["success"]
        assert cached == (index < 2)


def test_per_call_on_result_overrides_the_constructor_default():
    constructor_events, call_events = [], []
    executor = SweepExecutor(
        on_result=lambda *args: constructor_events.append(args)
    )
    specs = list(GRID)[:1]
    executor.run_summaries(specs)
    assert len(constructor_events) == 1
    executor.run_summaries(specs, on_result=lambda *args: call_events.append(args))
    assert len(call_events) == 1
    assert len(constructor_events) == 1  # not called again


def test_on_result_covers_duplicate_spec_positions():
    spec = RunSpec(protocol="current", relay_count=150, max_time=900.0)
    indexes = []
    executor = SweepExecutor(on_result=lambda index, *_: indexes.append(index))
    executor.run([spec, spec, spec])
    assert executor.executed_runs == 1
    assert sorted(indexes) == [0, 1, 2]
