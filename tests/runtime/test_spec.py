"""RunSpec/SweepSpec tests: hashing stability, serialization, grid building."""

import pytest

from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.spec import (
    BandwidthOverride,
    RunSpec,
    SweepSpec,
    overrides_from_config,
)
from repro.utils.units import mbps_to_bytes_per_s


def test_specs_are_frozen_hashable_and_comparable():
    a = RunSpec(protocol="current", relay_count=1000)
    b = RunSpec(protocol="current", relay_count=1000)
    c = RunSpec(protocol="ours", relay_count=1000)
    assert a == b and hash(a) == hash(b)
    assert a != c
    with pytest.raises(Exception):
        a.protocol = "ours"


def test_spec_hash_is_stable_and_sensitive_to_every_field():
    base = RunSpec(protocol="current", relay_count=1000)
    assert base.spec_hash() == RunSpec(protocol="current", relay_count=1000).spec_hash()
    # Recorded digest: guards the derivation against accidental changes that
    # would silently invalidate (or worse, alias) existing on-disk caches.
    # (Recomputed when the fault plan joined the key; CACHE_FORMAT_VERSION 2.)
    assert base.spec_hash() == (
        "77d77617e5f628d657be029d2ce3f072d0a6dd0e6888b79b20e04d75150e732f"
    )
    variants = [
        base.derive(protocol="ours"),
        base.derive(relay_count=2000),
        base.derive(bandwidth_mbps=10.0),
        base.derive(seed=8),
        base.derive(engine="pbft"),
        base.derive(transport="fifo"),
        base.derive(max_time=60.0),
        base.derive(config_overrides=(("connection_timeout", 30.0),)),
        base.with_attacked_bandwidth((0, 1), 0.5),
    ]
    digests = {spec.spec_hash() for spec in variants} | {base.spec_hash()}
    assert len(digests) == len(variants) + 1


def test_config_override_int_and_float_values_hash_equally():
    as_int = RunSpec(
        protocol="current", relay_count=1000, config_overrides=(("connection_timeout", 30),)
    )
    as_float = RunSpec(
        protocol="current", relay_count=1000, config_overrides=(("connection_timeout", 30.0),)
    )
    assert as_int == as_float
    assert as_int.spec_hash() == as_float.spec_hash()


def test_config_override_order_does_not_change_the_hash():
    a = RunSpec(
        protocol="current",
        relay_count=1000,
        config_overrides=(("round_duration", 100.0), ("connection_timeout", 30.0)),
    )
    b = RunSpec(
        protocol="current",
        relay_count=1000,
        config_overrides=(("connection_timeout", 30.0), ("round_duration", 100.0)),
    )
    assert a.spec_hash() == b.spec_hash()


def test_to_dict_round_trip_preserves_hash():
    spec = RunSpec(
        protocol="ours",
        relay_count=4000,
        bandwidth_mbps=20.0,
        engine="tendermint",
        config_overrides=(("connection_timeout", 30.0),),
        bandwidth_overrides=(
            BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((0.0, 300.0, 0.5),)),
        ),
    )
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.spec_hash() == spec.spec_hash()


def test_overrides_from_config_only_keeps_non_defaults():
    assert overrides_from_config(None) == ()
    assert overrides_from_config(DirectoryProtocolConfig()) == ()
    config = DirectoryProtocolConfig(connection_timeout=30.0)
    assert overrides_from_config(config) == (("connection_timeout", 30.0),)
    spec = RunSpec(protocol="current", relay_count=100).with_config(config)
    assert spec.protocol_config() == config


def test_invalid_specs_rejected():
    with pytest.raises(Exception):
        RunSpec(protocol="carrier-pigeon", relay_count=100)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=0)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=100, bandwidth_mbps=0.0)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=100, max_time=0.0)


def test_bandwidth_override_schedule_applies_windows():
    override = BandwidthOverride(
        authority_id=3, base_mbps=250.0, windows=((100.0, 400.0, 0.5),)
    )
    schedule = override.schedule()
    assert schedule.rate_at(0.0) == pytest.approx(mbps_to_bytes_per_s(250.0))
    assert schedule.rate_at(200.0) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(500.0) == pytest.approx(mbps_to_bytes_per_s(250.0))


def test_sweep_grid_order_matches_figure_loops():
    sweep = SweepSpec.grid(
        "g",
        protocols=("current", "ours"),
        bandwidths_mbps=(50.0, 10.0),
        relay_counts=(1000, 2000),
        seed=3,
    )
    assert len(sweep) == 8
    assert [(s.bandwidth_mbps, s.relay_count, s.protocol) for s in sweep][:4] == [
        (50.0, 1000, "current"),
        (50.0, 1000, "ours"),
        (50.0, 2000, "current"),
        (50.0, 2000, "ours"),
    ]
    assert all(spec.seed == 3 for spec in sweep)
    assert sweep.sweep_hash() == SweepSpec.grid(
        "g",
        protocols=("current", "ours"),
        bandwidths_mbps=(50.0, 10.0),
        relay_counts=(1000, 2000),
        seed=3,
    ).sweep_hash()


# -- transport model on specs (PR 3) -------------------------------------------

def test_transport_is_validated_against_the_link_model_registry():
    assert RunSpec(protocol="current", relay_count=10, transport="latency-only")
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=10, transport="token-ring")


def test_transport_round_trips_and_differentiates_the_hash():
    fair = RunSpec(protocol="current", relay_count=10)
    fast = fair.derive(transport="latency-only")
    assert fair.spec_hash() != fast.spec_hash()
    rebuilt = RunSpec.from_dict(fast.to_dict())
    assert rebuilt == fast
    assert rebuilt.transport == "latency-only"


def test_v2_dicts_with_the_scheduling_key_still_deserialize():
    spec = RunSpec(protocol="current", relay_count=10, transport="fifo")
    legacy = spec.to_dict()
    legacy["format"] = 2
    legacy["scheduling"] = legacy.pop("transport")
    rebuilt = RunSpec.from_dict(legacy)
    assert rebuilt == spec
    assert rebuilt.spec_hash() == spec.spec_hash()


def test_scheduling_survives_as_a_deprecated_alias():
    spec = RunSpec(protocol="current", relay_count=10, transport="fifo")
    assert spec.scheduling == "fifo"
    assert spec.derive(scheduling="fair").transport == "fair"


# -- fault plans on specs (PR 2) ----------------------------------------------

def test_fault_plan_participates_in_spec_hash_and_serialization():
    from repro.faults.plan import FaultPlan

    base = RunSpec(protocol="ours", relay_count=500)
    faulted = base.with_faults(FaultPlan.partition((0, 1), 0.0, 300.0))
    assert faulted.fault_plan
    # A non-empty plan hashes differently from its fault-free twin...
    assert faulted.spec_hash() != base.spec_hash()
    # ...and differently from a different plan.
    other = base.with_faults(FaultPlan.byzantine(0, "withhold"))
    assert faulted.spec_hash() != other.spec_hash()
    # Serialization round-trips the plan and the hash.
    rebuilt = RunSpec.from_dict(faulted.to_dict())
    assert rebuilt == faulted
    assert rebuilt.spec_hash() == faulted.spec_hash()


def test_with_faults_merges_into_the_existing_plan():
    from repro.faults.plan import FaultPlan

    spec = (
        RunSpec(protocol="ours", relay_count=100)
        .with_faults(FaultPlan.crash(1, [(10.0, 20.0)]))
        .with_faults(FaultPlan.partition((2,), 0.0, 50.0))
    )
    assert spec.fault_plan.authority_fault_for(1) is not None
    assert spec.fault_plan.link_fault_for(2) is not None


def test_fault_plan_referencing_unknown_authority_is_rejected():
    from repro.faults.plan import FaultPlan

    with pytest.raises(Exception):
        RunSpec(
            protocol="current",
            relay_count=100,
            authority_count=5,
            fault_plan=FaultPlan.crash(7, [(0.0, 10.0)]),
        )


def test_fault_plan_must_be_a_fault_plan_instance():
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=100, fault_plan={"link_faults": []})


# -- validation gaps closed while testing the fault layer ---------------------

def test_bandwidth_override_referencing_unknown_authority_is_rejected():
    with pytest.raises(Exception):
        RunSpec(
            protocol="current",
            relay_count=100,
            authority_count=5,
            bandwidth_overrides=(BandwidthOverride(authority_id=9, base_mbps=10.0),),
        )


def test_malformed_bandwidth_override_windows_are_rejected():
    with pytest.raises(Exception):  # inverted window
        BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((300.0, 100.0, 0.5),))
    with pytest.raises(Exception):  # negative start
        BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((-1.0, 100.0, 0.5),))
    with pytest.raises(Exception):  # negative rate
        BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((0.0, 100.0, -0.5),))
    with pytest.raises(Exception):  # not a triple
        BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((0.0, 100.0),))


def test_sweeps_reject_empty_grids_and_non_spec_members():
    with pytest.raises(Exception):
        SweepSpec(name="empty", runs=())
    with pytest.raises(Exception):
        SweepSpec(name="bad", runs=("current",))
