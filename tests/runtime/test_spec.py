"""RunSpec/SweepSpec tests: hashing stability, serialization, grid building."""

import pytest

from repro.protocols.base import DirectoryProtocolConfig
from repro.runtime.spec import (
    BandwidthOverride,
    RunSpec,
    SweepSpec,
    overrides_from_config,
)
from repro.utils.units import mbps_to_bytes_per_s


def test_specs_are_frozen_hashable_and_comparable():
    a = RunSpec(protocol="current", relay_count=1000)
    b = RunSpec(protocol="current", relay_count=1000)
    c = RunSpec(protocol="ours", relay_count=1000)
    assert a == b and hash(a) == hash(b)
    assert a != c
    with pytest.raises(Exception):
        a.protocol = "ours"


def test_spec_hash_is_stable_and_sensitive_to_every_field():
    base = RunSpec(protocol="current", relay_count=1000)
    assert base.spec_hash() == RunSpec(protocol="current", relay_count=1000).spec_hash()
    # Recorded digest: guards the derivation against accidental changes that
    # would silently invalidate (or worse, alias) existing on-disk caches.
    assert base.spec_hash() == (
        "11b2d73dad7f87a932bad4248ec3f5ca3eb4e89ca448380ab0f269a19d79692d"
    )
    variants = [
        base.derive(protocol="ours"),
        base.derive(relay_count=2000),
        base.derive(bandwidth_mbps=10.0),
        base.derive(seed=8),
        base.derive(engine="pbft"),
        base.derive(scheduling="fifo"),
        base.derive(max_time=60.0),
        base.derive(config_overrides=(("connection_timeout", 30.0),)),
        base.with_attacked_bandwidth((0, 1), 0.5),
    ]
    digests = {spec.spec_hash() for spec in variants} | {base.spec_hash()}
    assert len(digests) == len(variants) + 1


def test_config_override_int_and_float_values_hash_equally():
    as_int = RunSpec(
        protocol="current", relay_count=1000, config_overrides=(("connection_timeout", 30),)
    )
    as_float = RunSpec(
        protocol="current", relay_count=1000, config_overrides=(("connection_timeout", 30.0),)
    )
    assert as_int == as_float
    assert as_int.spec_hash() == as_float.spec_hash()


def test_config_override_order_does_not_change_the_hash():
    a = RunSpec(
        protocol="current",
        relay_count=1000,
        config_overrides=(("round_duration", 100.0), ("connection_timeout", 30.0)),
    )
    b = RunSpec(
        protocol="current",
        relay_count=1000,
        config_overrides=(("connection_timeout", 30.0), ("round_duration", 100.0)),
    )
    assert a.spec_hash() == b.spec_hash()


def test_to_dict_round_trip_preserves_hash():
    spec = RunSpec(
        protocol="ours",
        relay_count=4000,
        bandwidth_mbps=20.0,
        engine="tendermint",
        config_overrides=(("connection_timeout", 30.0),),
        bandwidth_overrides=(
            BandwidthOverride(authority_id=0, base_mbps=250.0, windows=((0.0, 300.0, 0.5),)),
        ),
    )
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.spec_hash() == spec.spec_hash()


def test_overrides_from_config_only_keeps_non_defaults():
    assert overrides_from_config(None) == ()
    assert overrides_from_config(DirectoryProtocolConfig()) == ()
    config = DirectoryProtocolConfig(connection_timeout=30.0)
    assert overrides_from_config(config) == (("connection_timeout", 30.0),)
    spec = RunSpec(protocol="current", relay_count=100).with_config(config)
    assert spec.protocol_config() == config


def test_invalid_specs_rejected():
    with pytest.raises(Exception):
        RunSpec(protocol="carrier-pigeon", relay_count=100)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=0)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=100, bandwidth_mbps=0.0)
    with pytest.raises(Exception):
        RunSpec(protocol="current", relay_count=100, max_time=0.0)


def test_bandwidth_override_schedule_applies_windows():
    override = BandwidthOverride(
        authority_id=3, base_mbps=250.0, windows=((100.0, 400.0, 0.5),)
    )
    schedule = override.schedule()
    assert schedule.rate_at(0.0) == pytest.approx(mbps_to_bytes_per_s(250.0))
    assert schedule.rate_at(200.0) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(500.0) == pytest.approx(mbps_to_bytes_per_s(250.0))


def test_sweep_grid_order_matches_figure_loops():
    sweep = SweepSpec.grid(
        "g",
        protocols=("current", "ours"),
        bandwidths_mbps=(50.0, 10.0),
        relay_counts=(1000, 2000),
        seed=3,
    )
    assert len(sweep) == 8
    assert [(s.bandwidth_mbps, s.relay_count, s.protocol) for s in sweep][:4] == [
        (50.0, 1000, "current"),
        (50.0, 1000, "ours"),
        (50.0, 2000, "current"),
        (50.0, 2000, "ours"),
    ]
    assert all(spec.seed == 3 for spec in sweep)
    assert sweep.sweep_hash() == SweepSpec.grid(
        "g",
        protocols=("current", "ours"),
        bandwidths_mbps=(50.0, 10.0),
        relay_counts=(1000, 2000),
        seed=3,
    ).sweep_hash()
