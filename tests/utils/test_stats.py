"""Statistics helper tests (the aggregation algorithm depends on these)."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import at_least_half, majority_value, mean, median, strict_majority


def test_median_odd():
    assert median([3, 1, 2]) == 2


def test_median_even_uses_low_median():
    # Tor uses the low median so the consensus bandwidth equals a submitted value.
    assert median([1, 2, 3, 4]) == 2


def test_median_single():
    assert median([7]) == 7


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_mean_and_empty():
    assert mean([1, 2, 3]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mean([])


def test_strict_majority():
    assert strict_majority(5, 9)
    assert not strict_majority(4, 9)
    assert not strict_majority(4, 8)
    assert strict_majority(5, 8)


def test_at_least_half():
    assert at_least_half(4, 9)      # floor(9/2) = 4
    assert not at_least_half(3, 9)
    assert at_least_half(4, 8)


def test_majority_thresholds_reject_bad_total():
    with pytest.raises(ValueError):
        strict_majority(1, 0)
    with pytest.raises(ValueError):
        at_least_half(1, 0)


def test_majority_value_returns_all_tied():
    assert set(majority_value(["a", "b", "a", "b"])) == {"a", "b"}
    assert majority_value(["x", "x", "y"]) == ["x"]
    assert majority_value([]) == []


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
def test_median_is_an_element_and_central(values):
    result = median(values)
    assert result in values
    below = sum(1 for value in values if value <= result)
    assert below * 2 >= len(values)


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1))
def test_mean_bounded_by_extremes(values):
    result = mean(values)
    assert min(values) - 1e-6 <= result <= max(values) + 1e-6
