"""Deterministic RNG tests."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import DeterministicRNG, derive_seed


def test_same_seed_same_sequence():
    a = DeterministicRNG(42)
    b = DeterministicRNG(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRNG(1)
    b = DeterministicRNG(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_streams_are_independent_and_reproducible():
    parent = DeterministicRNG(7)
    child_a1 = parent.child("relays")
    child_a2 = DeterministicRNG(7).child("relays")
    child_b = DeterministicRNG(7).child("topology")
    seq_a1 = [child_a1.random() for _ in range(5)]
    seq_a2 = [child_a2.random() for _ in range(5)]
    seq_b = [child_b.random() for _ in range(5)]
    assert seq_a1 == seq_a2
    assert seq_a1 != seq_b


def test_derive_seed_stability():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_choice_rejects_empty():
    with pytest.raises(ValueError):
        DeterministicRNG(0).choice([])


def test_sample_and_shuffle_preserve_elements():
    rng = DeterministicRNG(3)
    items = list(range(20))
    sampled = rng.sample(items, 5)
    assert len(sampled) == 5 and set(sampled) <= set(items)
    shuffled = rng.shuffle(items)
    assert sorted(shuffled) == items
    assert items == list(range(20)), "shuffle must not mutate its input"


def test_hex_string_format():
    value = DeterministicRNG(9).hex_string(40)
    assert len(value) == 40
    assert all(c in "0123456789ABCDEF" for c in value)


@given(st.integers(min_value=0, max_value=2**31), st.floats(min_value=0, max_value=1))
def test_bernoulli_extremes(seed, p):
    rng = DeterministicRNG(seed)
    if p == 0:
        assert rng.bernoulli(0.0) is False
    if p == 1:
        assert rng.bernoulli(1.0) is True


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=100))
def test_randint_in_range(seed, high):
    rng = DeterministicRNG(seed)
    value = rng.randint(0, high)
    assert 0 <= value <= high
