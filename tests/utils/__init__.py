"""Test package."""
