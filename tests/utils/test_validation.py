"""Validation helper tests."""

import pytest

from repro.utils.validation import (
    ReproError,
    ValidationError,
    ensure,
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_type,
)


def test_ensure_passes_and_fails():
    ensure(True, "never raised")
    with pytest.raises(ValidationError, match="boom"):
        ensure(False, "boom")


def test_validation_error_is_repro_error_and_value_error():
    assert issubclass(ValidationError, ReproError)
    assert issubclass(ValidationError, ValueError)


def test_ensure_type():
    ensure_type(5, int, "value")
    with pytest.raises(ValidationError):
        ensure_type("5", int, "value")


def test_ensure_positive():
    ensure_positive(0.1, "x")
    with pytest.raises(ValidationError):
        ensure_positive(0, "x")
    with pytest.raises(ValidationError):
        ensure_positive(-1, "x")


def test_ensure_non_negative():
    ensure_non_negative(0, "x")
    with pytest.raises(ValidationError):
        ensure_non_negative(-0.001, "x")


def test_ensure_in_range():
    ensure_in_range(5, 0, 10, "x")
    ensure_in_range(0, 0, 10, "x")
    ensure_in_range(10, 0, 10, "x")
    with pytest.raises(ValidationError):
        ensure_in_range(11, 0, 10, "x")
