"""Unit-conversion tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    Bandwidth,
    bits_to_bytes,
    bytes_per_s_to_mbps,
    bytes_to_bits,
    bytes_to_mib,
    hours,
    mbps_to_bytes_per_s,
    minutes,
    seconds,
)


def test_ten_mbps_is_one_point_two_five_megabytes_per_second():
    # The paper states 10 Mbit/s = 1.25 MB/s explicitly.
    assert mbps_to_bytes_per_s(10) == pytest.approx(1.25e6)


def test_bits_bytes_round_trip():
    assert bits_to_bytes(bytes_to_bits(123.0)) == pytest.approx(123.0)


def test_bytes_to_mib():
    assert bytes_to_mib(1024 * 1024) == pytest.approx(1.0)


def test_time_helpers():
    assert seconds(5) == 5.0
    assert minutes(2.5) == 150.0
    assert hours(3) == 10800.0


def test_bandwidth_from_mbps_round_trip():
    bandwidth = Bandwidth.from_mbps(250)
    assert bandwidth.mbps == pytest.approx(250.0)
    assert bandwidth.bytes_per_s == pytest.approx(31.25e6)


def test_bandwidth_transfer_time():
    bandwidth = Bandwidth.from_mbps(8)  # 1 MB/s
    assert bandwidth.transfer_time(2_000_000) == pytest.approx(2.0)


def test_zero_bandwidth_never_finishes():
    assert Bandwidth.from_bytes_per_s(0).transfer_time(1) == math.inf


def test_negative_bandwidth_rejected():
    with pytest.raises(ValueError):
        Bandwidth(-1.0)


def test_bandwidth_ordering():
    assert Bandwidth.from_mbps(1) < Bandwidth.from_mbps(2)
    assert Bandwidth.from_mbps(2) <= Bandwidth.from_mbps(2)


@given(st.floats(min_value=0.001, max_value=1e5))
def test_mbps_conversion_round_trip(mbps):
    assert bytes_per_s_to_mbps(mbps_to_bytes_per_s(mbps)) == pytest.approx(mbps)


@given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0.01, max_value=1e4))
def test_transfer_time_scales_inversely_with_rate(nbytes, mbps):
    slow = Bandwidth.from_mbps(mbps)
    fast = Bandwidth.from_mbps(mbps * 2)
    assert fast.transfer_time(nbytes) <= slow.transfer_time(nbytes)
