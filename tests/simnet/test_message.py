"""Message envelope tests."""

import pytest

from repro.simnet.message import CONTROL_MESSAGE_OVERHEAD_BYTES, Message


def test_defaults_and_ids_unique():
    a = Message(msg_type="VOTE")
    b = Message(msg_type="VOTE")
    assert a.size_bytes == CONTROL_MESSAGE_OVERHEAD_BYTES
    assert a.msg_id != b.msg_id


def test_validation():
    with pytest.raises(Exception):
        Message(msg_type="")
    with pytest.raises(Exception):
        Message(msg_type="VOTE", size_bytes=-1)


def test_annotated_merges_metadata_and_chains():
    message = Message(msg_type="VOTE").annotated(round=1).annotated(retry=True)
    assert message.metadata == {"round": 1, "retry": True}
