"""Bandwidth schedule tests, including property-based integration checks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.bandwidth import BandwidthSchedule
from repro.utils.units import mbps_to_bytes_per_s


def test_constant_schedule():
    schedule = BandwidthSchedule.constant_mbps(10)
    assert schedule.rate_at(0) == pytest.approx(1.25e6)
    assert schedule.rate_at(1e6) == pytest.approx(1.25e6)
    assert schedule.next_change_after(0) is None


def test_window_application():
    schedule = BandwidthSchedule.constant_mbps(250).with_window_mbps(100, 400, 0.5)
    assert schedule.rate_at(0) == pytest.approx(mbps_to_bytes_per_s(250))
    assert schedule.rate_at(100) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(399.9) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(400) == pytest.approx(mbps_to_bytes_per_s(250))


def test_next_change_after():
    schedule = BandwidthSchedule.constant_mbps(250).with_window_mbps(100, 400, 0.5)
    assert schedule.next_change_after(0) == 100
    assert schedule.next_change_after(100) == 400
    assert schedule.next_change_after(400) is None


def test_capacity_between_integrates_windows():
    schedule = BandwidthSchedule.constant(100.0).with_window(10, 20, 0.0)
    assert schedule.capacity_between(0, 30) == pytest.approx(100.0 * 20)
    assert schedule.capacity_between(10, 20) == pytest.approx(0.0)


def test_time_to_transfer_constant_rate():
    schedule = BandwidthSchedule.constant(1000.0)
    assert schedule.time_to_transfer(5000, start=2.0) == pytest.approx(7.0)
    assert schedule.time_to_transfer(0, start=2.0) == 2.0


def test_time_to_transfer_across_throttle_window():
    # 1000 B/s normally, zero during [5, 10): 3000 bytes sent from t=4 need
    # 1 s before the window, then wait, then 2 s after it.
    schedule = BandwidthSchedule.constant(1000.0).with_window(5, 10, 0.0)
    assert schedule.time_to_transfer(3000, start=4.0) == pytest.approx(12.0)


def test_time_to_transfer_infinite_when_rate_zero_forever():
    schedule = BandwidthSchedule.constant(0.0)
    assert schedule.time_to_transfer(1, start=0.0) == math.inf


# -- integration primitives at breakpoint boundaries ---------------------------

def test_capacity_between_with_interior_zero_rate_segments():
    # 100 B/s with TWO dead windows; integration must step through each
    # breakpoint without double-counting either boundary.
    schedule = (
        BandwidthSchedule.constant(100.0)
        .with_window(10, 20, 0.0)
        .with_window(30, 40, 0.0)
    )
    assert schedule.capacity_between(0, 50) == pytest.approx(100.0 * 30)
    # Intervals that start/end exactly ON breakpoints.
    assert schedule.capacity_between(10, 30) == pytest.approx(100.0 * 10)
    assert schedule.capacity_between(20, 40) == pytest.approx(100.0 * 10)
    assert schedule.capacity_between(20, 20) == 0.0


def test_time_to_transfer_spanning_three_or_more_segments():
    # Rates 1000 / 100 / 0 / 500 across [0,10) [10,20) [20,30) [30,inf).
    schedule = BandwidthSchedule(
        [0.0, 10.0, 20.0, 30.0], [1000.0, 100.0, 0.0, 500.0]
    )
    # 10000 in the first segment exactly; then 1000 across the second; the
    # dead third contributes nothing; 2000 remain for the fourth: 4 s more.
    total = 10_000 + 1_000 + 2_000
    assert schedule.time_to_transfer(total, start=0.0) == pytest.approx(34.0)
    # Capacity over the same horizon agrees with the transfer time.
    assert schedule.capacity_between(0.0, 34.0) == pytest.approx(total)


def test_time_to_transfer_exactly_on_a_breakpoint():
    schedule = BandwidthSchedule([0.0, 10.0], [1000.0, 500.0])
    # Finishing exactly AT the breakpoint uses only the first-segment rate...
    assert schedule.time_to_transfer(10_000, start=0.0) == pytest.approx(10.0)
    # ...one more byte must dip into the second segment's slower rate.
    assert schedule.time_to_transfer(10_001, start=0.0) == pytest.approx(10.0 + 1 / 500.0)
    # Starting exactly ON the breakpoint sees the post-breakpoint rate.
    assert schedule.time_to_transfer(500, start=10.0) == pytest.approx(11.0)
    assert schedule.rate_at(10.0) == 500.0


def test_zero_byte_transfer_on_a_breakpoint_and_in_a_dead_segment():
    schedule = BandwidthSchedule.constant(100.0).with_window(10, 20, 0.0)
    # Zero bytes complete instantly everywhere, even where the rate is zero.
    assert schedule.time_to_transfer(0, start=10.0) == 10.0
    assert schedule.time_to_transfer(0, start=15.0) == 15.0
    # A real transfer started inside the dead window waits for its end.
    assert schedule.time_to_transfer(100, start=15.0) == pytest.approx(21.0)


def test_invalid_schedules_rejected():
    with pytest.raises(Exception):
        BandwidthSchedule([1.0], [10.0])  # must start at 0
    with pytest.raises(Exception):
        BandwidthSchedule([0.0, 0.0], [1.0, 2.0])  # non-increasing breakpoints
    with pytest.raises(Exception):
        BandwidthSchedule([0.0], [-1.0])  # negative rate
    with pytest.raises(Exception):
        BandwidthSchedule.constant(5.0).with_window(10, 5, 1.0)  # end before start


@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=10.0, max_value=1e7),
    window_start=st.floats(min_value=0.0, max_value=500.0),
    window_length=st.floats(min_value=1.0, max_value=500.0),
    window_rate=st.floats(min_value=0.0, max_value=1e6),
    nbytes=st.floats(min_value=1.0, max_value=1e8),
    start=st.floats(min_value=0.0, max_value=1000.0),
)
def test_transfer_finish_time_consistent_with_capacity(
    rate, window_start, window_length, window_rate, nbytes, start
):
    schedule = BandwidthSchedule.constant(rate).with_window(
        window_start, window_start + window_length, window_rate
    )
    finish = schedule.time_to_transfer(nbytes, start=start)
    if finish == math.inf:
        return
    assert finish >= start
    # The capacity moved by the finish time covers the bytes (within tolerance)
    # and the capacity shortly before the finish time does not.
    moved = schedule.capacity_between(start, finish)
    assert moved == pytest.approx(nbytes, rel=1e-6, abs=1e-3)
    if finish - start > 1e-3:
        earlier = schedule.capacity_between(start, finish - 1e-3)
        assert earlier <= nbytes + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=1e6),
    times=st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=10),
)
def test_rate_at_never_negative_and_piecewise_constant(rate, times):
    schedule = BandwidthSchedule.constant(rate).with_window(10, 20, rate / 2)
    for time in times:
        assert schedule.rate_at(time) >= 0
