"""Parallel-engine conformance: partition-sharded PDES ≡ lazy, summary-level.

The partition-parallel scheduler (:mod:`repro.simnet.parallel_sched`)
shards flow state by authority-pair region and synchronises shards at every
event instant (the transport-level lookahead between partitions is zero —
see ``DESIGN-parallel.md``).  Chips and rates are computed from the same
global occupancy tables regardless of the partition count, so the engine is
held to the established cross-engine contract: **summary equivalence** with
the lazy engine — integer accounting exact, continuous values within
``REL_TOLERANCE`` — for every partition count, every seed, and random fault
plans.  The degenerate 1-partition configuration downgrades to the lazy
engine itself and is asserted *byte*-identical, not merely equivalent.

Everything degrades gracefully on a numpy-less install: the engine seam
downgrades ``parallel`` to ``lazy`` (pinned by the fallback test, which the
no-numpy CI leg exercises), and the numpy-only tests skip.
"""

import json
import math
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.directory.authority import make_authorities
from repro.netgen.topology_gen import generate_topology
from repro.protocols.runner import execute_spec
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.engine import Simulator
from repro.simnet.flows import (
    effective_shared_engine,
    make_flow_scheduler,
    use_shared_engine,
)
from repro.simnet.linkmodel import get_link_model
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode
from repro.simnet.parallel_sched import (
    PARALLEL_MODELS,
    ParallelSharedLinkScheduler,
    parallel_available,
)
from repro.simnet.partition import (
    PARTITION_ENV,
    StaticPartition,
    WORKERS_ENV,
    effective_worker_count,
    region_of_name,
    resolve_partition_count,
)
from repro.simnet.shared_sched import LazySharedLinkScheduler
from tests.faults.test_conformance import random_fault_plan
from tests.simnet.test_shared_sched import (
    REL_TOLERANCE,
    assert_equivalent,
)
from tests.simnet.test_transport_golden import run_transport_workload

needs_numpy = pytest.mark.skipif(
    not parallel_available(), reason="numpy not installed (the [perf] extra)"
)


@pytest.fixture
def partitions(monkeypatch):
    """Pin the partition count for the duration of one test."""

    def pin(count):
        monkeypatch.setenv(PARTITION_ENV, str(count))

    return pin


# -- the partition layer -------------------------------------------------------

def test_region_rule_agrees_between_topology_and_transport_layers():
    # The two layers never exchange a topology object; they agree because
    # both apply ``id mod region_count`` — names carry the id.
    authorities, _ring = make_authorities(9)
    topology = generate_topology(authorities)
    for count in (1, 2, 4, 7):
        for authority in authorities:
            assert topology.region_of(authority.authority_id, count) == region_of_name(
                authority.name, count
            )


def test_region_of_name_without_trailing_digits_is_process_stable():
    assert region_of_name("observer", 4) == region_of_name("observer", 4)
    assert 0 <= region_of_name("observer", 3) < 3


def test_static_partition_lookahead_matches_topology_min_cross_region_latency():
    authorities, _ring = make_authorities(9)
    topology = generate_topology(authorities)
    for count in (2, 4):
        partition = StaticPartition.build(
            [a.name for a in authorities],
            count,
            latency_fn=lambda x, y, t=topology: t.latency_between(
                int(x.rsplit("-", 1)[1]), int(y.rsplit("-", 1)[1])
            ),
        )
        assert partition.lookahead() == pytest.approx(
            topology.min_cross_region_latency(count)
        )


def test_lookahead_is_infinite_with_a_single_populated_region():
    partition = StaticPartition.build(["auth-0", "auth-2", "auth-4"], 2, lambda a, b: 0.05)
    assert partition.populated_regions() == (0,)
    assert partition.lookahead() == float("inf")


def test_resolve_partition_count_falls_back_to_worker_env(monkeypatch):
    monkeypatch.delenv(PARTITION_ENV, raising=False)
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_partition_count() == 3
    monkeypatch.setenv(PARTITION_ENV, "2")
    assert resolve_partition_count() == 2
    assert resolve_partition_count(5) == 5


def test_effective_worker_count_is_capped_by_cores_and_partitions(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(8)), raising=False)
    monkeypatch.setenv(PARTITION_ENV, "4")
    assert effective_worker_count(16) == 4  # partition cap
    assert effective_worker_count(2) == 2
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0}, raising=False)
    assert effective_worker_count(16) == 1  # core cap


# -- engine selection seam -----------------------------------------------------

def test_parallel_request_selects_parallel_or_falls_back_to_lazy(partitions):
    # Must pass WITH and WITHOUT numpy: requesting the parallel engine
    # yields the partition scheduler when numpy is importable and silently
    # downgrades to the (golden-pinned) lazy engine otherwise.
    partitions(4)
    with use_shared_engine("parallel"):
        assert effective_shared_engine(transport="fair") == (
            "parallel" if parallel_available() else "lazy"
        )
        scheduler = make_flow_scheduler(
            get_link_model("fair"),
            Simulator(),
            {},
            lambda flow: None,
            lambda flow: None,
        )
    expected = (
        ParallelSharedLinkScheduler if parallel_available() else LazySharedLinkScheduler
    )
    assert type(scheduler) is expected


def test_one_partition_downgrades_to_the_lazy_engine(partitions):
    partitions(1)
    with use_shared_engine("parallel"):
        assert effective_shared_engine(transport="fair") == "lazy"
        scheduler = make_flow_scheduler(
            get_link_model("fair"),
            Simulator(),
            {},
            lambda flow: None,
            lambda flow: None,
        )
    assert type(scheduler) is LazySharedLinkScheduler


@pytest.mark.parametrize("transport", ["fifo", "tcp"])
def test_models_without_a_parallel_policy_fall_back_to_the_vector_engine(
    partitions, transport
):
    # fifo/tcp have no partitioned policy, but they do have a vector policy:
    # a parallel request lands on the next-best batched engine, not lazy.
    assert transport not in PARALLEL_MODELS
    partitions(4)
    with use_shared_engine("parallel"):
        expected = "vector" if parallel_available() else "lazy"
        assert effective_shared_engine(transport=transport) == expected


# -- conformance: parallel engine vs lazy engine -------------------------------

def run_parallel_and_lazy(spec: RunSpec, partition_count: int):
    with use_shared_engine("lazy"):
        lazy = execute_spec(spec).summary()
    previous = os.environ.get(PARTITION_ENV)
    os.environ[PARTITION_ENV] = str(partition_count)
    try:
        with use_shared_engine("parallel"):
            parallel = execute_spec(spec).summary()
    finally:
        if previous is None:
            os.environ.pop(PARTITION_ENV, None)
        else:
            os.environ[PARTITION_ENV] = previous
    return lazy, parallel


@needs_numpy
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOL_NAMES),
    partition_count=st.sampled_from([2, 4]),
)
def test_parallel_engine_is_summary_equivalent_to_lazy_under_random_fault_plans(
    seed, protocol, partition_count
):
    spec = RunSpec(
        protocol=protocol,
        relay_count=30,
        authority_count=5,
        seed=seed % 1000,
        max_time=700.0,
        transport="fair",
        fault_plan=random_fault_plan(seed),
    )
    lazy, parallel = run_parallel_and_lazy(spec, partition_count)
    assert lazy["success"] == parallel["success"]
    assert lazy["stats"]["messages_sent"] == parallel["stats"]["messages_sent"]
    assert lazy["stats"]["messages_delivered"] == parallel["stats"]["messages_delivered"]
    assert lazy["stats"]["messages_timed_out"] == parallel["stats"]["messages_timed_out"]
    assert lazy["stats"]["messages_dropped"] == parallel["stats"]["messages_dropped"]
    if lazy["faults"]:
        assert lazy["faults"]["drops_by_cause"] == parallel["faults"]["drops_by_cause"]
    assert_equivalent(lazy, parallel)


@needs_numpy
def test_one_partition_run_is_byte_identical_to_lazy():
    # K=1 *is* the lazy engine (the seam downgrades), so the summaries are
    # equal as JSON bytes, not merely equivalent to tolerance — and the
    # result cache may share entries between the two configurations.
    spec = RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=5,
        seed=13,
        max_time=700.0,
        transport="fair",
        fault_plan=random_fault_plan(13),
    )
    lazy, parallel = run_parallel_and_lazy(spec, 1)
    assert json.dumps(lazy, sort_keys=True) == json.dumps(parallel, sort_keys=True)


@needs_numpy
def test_parallel_engine_matches_lazy_on_the_golden_workload_as_a_multiset(partitions):
    # Same-instant completions settle in flow-id order across shards, so
    # event ORDER may differ from lazy — compare as a multiset with
    # per-pair timestamp tolerance (the vector engine's contract).
    partitions(4)
    with use_shared_engine("lazy"):
        lazy = run_transport_workload("fair")
    with use_shared_engine("parallel"):
        parallel = run_transport_workload("fair")
    assert lazy["stats"] == parallel["stats"]
    assert len(lazy["events"]) == len(parallel["events"])

    def keyed(record):
        kind, msg_type, sender, dst, size, now = record
        return ((kind, msg_type, sender, dst, size), now)

    old = sorted(map(keyed, lazy["events"]))
    new = sorted(map(keyed, parallel["events"]))
    for (old_key, old_now), (new_key, new_now) in zip(old, new):
        assert old_key == new_key
        assert math.isclose(old_now, new_now, rel_tol=REL_TOLERANCE, abs_tol=1e-9)


@needs_numpy
def test_worker_pool_dispatch_is_conformant_with_serial_batches(partitions):
    # Force the fan-out path even on a single-core host: the pool executes
    # the same stateless ``_rate_batch``, so the workload must land on the
    # identical summary.  (On real multi-core machines this is the default
    # path for large batches.)
    partitions(4)
    with use_shared_engine("lazy"):
        lazy = run_transport_workload("fair")
    from repro.simnet import network as network_module

    original_init = ParallelSharedLinkScheduler.__init__

    def forced_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self._workers = 2
        self._fanout_min = 0

    try:
        ParallelSharedLinkScheduler.__init__ = forced_init
        with use_shared_engine("parallel"):
            pooled = run_transport_workload("fair")
    finally:
        ParallelSharedLinkScheduler.__init__ = original_init
    assert lazy["stats"] == pooled["stats"]


# -- partition trajectories are count-independent ------------------------------

@needs_numpy
def test_summaries_agree_across_partition_counts_to_tolerance():
    spec = RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=7,
        seed=42,
        max_time=700.0,
        transport="fair",
    )
    baseline, two = run_parallel_and_lazy(spec, 2)
    _, four = run_parallel_and_lazy(spec, 4)
    _, seven = run_parallel_and_lazy(spec, 7)
    for summary in (two, four, seven):
        assert summary["success"] == baseline["success"]
        assert summary["stats"]["messages_sent"] == baseline["stats"]["messages_sent"]
        assert_equivalent(baseline, summary)


# -- edge cases, re-run under the parallel engine ------------------------------

class _Sink(ProtocolNode):
    def __init__(self, name, deliveries):
        super().__init__(name)
        self._deliveries = deliveries

    def on_message(self, message, now):
        self._deliveries.append((message.msg_type, now))


def _two_node_network(dst_schedule, partitions_fixture):
    partitions_fixture(4)
    deliveries = []
    network = SimNetwork(
        transport="fair", shared_engine="parallel", default_latency_s=0.0
    )
    network.add_node(_Sink("src-0", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("dst-1", deliveries), LinkConfig.symmetric(dst_schedule))
    return network, deliveries


@needs_numpy
def test_parallel_strands_a_flow_whose_rate_drops_to_zero_forever(partitions):
    schedule = BandwidthSchedule([0.0, 1.0], [1_000_000.0, 0.0])
    network, deliveries = _two_node_network(schedule, partitions)
    timeouts = []
    network.send(
        "src-0", "dst-1", Message(msg_type="DOC", size_bytes=2_000_000),
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == []
    assert network.active_flow_count() == 1


@needs_numpy
def test_parallel_defers_completion_across_an_outage_window(partitions):
    schedule = BandwidthSchedule([0.0, 1.0, 100.0], [1_000_000.0, 0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule, partitions)
    network.send("src-0", "dst-1", Message(msg_type="DOC", size_bytes=2_000_000))
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == pytest.approx(101.0, rel=1e-9)


@needs_numpy
def test_parallel_deadline_exactly_on_a_bandwidth_breakpoint_times_out(partitions):
    schedule = BandwidthSchedule([0.0, 10.0], [0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule, partitions)
    timeouts = []
    network.send(
        "src-0", "dst-1", Message(msg_type="DOC", size_bytes=500_000),
        timeout=10.0,
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == [10.0]
    assert network.active_flow_count() == 0


@needs_numpy
def test_parallel_sub_ulp_residual_completes_instead_of_livelocking(partitions):
    partitions(4)
    start = float(2**20)
    deliveries = []
    network = SimNetwork(
        transport="fair", shared_engine="parallel", default_latency_s=0.0
    )
    fast = LinkConfig.symmetric(BandwidthSchedule.constant(1e9))
    network.add_node(_Sink("src-0", deliveries), fast)
    network.add_node(_Sink("dst-1", deliveries), fast)
    network.simulator.schedule(
        start,
        lambda: network.send("src-0", "dst-1", Message(msg_type="DOC", size_bytes=0.05)),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == start
    assert network.active_flow_count() == 0


@needs_numpy
def test_partition_summary_reports_counts_workers_and_lookahead(partitions):
    partitions(4)
    network = SimNetwork(
        transport="fair", shared_engine="parallel", default_latency_s=0.04
    )
    deliveries = []
    network.add_node(_Sink("auth-0", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("auth-1", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.send("auth-0", "auth-1", Message(msg_type="DOC", size_bytes=1000))
    network.simulator.run_until_idle(max_events=100)
    summary = network._scheduler.partition_summary()
    assert summary["partitions"] == 4
    assert summary["workers"] >= 1
    # Two populated regions, priced off the pairwise latency table.
    assert summary["lookahead_s"] == pytest.approx(0.04)
    assert sum(summary["regions"].values()) == 2
