"""Lazy shared scheduler: old-vs-new conformance and edge-case regressions.

The lazy-advance engine (:mod:`repro.simnet.shared_sched`) deliberately
changes the shared models' float *rounding* — progress is chipped at rate
changes only, not at every global event — so byte-identity with the legacy
engine is not the contract.  The contract, enforced here, is **summary-level
equivalence**: identical success flags, message/round counts and
dropped-by-cause accounting, with latencies (and every other float) within
1e-6 relative.  Hypothesis drives it across seeded random specs *including
random fault plans*, for every protocol and both shared transports.

The edge cases pin the failure modes a heap of per-flow estimates invites:

* a flow whose rate drops to zero mid-transfer — its stale completion
  estimate must fire harmlessly, never complete the flow;
* a deadline landing exactly on a bandwidth breakpoint — the timeout must
  win deterministically;
* a completion-epsilon residual whose transfer time is below one ulp of
  virtual time — the PR-3 live-lock shape, now under the lazy path.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.runner import execute_spec
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.flows import use_shared_engine
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode

from tests.faults.test_conformance import random_fault_plan
from tests.simnet.test_transport_golden import run_transport_workload

SHARED_TRANSPORTS = ("fair", "fifo")

#: Relative tolerance of the old-vs-new equivalence gate.
REL_TOLERANCE = 1e-6


def assert_equivalent(old, new, path="summary"):
    """Structural equality with ``REL_TOLERANCE`` slack on floats only.

    Counts (ints), flags (bools), names and shapes must match exactly; only
    genuinely continuous values (latencies, byte totals, timestamps) may
    carry the lazy engine's rounding difference.
    """
    if isinstance(old, dict):
        assert isinstance(new, dict) and set(old) == set(new), path
        for key in old:
            assert_equivalent(old[key], new[key], "%s.%s" % (path, key))
    elif isinstance(old, (list, tuple)):
        assert len(old) == len(new), path
        for index, (a, b) in enumerate(zip(old, new)):
            assert_equivalent(a, b, "%s[%d]" % (path, index))
    elif isinstance(old, bool) or not isinstance(old, float):
        assert old == new, "%s: %r != %r" % (path, old, new)
    elif isinstance(new, float):
        assert math.isclose(old, new, rel_tol=REL_TOLERANCE, abs_tol=1e-9), (
            "%s: %r vs %r" % (path, old, new)
        )
    else:  # pragma: no cover - shape mismatch
        raise AssertionError("%s: %r vs %r" % (path, old, new))


def run_both_engines(spec: RunSpec):
    with use_shared_engine("legacy"):
        legacy = execute_spec(spec).summary()
    with use_shared_engine("lazy"):
        lazy = execute_spec(spec).summary()
    return legacy, lazy


# -- conformance: old engine vs new engine -------------------------------------

@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOL_NAMES),
    transport=st.sampled_from(SHARED_TRANSPORTS),
)
def test_lazy_engine_is_summary_equivalent_to_legacy_under_random_fault_plans(
    seed, protocol, transport
):
    spec = RunSpec(
        protocol=protocol,
        relay_count=30,
        authority_count=5,
        seed=seed % 1000,
        max_time=700.0,
        transport=transport,
        fault_plan=random_fault_plan(seed),
    )
    legacy, lazy = run_both_engines(spec)
    assert legacy["success"] == lazy["success"]
    assert legacy["stats"]["messages_sent"] == lazy["stats"]["messages_sent"]
    assert legacy["stats"]["messages_delivered"] == lazy["stats"]["messages_delivered"]
    assert legacy["stats"]["messages_timed_out"] == lazy["stats"]["messages_timed_out"]
    assert legacy["stats"]["messages_dropped"] == lazy["stats"]["messages_dropped"]
    if legacy["faults"]:
        assert legacy["faults"]["drops_by_cause"] == lazy["faults"]["drops_by_cause"]
    assert_equivalent(legacy, lazy)


@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_lazy_engine_matches_legacy_on_the_golden_workload(transport):
    # The canonical mixed workload (bursts, throttling window, mid-run
    # set_link, timeouts): every delivery/timeout must agree in kind, pair,
    # size and order, with timestamps within the float-rounding tolerance.
    with use_shared_engine("legacy"):
        legacy = run_transport_workload(transport)
    with use_shared_engine("lazy"):
        lazy = run_transport_workload(transport)
    assert legacy["stats"] == lazy["stats"]
    assert len(legacy["events"]) == len(lazy["events"])
    for old, new in zip(legacy["events"], lazy["events"]):
        assert old[:5] == new[:5]
        assert math.isclose(old[5], new[5], rel_tol=REL_TOLERANCE, abs_tol=1e-9)


# -- edge cases ----------------------------------------------------------------

class _Sink(ProtocolNode):
    def __init__(self, name, deliveries):
        super().__init__(name)
        self._deliveries = deliveries

    def on_message(self, message, now):
        self._deliveries.append((message.msg_type, now))


def _two_node_network(dst_schedule, transport="fair"):
    deliveries = []
    network = SimNetwork(transport=transport, default_latency_s=0.0)
    network.add_node(_Sink("src", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("dst", deliveries), LinkConfig.symmetric(dst_schedule))
    return network, deliveries


@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_rate_dropping_to_zero_forever_strands_the_flow_without_completing_it(transport):
    # 1 MB/s for one second, then zero forever: the flow moves 1 MB of its
    # 2 MB and starves.  Its original completion estimate (t=2) is now a
    # stale heap entry — firing it must not complete the flow.
    schedule = BandwidthSchedule([0.0, 1.0], [1_000_000.0, 0.0])
    network, deliveries = _two_node_network(schedule, transport)
    timeouts = []
    network.send(
        "src", "dst", Message(msg_type="DOC", size_bytes=2_000_000),
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == []
    assert network.active_flow_count() == 1  # stranded, exactly like legacy


@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_rate_dropping_to_zero_mid_transfer_defers_completion_to_recovery(transport):
    # Zero capacity on [1, 100): the stale t=2 estimate fires during the
    # outage and must leave the flow incomplete; the remaining 1 MB moves
    # when capacity returns, finishing at t=101.
    schedule = BandwidthSchedule([0.0, 1.0, 100.0], [1_000_000.0, 0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule, transport)
    network.send("src", "dst", Message(msg_type="DOC", size_bytes=2_000_000))
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == pytest.approx(101.0, rel=1e-9)


@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_deadline_exactly_on_a_bandwidth_breakpoint_times_out(transport):
    # Zero capacity until t=10, full capacity after — and the deadline is
    # exactly t=10.  The breakpoint watcher and the deadline event land on
    # the same instant; the timeout must win deterministically (the flow
    # never moved a byte).
    schedule = BandwidthSchedule([0.0, 10.0], [0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule)
    timeouts = []
    network.send(
        "src", "dst", Message(msg_type="DOC", size_bytes=500_000),
        timeout=10.0,
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == [10.0]
    assert network.stats.messages_timed_out == 1
    assert network.active_flow_count() == 0


def test_sub_ulp_residual_completes_instead_of_livelocking():
    # The PR-3 live-lock shape under the lazy path: a residual above the
    # byte epsilon whose transfer time is below one ulp of virtual time.
    # At t=2^20 one ulp is ~1.2e-10 s; 0.05 bytes at 1e9 B/s is 5e-11 s, so
    # the completion estimate rounds to *now* and the progress chip moves
    # nothing — `_is_complete`'s sub-ulp test must settle the flow.
    start = float(2**20)
    deliveries = []
    network = SimNetwork(transport="fair", default_latency_s=0.0)
    fast = LinkConfig.symmetric(BandwidthSchedule.constant(1e9))
    network.add_node(_Sink("src", deliveries), fast)
    network.add_node(_Sink("dst", deliveries), fast)
    network.simulator.schedule(
        start,
        lambda: network.send("src", "dst", Message(msg_type="DOC", size_bytes=0.05)),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == start
    assert network.active_flow_count() == 0


def test_fifo_queued_flow_expiring_mid_queue_never_disturbs_the_served_flow():
    # Three flows on one uplink: the head transfers, the second expires
    # while queued (lazy deletion in the rater's arrival queue), the third
    # is promoted when the head finishes.  10 Mbit/s uplink -> 1.25 MB/s.
    deliveries = []
    network = SimNetwork(transport="fifo", default_latency_s=0.0)
    network.add_node(_Sink("a", deliveries), LinkConfig.symmetric_mbps(10.0))
    network.add_node(_Sink("b", deliveries), LinkConfig.symmetric_mbps(10.0))
    network.add_node(_Sink("c", deliveries), LinkConfig.symmetric_mbps(10.0))
    timeouts = []
    network.send("a", "b", Message(msg_type="FIRST", size_bytes=2_500_000))  # 2 s
    network.send(
        "a", "c", Message(msg_type="SECOND", size_bytes=1_250_000),
        timeout=1.0,  # expires at t=1, still queued
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.send("a", "b", Message(msg_type="THIRD", size_bytes=1_250_000))  # 2..3 s
    network.simulator.run_until_idle(max_events=1_000)
    assert timeouts == [1.0]
    assert [(kind, now) for kind, now in deliveries] == [
        ("FIRST", pytest.approx(2.0)),
        ("THIRD", pytest.approx(3.0)),
    ]
    assert network.active_flow_count() == 0
