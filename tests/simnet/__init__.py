"""Test package."""
