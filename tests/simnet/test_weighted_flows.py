"""Weighted flows and aggregate endpoints at the transport layer.

The consensus-distribution layer's correctness rests on one transport
property: a flow of weight ``w`` carrying ``w × size`` bytes behaves exactly
like ``w`` unit flows of ``size`` bytes started at the same instant.  These
tests pin that equivalence directly on :class:`SimNetwork` — no protocol or
client code — across the shared models on both engines and the independent
model, plus the aggregate-endpoint semantics (per-client capacity, no
sharing) and the weighted message accounting.
"""

import pytest

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.flows import use_shared_engine
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode

ENGINES = ("lazy", "legacy")

#: Every engine behind the seam.  "vector" downgrades to lazy on numpy-less
#: installs, so these parametrizations stay meaningful (if redundant) there.
ALL_ENGINES = ("lazy", "legacy", "vector")

#: An aggregate cohort the size of the extreme Figure-13 rows: one flow
#: standing in for ten million clients.
EXTREME_WEIGHT = 10_000_000


class Recorder(ProtocolNode):
    def __init__(self, name, log):
        super().__init__(name)
        self._log = log

    def on_message(self, message, now):
        self._log.append((message.msg_type, message.sender, self.name, now))


def build_network(transport, engine, receiver_aggregate=False, receiver_mbps=80.0):
    log = []
    network = SimNetwork(transport=transport, shared_engine=engine, default_latency_s=0.0)
    network.add_node(
        Recorder("server", log), LinkConfig.symmetric(BandwidthSchedule.constant_mbps(100.0))
    )
    network.add_node(
        Recorder("sink", log),
        LinkConfig(
            uplink=BandwidthSchedule.constant_mbps(receiver_mbps),
            downlink=BandwidthSchedule.constant_mbps(receiver_mbps),
            aggregate=receiver_aggregate,
        ),
    )
    network.add_node(
        Recorder("other", log), LinkConfig.symmetric(BandwidthSchedule.constant_mbps(100.0))
    )
    return network, log


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("transport", ("fair", "latency-only"))
def test_weighted_flow_equals_parallel_unit_flows(transport, engine):
    # Run A: one weight-5 flow of 5×200kB to an aggregate sink, competing
    # with a unit flow to a third node.  Run B: five unit flows of 200kB.
    def run(weighted):
        network, log = build_network(transport, engine, receiver_aggregate=True)
        if weighted:
            network.send(
                "server", "sink", Message(msg_type="DOC", size_bytes=5 * 200_000), weight=5
            )
        else:
            for _ in range(5):
                network.send("server", "sink", Message(msg_type="DOC", size_bytes=200_000))
        network.send("server", "other", Message(msg_type="VOTE", size_bytes=100_000))
        network.run(until=100.0)
        return network, log

    weighted_net, weighted_log = run(True)
    unit_net, unit_log = run(False)

    # All five unit deliveries land at one instant (equal shares, equal
    # sizes) — the same instant the weighted flow delivers.
    unit_doc_times = sorted(now for m, _s, _d, now in unit_log if m == "DOC")
    weighted_doc_times = [now for m, _s, _d, now in weighted_log if m == "DOC"]
    assert len(unit_doc_times) == 5
    assert len(weighted_doc_times) == 1
    assert unit_doc_times[0] == pytest.approx(unit_doc_times[-1], rel=1e-12)
    assert weighted_doc_times[0] == pytest.approx(unit_doc_times[0], rel=1e-9)

    # The competing unit flow saw the same contention in both runs.
    unit_vote = [now for m, _s, _d, now in unit_log if m == "VOTE"]
    weighted_vote = [now for m, _s, _d, now in weighted_log if m == "VOTE"]
    assert weighted_vote[0] == pytest.approx(unit_vote[0], rel=1e-9)

    # Accounting matches: 5 messages, identical bytes.
    assert weighted_net.stats.messages_sent == unit_net.stats.messages_sent == 6
    assert weighted_net.stats.messages_delivered == unit_net.stats.messages_delivered == 6
    assert weighted_net.stats.total_bytes_delivered == pytest.approx(
        unit_net.stats.total_bytes_delivered
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_aggregate_endpoint_gives_per_client_capacity(engine):
    # A weight-4 flow into an aggregate 10 Mbit/s sink moves at 4×10 Mbit/s;
    # the same flow into a shared sink is capped at the sink's 10 Mbit/s.
    def completion_time(aggregate):
        network, log = build_network(
            "fair", engine, receiver_aggregate=aggregate, receiver_mbps=10.0
        )
        network.send(
            "server", "sink", Message(msg_type="DOC", size_bytes=4 * 125_000), weight=4
        )
        network.run(until=100.0)
        return log[0][3]

    # 4 × 125 kB = 500 kB: 0.1 s at 4 × 1.25 MB/s aggregate; 0.4 s when the
    # sink's single 1.25 MB/s downlink is the bottleneck.
    assert completion_time(True) == pytest.approx(0.1, rel=1e-6)
    assert completion_time(False) == pytest.approx(0.4, rel=1e-6)


@pytest.mark.parametrize("engine", ENGINES)
def test_fifo_weighted_flow_conserves_total_service(engine):
    # Under fifo a weight-w flow is served like w queued unit transfers:
    # the last byte lands at the same instant either way.
    def last_delivery(weighted):
        network, log = build_network("fifo", engine, receiver_aggregate=True)
        if weighted:
            network.send(
                "server", "sink", Message(msg_type="DOC", size_bytes=3 * 300_000), weight=3
            )
        else:
            for _ in range(3):
                network.send("server", "sink", Message(msg_type="DOC", size_bytes=300_000))
        network.run(until=100.0)
        return max(now for _m, _s, _d, now in log)

    assert last_delivery(True) == pytest.approx(last_delivery(False), rel=1e-9)


@pytest.mark.parametrize("engine", ENGINES)
def test_weighted_timeout_counts_every_aggregated_transfer(engine):
    network, _log = build_network("fair", engine, receiver_aggregate=True, receiver_mbps=0.001)
    timeouts = []
    network.send(
        "server",
        "sink",
        Message(msg_type="DOC", size_bytes=7 * 1_000_000),
        timeout=1.0,
        on_timeout=lambda message, dst: timeouts.append(dst),
        weight=7,
    )
    network.run(until=10.0)
    assert timeouts == ["sink"]
    assert network.stats.messages_timed_out == 7
    assert network.stats.messages_sent == 7
    assert network.stats.messages_delivered == 0


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("transport", ("fair", "fifo"))
def test_extreme_weight_flow_is_not_stranded(transport, engine):
    # A weight-10^7 flow (the 100M-client rows split across ~10 cohorts)
    # pushes per-transfer byte counts small enough that naive float
    # accumulation of remaining bytes could strand a residual below one
    # rate quantum.  The flow must drain completely and on schedule.
    network, log = build_network(transport, engine, receiver_aggregate=True, receiver_mbps=80.0)
    per_transfer = 1_000  # 1 kB per aggregated client
    network.send(
        "server",
        "sink",
        Message(msg_type="DOC", size_bytes=EXTREME_WEIGHT * per_transfer),
        weight=EXTREME_WEIGHT,
    )
    network.run(until=10_000.0)

    # Delivered exactly once, with every byte accounted for.
    doc_times = [now for m, _s, _d, now in log if m == "DOC"]
    assert len(doc_times) == 1
    assert network.stats.messages_sent == EXTREME_WEIGHT
    assert network.stats.messages_delivered == EXTREME_WEIGHT
    assert network.stats.total_bytes_delivered == pytest.approx(
        float(EXTREME_WEIGHT) * per_transfer, rel=1e-9
    )

    # On schedule.  Under fair the flow's weight claims the server's whole
    # 100 Mbit/s uplink (the aggregate sink offers 80 Mbit/s x weight), so
    # 10 GB at 12.5 MB/s.  Under fifo a queued uplink serves one transfer
    # at a time (concurrency 1), so the sink's per-client 80 Mbit/s
    # downlink binds instead.
    bottleneck = 12.5e6 if transport == "fair" else 10e6
    expected = (EXTREME_WEIGHT * per_transfer) / bottleneck
    assert doc_times[0] == pytest.approx(expected, rel=1e-6)

    # No float-precision stranding: nothing is left on the scheduler.
    assert network.active_flow_count() == 0


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_extreme_weight_flow_shares_fairly_with_unit_flow(engine):
    # Under fair sharing a weight-10^7 flow must not starve (or be starved
    # by) a competing unit flow, and neither may strand bytes.
    network, log = build_network("fair", engine, receiver_aggregate=True)
    network.send(
        "server",
        "sink",
        Message(msg_type="DOC", size_bytes=EXTREME_WEIGHT * 100),
        weight=EXTREME_WEIGHT,
    )
    network.send("server", "other", Message(msg_type="VOTE", size_bytes=100_000))
    network.run(until=10_000.0)

    kinds = sorted(m for m, _s, _d, _now in log)
    assert kinds == ["DOC", "VOTE"]
    # The unit flow's share is weight/(weight+1) ≈ 1/weight of the uplink —
    # tiny but nonzero; it still finishes once the giant flow drains.
    doc_time = next(now for m, _s, _d, now in log if m == "DOC")
    vote_time = next(now for m, _s, _d, now in log if m == "VOTE")
    assert vote_time >= doc_time
    assert network.active_flow_count() == 0
    assert network.stats.messages_delivered == EXTREME_WEIGHT + 1


def test_invalid_weight_rejected():
    network, _log = build_network("fair", "lazy")
    with pytest.raises(Exception):
        network.send("server", "sink", Message(msg_type="X", size_bytes=10), weight=0)


def test_per_client_link_config_constructor():
    link = LinkConfig.per_client(uplink_mbps=10.0, downlink_mbps=50.0)
    assert link.aggregate
    assert link.uplink.rate_at(0.0) == pytest.approx(1.25e6)
    assert link.downlink.rate_at(0.0) == pytest.approx(6.25e6)
    assert not LinkConfig.symmetric_mbps(10.0).aggregate
