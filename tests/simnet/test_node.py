"""Protocol-node base class tests."""

import pytest

from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import NodeNotAttachedError, ProtocolNode


class Echoer(ProtocolNode):
    """Replies PONG to every PING and counts timer firings."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []
        self.timer_fired = 0

    def on_start(self):
        self.log("notice", "started")

    def on_message(self, message, now):
        self.received.append(message.msg_type)
        if message.msg_type == "PING":
            self.send(message.sender, Message(msg_type="PONG", size_bytes=10))

    def bump(self):
        self.timer_fired += 1


def make_pair():
    network = SimNetwork(default_latency_s=0.01)
    a, b = Echoer("a"), Echoer("b")
    network.add_node(a, LinkConfig.symmetric_mbps(10))
    network.add_node(b, LinkConfig.symmetric_mbps(10))
    return network, a, b


def test_detached_node_raises():
    node = Echoer("lonely")
    with pytest.raises(NodeNotAttachedError):
        node.send("other", Message(msg_type="X", size_bytes=1))
    with pytest.raises(NodeNotAttachedError):
        _ = node.now


def test_request_response_round_trip():
    network, a, b = make_pair()
    a.send("b", Message(msg_type="PING", size_bytes=10))
    network.run()
    assert b.received == ["PING"]
    assert a.received == ["PONG"]


def test_on_start_called_by_network_start():
    network, a, b = make_pair()
    network.start()
    network.run()
    assert network.trace.contains("started", node="a")
    assert network.trace.contains("started", node="b")


def test_timers_and_cancellation():
    network, a, b = make_pair()
    keep = a.set_timer(1.0, a.bump)
    cancel = a.set_timer(2.0, a.bump)
    a.cancel_timer(cancel)
    a.set_timer_at(3.0, a.bump)
    network.run()
    assert a.timer_fired == 2
    assert keep is not None


def test_unimplemented_on_message_raises():
    node = ProtocolNode("base")
    with pytest.raises(NotImplementedError):
        node.on_message(Message(msg_type="X", size_bytes=1), 0.0)


def test_broadcast_targets_subset():
    network, a, b = make_pair()
    c = Echoer("c")
    network.add_node(c, LinkConfig.symmetric_mbps(10))
    sent = a.broadcast(lambda dst: Message(msg_type="PING", size_bytes=10), targets=["c"])
    network.run()
    assert sent == 1
    assert c.received == ["PING"]
    assert b.received == []
