"""Trace log tests (Figure 1 rendering)."""

from datetime import datetime

import pytest

from repro.simnet.trace import TraceLog, TraceRecord


def test_record_and_filter_by_node_and_level():
    log = TraceLog()
    log.record(1.0, "auth-0", "info", "hello")
    log.record(2.0, "auth-0", "warn", "problem")
    log.record(3.0, "auth-1", "notice", "other node")
    assert len(log) == 3
    assert len(log.records(node="auth-0")) == 2
    assert len(log.records(min_level="warn")) == 1
    assert len(log.records(node="auth-0", min_level="notice")) == 1


def test_predicate_filter_and_contains():
    log = TraceLog()
    log.record(1.0, "auth-0", "notice", "We're missing votes from 5 authorities")
    assert log.contains("missing votes")
    assert not log.contains("missing votes", node="auth-1")
    assert len(log.records(predicate=lambda r: "5 authorities" in r.message)) == 1


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        TraceLog().record(0.0, "auth-0", "verbose", "nope")


def test_format_matches_tor_log_style():
    record = TraceRecord(time=30.011, node="auth-0", level="notice", message="Time to vote.")
    line = record.format(epoch=datetime(2025, 1, 1, 1, 24, 0))
    assert line == "Jan 01 01:24:30.011 [notice] Time to vote."


def test_format_filters_info_by_default():
    log = TraceLog()
    log.record(0.5, "auth-0", "debug", "low level detail")
    log.record(1.0, "auth-0", "notice", "Time to vote.")
    text = log.format(node="auth-0")
    assert "Time to vote." in text
    assert "low level detail" not in text
