"""Flow-transport tests: bandwidth sharing, latency, timeouts, DDoS windows."""

import pytest

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork, UnknownNodeError
from repro.simnet.node import ProtocolNode
from repro.utils.validation import ValidationError

ALL_TRANSPORTS = ("fair", "fifo", "latency-only")


class Recorder(ProtocolNode):
    """Node that records every delivery."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message.msg_type, message.sender, now, message.size_bytes))


def make_network(node_names, mbps=8.0, latency=0.0, transport="fair"):
    network = SimNetwork(transport=transport, default_latency_s=latency)
    nodes = {}
    for name in node_names:
        node = Recorder(name)
        network.add_node(node, LinkConfig.symmetric_mbps(mbps))
        nodes[name] = node
    return network, nodes


def test_single_transfer_time_matches_bandwidth():
    # 8 Mbit/s = 1 MB/s; a 2 MB message takes 2 seconds plus latency.
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.5)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=2_000_000))
    network.run()
    (_type, sender, arrival, _size) = nodes["b"].received[0]
    assert sender == "a"
    assert arrival == pytest.approx(2.5, abs=1e-6)


def test_zero_size_message_takes_only_latency():
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.25)
    network.send("a", "b", Message(msg_type="PING", size_bytes=0))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(0.25)


def test_fair_sharing_splits_uplink():
    # Two concurrent 1 MB transfers over a 1 MB/s uplink finish together at ~2 s.
    network, nodes = make_network(["a", "b", "c"], mbps=8.0)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(2.0, abs=1e-6)
    assert nodes["c"].received[0][2] == pytest.approx(2.0, abs=1e-6)


def test_fifo_serves_uplink_in_order():
    network, nodes = make_network(["a", "b", "c"], mbps=8.0, transport="fifo")
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(1.0, abs=1e-6)
    assert nodes["c"].received[0][2] == pytest.approx(2.0, abs=1e-6)


def test_downlink_is_also_a_bottleneck():
    # Two senders into one receiver share the receiver's downlink.
    network, nodes = make_network(["a", "b", "c"], mbps=8.0)
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("b", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    arrivals = sorted(record[2] for record in nodes["c"].received)
    assert arrivals[-1] == pytest.approx(2.0, abs=1e-6)


def test_flow_timeout_aborts_and_notifies_sender():
    network, nodes = make_network(["a", "b"], mbps=0.008)  # 1 kB/s
    timed_out = []
    network.send(
        "a",
        "b",
        Message(msg_type="DOC", size_bytes=1_000_000),
        timeout=5.0,
        on_timeout=lambda message, dst: timed_out.append(dst),
    )
    network.run()
    assert timed_out == ["b"]
    assert nodes["b"].received == []
    assert network.stats.messages_timed_out == 1


def test_ddos_window_stalls_then_recovers():
    # 1 MB at 1 MB/s, but the sender is throttled to ~zero during [0, 10):
    # the transfer completes shortly after the window lifts.
    network = SimNetwork(default_latency_s=0.0)
    attacked = BandwidthSchedule.constant(1_000_000.0).with_window(0, 10, 1.0)
    sender, receiver = Recorder("a"), Recorder("b")
    network.add_node(sender, LinkConfig.symmetric(attacked))
    network.add_node(receiver, LinkConfig.symmetric_mbps(8.0))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    arrival = receiver.received[0][2]
    assert 10.0 < arrival < 11.1


def test_on_delivered_callback_and_stats():
    network, nodes = make_network(["a", "b"], mbps=8.0)
    delivered = []
    network.send(
        "a",
        "b",
        Message(msg_type="DOC", size_bytes=500_000),
        on_delivered=lambda message, dst, when: delivered.append((dst, when)),
    )
    network.run()
    assert delivered and delivered[0][0] == "b"
    assert network.stats.messages_sent == 1
    assert network.stats.messages_delivered == 1
    assert network.stats.bytes_delivered["a"] == 500_000
    assert network.stats.bytes_by_type["DOC"] == 500_000


def test_pairwise_latency_override():
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.05)
    network.set_latency("a", "b", 0.4)
    network.send("a", "b", Message(msg_type="PING", size_bytes=0))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(0.4)


def test_errors_for_bad_usage():
    network, nodes = make_network(["a", "b"])
    with pytest.raises(UnknownNodeError):
        network.send("a", "zzz", Message(msg_type="X", size_bytes=1))
    with pytest.raises(UnknownNodeError):
        network.send("zzz", "a", Message(msg_type="X", size_bytes=1))
    with pytest.raises(ValidationError):
        network.send("a", "a", Message(msg_type="X", size_bytes=1))
    with pytest.raises(ValidationError):
        network.add_node(Recorder("a"), LinkConfig.symmetric_mbps(1))
    with pytest.raises(ValidationError):
        SimNetwork(scheduling="weighted")
    with pytest.raises(ValidationError):
        SimNetwork(transport="weighted")
    with pytest.raises(ValidationError):
        SimNetwork(transport="fair", scheduling="fifo")


def test_broadcast_helper_sends_to_all_peers():
    network, nodes = make_network(["a", "b", "c", "d"], mbps=80.0)
    count = nodes["a"].broadcast(lambda dst: Message(msg_type="HELLO", size_bytes=1000))
    network.run()
    assert count == 3
    for name in ("b", "c", "d"):
        assert len(nodes[name].received) == 1


def test_set_link_mid_run_affects_future_transfers():
    network, nodes = make_network(["a", "b"], mbps=8.0)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    first_arrival = nodes["b"].received[0][2]
    # Throttle and send again: the second transfer is much slower.
    network.set_link("a", LinkConfig.symmetric_mbps(0.8))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    second_arrival = nodes["b"].received[1][2]
    assert second_arrival - first_arrival > 9.0


# -- the latency-only fast model ----------------------------------------------

def test_latency_only_flows_do_not_share_bandwidth():
    # Two concurrent 1 MB transfers over one 1 MB/s uplink BOTH finish at
    # ~1 s: the whole point of the model is that concurrency is free.
    network, nodes = make_network(["a", "b", "c"], mbps=8.0, transport="latency-only")
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(1.0, abs=1e-6)
    assert nodes["c"].received[0][2] == pytest.approx(1.0, abs=1e-6)


def test_latency_only_respects_the_slower_link_side():
    network = SimNetwork(transport="latency-only", default_latency_s=0.0)
    fast, slow = Recorder("fast"), Recorder("slow")
    network.add_node(fast, LinkConfig.symmetric_mbps(8.0))  # 1 MB/s
    network.add_node(slow, LinkConfig.symmetric_mbps(4.0))  # 500 kB/s
    network.send("fast", "slow", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert slow.received[0][2] == pytest.approx(2.0, abs=1e-6)


def test_latency_only_timeouts_and_throttling_windows_still_apply():
    # Destination throttled to ~zero on [0, 10): the transfer stalls through
    # the window and completes shortly after it lifts; a tighter deadline
    # aborts a second transfer inside the window.
    network = SimNetwork(transport="latency-only", default_latency_s=0.0)
    sender, receiver = Recorder("a"), Recorder("b")
    throttled = BandwidthSchedule.constant(1_000_000.0).with_window(0, 10, 1.0)
    network.add_node(sender, LinkConfig.symmetric_mbps(80.0))
    network.add_node(receiver, LinkConfig.symmetric(throttled))
    timed_out = []
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send(
        "a",
        "b",
        Message(msg_type="DOC", size_bytes=1_000_000),
        timeout=5.0,
        on_timeout=lambda message, dst: timed_out.append(dst),
    )
    network.run()
    assert timed_out == ["b"]
    assert len(receiver.received) == 1
    assert 10.0 < receiver.received[0][2] < 11.1
    assert network.stats.messages_timed_out == 1


def test_latency_only_set_link_rerates_in_flight_flows():
    network, nodes = make_network(["a", "b"], mbps=8.0, transport="latency-only")
    network.send("a", "b", Message(msg_type="DOC", size_bytes=2_000_000))
    # Halfway through (1 s in, 1 MB left), throttle the uplink 10x: the
    # remainder takes 10 s instead of 1 s.
    network.simulator.schedule(1.0, network.set_link, "a", LinkConfig.symmetric_mbps(0.8))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(11.0, abs=1e-6)


def test_zero_rate_flow_without_deadline_hangs_not_crashes():
    network = SimNetwork(transport="latency-only", default_latency_s=0.0)
    network.add_node(Recorder("a"), LinkConfig.symmetric(BandwidthSchedule.constant(0.0)))
    network.add_node(Recorder("b"), LinkConfig.symmetric_mbps(8.0))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000))
    network.run()
    assert network.active_flow_count() == 1  # starved forever, like "fair"


# -- residual-byte clamping (float-drift regression) ---------------------------

@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_flows_never_deliver_with_negative_residual(transport):
    """Completing flows must hand a residual of exactly 0.0 to delivery.

    Guards the float-drift clamp: accumulated ``remaining -= rate * elapsed``
    chips may leave epsilon-scale residue (of either sign) at the completion
    instant, and the scheduler clamps it exactly once before delivery.
    """
    network, nodes = make_network(["a", "b", "c"], mbps=8.0, transport=transport)
    residuals = []
    completer = network._complete_flow

    def spying_complete(flow):
        residuals.append(flow.remaining)
        completer(flow)

    network._scheduler._complete = spying_complete
    # Awkward sizes and competing flows maximise float chipping.
    for size in (999_983, 333_331, 123_457, 777_773):
        network.send("a", "b", Message(msg_type="DOC", size_bytes=size))
        network.send("a", "c", Message(msg_type="DOC", size_bytes=size // 3))
        network.send("c", "b", Message(msg_type="DOC", size_bytes=size // 7))
    network.run()
    assert len(residuals) == network.stats.messages_delivered
    assert residuals == [0.0] * len(residuals)


@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
def test_late_virtual_time_completions_do_not_overshoot(transport):
    """Transfers started deep into a run complete cleanly under every model.

    At large virtual times the completion event's float rounding error grows
    with ``ulp(now)``; an unclamped progress chip then advances a flow past
    its residual and trips the negative-residual guard (a crash observed
    with latency-only sends scheduled from t = 3000 s).
    """
    network, nodes = make_network(["a", "b", "c"], mbps=250.0, transport=transport)
    for i in range(40):
        network.simulator.schedule(
            3000.0 + 0.37 * i,
            network.send, "a", "b", Message(msg_type="DOC", size_bytes=1_000_000 + i),
        )
        network.simulator.schedule(
            3000.0 + 0.53 * i,
            network.send, "c", "b", Message(msg_type="DOC", size_bytes=777_777 + i),
        )
    network.run()
    assert network.stats.messages_delivered == 80
    assert network.active_flow_count() == 0


def test_sub_ulp_residual_counts_as_complete():
    """Regression for a live-lock found by the conformance properties.

    A flow can strand with a residual microscopically above the byte epsilon
    whose transfer time is below the float resolution of the current virtual
    time: its completion event then lands *at* ``now``, the zero-width
    progress chip moves nothing, and the recompute loop spins forever.  Such
    a flow must count as complete.
    """
    from repro.simnet.flows import Flow, FlowScheduler

    flow = Flow(
        flow_id=1, src="a", dst="b",
        message=Message(msg_type="DOC", size_bytes=1),
        start_time=0.0, deadline=None, on_timeout=None, on_delivered=None,
    )
    flow.rate = 31_250_000.0
    flow.remaining = 1.5e-6  # above the 1e-6 byte epsilon
    # Early in the run the residual still advances time: not complete.
    assert not FlowScheduler._is_complete(flow, now=0.0)
    # Late in the run (2e-6 / 31.25e6 s is below one ulp of `now`) it cannot:
    # the flow is done, not live-locked.
    assert FlowScheduler._is_complete(flow, now=623.437570784)
    # The plain byte-epsilon case is unchanged.
    flow.remaining = 5e-7
    assert FlowScheduler._is_complete(flow, now=0.0)
