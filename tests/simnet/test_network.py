"""Flow-transport tests: bandwidth sharing, latency, timeouts, DDoS windows."""

import pytest

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork, UnknownNodeError
from repro.simnet.node import ProtocolNode
from repro.utils.validation import ValidationError


class Recorder(ProtocolNode):
    """Node that records every delivery."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message.msg_type, message.sender, now, message.size_bytes))


def make_network(node_names, mbps=8.0, latency=0.0, scheduling="fair"):
    network = SimNetwork(scheduling=scheduling, default_latency_s=latency)
    nodes = {}
    for name in node_names:
        node = Recorder(name)
        network.add_node(node, LinkConfig.symmetric_mbps(mbps))
        nodes[name] = node
    return network, nodes


def test_single_transfer_time_matches_bandwidth():
    # 8 Mbit/s = 1 MB/s; a 2 MB message takes 2 seconds plus latency.
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.5)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=2_000_000))
    network.run()
    (_type, sender, arrival, _size) = nodes["b"].received[0]
    assert sender == "a"
    assert arrival == pytest.approx(2.5, abs=1e-6)


def test_zero_size_message_takes_only_latency():
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.25)
    network.send("a", "b", Message(msg_type="PING", size_bytes=0))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(0.25)


def test_fair_sharing_splits_uplink():
    # Two concurrent 1 MB transfers over a 1 MB/s uplink finish together at ~2 s.
    network, nodes = make_network(["a", "b", "c"], mbps=8.0)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(2.0, abs=1e-6)
    assert nodes["c"].received[0][2] == pytest.approx(2.0, abs=1e-6)


def test_fifo_serves_uplink_in_order():
    network, nodes = make_network(["a", "b", "c"], mbps=8.0, scheduling="fifo")
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(1.0, abs=1e-6)
    assert nodes["c"].received[0][2] == pytest.approx(2.0, abs=1e-6)


def test_downlink_is_also_a_bottleneck():
    # Two senders into one receiver share the receiver's downlink.
    network, nodes = make_network(["a", "b", "c"], mbps=8.0)
    network.send("a", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.send("b", "c", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    arrivals = sorted(record[2] for record in nodes["c"].received)
    assert arrivals[-1] == pytest.approx(2.0, abs=1e-6)


def test_flow_timeout_aborts_and_notifies_sender():
    network, nodes = make_network(["a", "b"], mbps=0.008)  # 1 kB/s
    timed_out = []
    network.send(
        "a",
        "b",
        Message(msg_type="DOC", size_bytes=1_000_000),
        timeout=5.0,
        on_timeout=lambda message, dst: timed_out.append(dst),
    )
    network.run()
    assert timed_out == ["b"]
    assert nodes["b"].received == []
    assert network.stats.messages_timed_out == 1


def test_ddos_window_stalls_then_recovers():
    # 1 MB at 1 MB/s, but the sender is throttled to ~zero during [0, 10):
    # the transfer completes shortly after the window lifts.
    network = SimNetwork(default_latency_s=0.0)
    attacked = BandwidthSchedule.constant(1_000_000.0).with_window(0, 10, 1.0)
    sender, receiver = Recorder("a"), Recorder("b")
    network.add_node(sender, LinkConfig.symmetric(attacked))
    network.add_node(receiver, LinkConfig.symmetric_mbps(8.0))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    arrival = receiver.received[0][2]
    assert 10.0 < arrival < 11.1


def test_on_delivered_callback_and_stats():
    network, nodes = make_network(["a", "b"], mbps=8.0)
    delivered = []
    network.send(
        "a",
        "b",
        Message(msg_type="DOC", size_bytes=500_000),
        on_delivered=lambda message, dst, when: delivered.append((dst, when)),
    )
    network.run()
    assert delivered and delivered[0][0] == "b"
    assert network.stats.messages_sent == 1
    assert network.stats.messages_delivered == 1
    assert network.stats.bytes_delivered["a"] == 500_000
    assert network.stats.bytes_by_type["DOC"] == 500_000


def test_pairwise_latency_override():
    network, nodes = make_network(["a", "b"], mbps=8.0, latency=0.05)
    network.set_latency("a", "b", 0.4)
    network.send("a", "b", Message(msg_type="PING", size_bytes=0))
    network.run()
    assert nodes["b"].received[0][2] == pytest.approx(0.4)


def test_errors_for_bad_usage():
    network, nodes = make_network(["a", "b"])
    with pytest.raises(UnknownNodeError):
        network.send("a", "zzz", Message(msg_type="X", size_bytes=1))
    with pytest.raises(UnknownNodeError):
        network.send("zzz", "a", Message(msg_type="X", size_bytes=1))
    with pytest.raises(ValidationError):
        network.send("a", "a", Message(msg_type="X", size_bytes=1))
    with pytest.raises(ValidationError):
        network.add_node(Recorder("a"), LinkConfig.symmetric_mbps(1))
    with pytest.raises(ValidationError):
        SimNetwork(scheduling="weighted")


def test_broadcast_helper_sends_to_all_peers():
    network, nodes = make_network(["a", "b", "c", "d"], mbps=80.0)
    count = nodes["a"].broadcast(lambda dst: Message(msg_type="HELLO", size_bytes=1000))
    network.run()
    assert count == 3
    for name in ("b", "c", "d"):
        assert len(nodes[name].received) == 1


def test_set_link_mid_run_affects_future_transfers():
    network, nodes = make_network(["a", "b"], mbps=8.0)
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    first_arrival = nodes["b"].received[0][2]
    # Throttle and send again: the second transfer is much slower.
    network.set_link("a", LinkConfig.symmetric_mbps(0.8))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=1_000_000))
    network.run()
    second_arrival = nodes["b"].received[1][2]
    assert second_arrival - first_arrival > 9.0
