"""The ``tcp`` link model: convergence, loss coupling, and engine wiring.

The model's contract has four faces, each pinned here:

* **Fair-share convergence.**  On loss-free static links, Reno's window
  growth plus the queue-delay RTT sample make the window-limited rate
  converge to the fair share *from above*, so after ramp-up every flow's
  assigned rate ``min(share, window/estRTT)`` equals exactly what the
  ``fair`` model would assign — hypothesis drives this across topologies,
  on both the lazy and (numpy present) vector engines.
* **Loss coupling.**  A drop-typed :class:`~repro.faults.plan.LinkFault`
  (the form :meth:`DDoSAttackPlan.fault_plan` emits for residual-bandwidth
  floods) must slow a tcp transfer down via multiplicative decrease — the
  fault and transport layers finally interact.
* **Reno transitions.**  The single state machine in
  :meth:`TcpLinkModel.advance_flow` distinguishes fast retransmit (3
  dup-acks halve the window and stay in congestion avoidance) from timeout
  (cwnd back to 1, RTO doubling) — unit-pinned and hypothesis-driven over
  scripted loss/ack sequences.
* **Engine wiring.**  ``transport="tcp"`` runs end-to-end on the legacy,
  lazy, and vector engines (each pinned by its own golden trace — the
  trajectories differ by design, see ``test_transport_golden.py``); vector
  requests keep the vector engine when numpy is present and the result
  cache suffixes their entries accordingly, downgrading to lazy only on
  pure-Python installs.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFault
from repro.protocols.runner import execute_spec
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec
from repro.simnet.flows import effective_shared_engine, use_shared_engine
from repro.simnet.linkmodel import (
    TCP_DUPACK_THRESHOLD,
    TCP_INITIAL_CWND,
    TCP_INITIAL_SSTHRESH,
    TCP_MAX_RTO_S,
    TCP_MIN_RTO_S,
    TcpLinkModel,
)
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode

from tests.simnet.test_transport_golden import run_transport_workload

REL_TOLERANCE = 1e-6


class _Sink(ProtocolNode):
    def __init__(self, name, deliveries):
        super().__init__(name)
        self._deliveries = deliveries

    def on_message(self, message, now):
        self._deliveries.append((message.msg_type, now))


def _fan_in_network(transport, flow_count, sink_mbps):
    """``flow_count`` sources sending huge transfers into one sink."""
    deliveries = []
    network = SimNetwork(transport=transport, default_latency_s=0.02)
    network.add_node(_Sink("sink", deliveries), LinkConfig.symmetric_mbps(sink_mbps))
    for index in range(flow_count):
        network.add_node(
            _Sink("src%d" % index, deliveries), LinkConfig.symmetric_mbps(sink_mbps)
        )
    for index in range(flow_count):
        network.send(
            "src%d" % index, "sink", Message(msg_type="DOC", size_bytes=2e9)
        )
    return network, deliveries


def _active_rates(network):
    return sorted(flow.rate for flow in network._scheduler._flows.values())


# -- fair-share convergence ----------------------------------------------------

@pytest.mark.parametrize("engine", ["lazy", "vector"])
@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    flow_count=st.integers(min_value=1, max_value=6),
    sink_mbps=st.floats(min_value=4.0, max_value=64.0),
)
def test_tcp_throughput_converges_to_the_fair_share_on_loss_free_links(
    engine, flow_count, sink_mbps
):
    # The sink's downlink is the bottleneck (each source uplink could carry
    # the whole sink capacity alone), so fair assigns every flow exactly
    # capacity/flow_count.  After slow-start ramp-up the tcp rate must sit
    # on the same value: the window cap converges to the share from above
    # and min(share, window rate) collapses to the share.  The property
    # holds on the scalar lazy path and the SoA vector path alike (the
    # vector request downgrades to lazy on numpy-less installs, which keeps
    # this green there too).
    with use_shared_engine(engine):
        tcp_net, _ = _fan_in_network("tcp", flow_count, sink_mbps)
        tcp_net.run(until=60.0)
        fair_net, _ = _fan_in_network("fair", flow_count, sink_mbps)
        fair_net.run(until=60.0)

    tcp_rates = _active_rates(tcp_net)
    fair_rates = _active_rates(fair_net)
    assert len(tcp_rates) == len(fair_rates) == flow_count
    for tcp_rate, fair_rate in zip(tcp_rates, fair_rates):
        assert math.isclose(tcp_rate, fair_rate, rel_tol=REL_TOLERANCE), (
            "tcp rate %r did not converge to fair share %r" % (tcp_rate, fair_rate)
        )


@pytest.mark.parametrize("engine", ["lazy", "legacy"])
def test_tcp_slow_start_delays_but_does_not_change_delivery(engine):
    # One unconstrained transfer: tcp must deliver the same bytes as fair,
    # strictly later (the window ramp costs time), on both engines.
    def completion(transport):
        with use_shared_engine(engine):
            deliveries = []
            network = SimNetwork(transport=transport, default_latency_s=0.02)
            network.add_node(_Sink("a", deliveries), LinkConfig.symmetric_mbps(8.0))
            network.add_node(_Sink("b", deliveries), LinkConfig.symmetric_mbps(8.0))
            network.send("a", "b", Message(msg_type="DOC", size_bytes=5_000_000))
            network.run(until=300.0)
        assert [kind for kind, _ in deliveries] == ["DOC"]
        return deliveries[0][1]

    tcp_done = completion("tcp")
    fair_done = completion("fair")
    assert tcp_done > fair_done
    # The ramp-up penalty is bounded: a few dozen RTTs, not a stall.
    assert tcp_done < fair_done + 10.0


# -- cross-engine agreement ----------------------------------------------------

def test_legacy_and_lazy_engines_agree_on_the_tcp_golden_workload():
    # tcp makes no byte-identity claim across engines (ack ticks land on
    # different instants), but on the canonical workload the two must agree
    # on every event's kind, pair, size and order, with timestamps within
    # the conformance tolerance.
    with use_shared_engine("legacy"):
        legacy = run_transport_workload("tcp")
    with use_shared_engine("lazy"):
        lazy = run_transport_workload("tcp")
    assert legacy["stats"] == lazy["stats"]
    assert len(legacy["events"]) == len(lazy["events"])
    for old, new in zip(legacy["events"], lazy["events"]):
        assert old[:5] == new[:5]
        assert math.isclose(old[5], new[5], rel_tol=REL_TOLERANCE, abs_tol=1e-9)


# -- loss coupling -------------------------------------------------------------

def _timed_transfer(fault_plan):
    deliveries = []
    network = SimNetwork(transport="tcp", default_latency_s=0.02)
    network.add_node(_Sink("auth0", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("auth1", deliveries), LinkConfig.symmetric_mbps(8.0))
    if fault_plan is not None:
        injector = FaultInjector(
            fault_plan, seed=7, authority_names={0: "auth0", 1: "auth1"}
        )
        injector.install(network)
    network.send("auth0", "auth1", Message(msg_type="DOC", size_bytes=4_000_000))
    network.run(until=600.0)
    assert [kind for kind, _ in deliveries] == ["DOC"]
    return deliveries[0][1]


def test_drop_typed_faults_collapse_the_congestion_window():
    # A heavy loss window opens after the transfer is underway and closes
    # well before it can finish (so the send draw at t=0 and the residual
    # delivery check both see zero exposure): every ack round inside the
    # window sees segment loss, Tahoe collapses cwnd to 1 and doubles the
    # RTO, and the transfer must finish measurably later than the loss-free
    # run.  This is the seam figure12's drop-typed flood exercises.
    clean = _timed_transfer(None)
    lossy = _timed_transfer(
        FaultPlan(
            link_faults=(
                LinkFault(
                    authority_id=1,
                    drop_probability=0.9,
                    loss_windows=((0.5, 30.0),),
                ),
            )
        )
    )
    assert clean < 30.0 < lossy
    assert lossy > clean + 20.0


def test_tcp_loss_event_draws_only_under_active_loss_faults():
    plan = FaultPlan(
        link_faults=(
            LinkFault(authority_id=0, drop_probability=0.5, loss_windows=((10.0, 20.0),)),
            LinkFault(authority_id=1, partition_windows=((30.0, 40.0),)),
        )
    )
    injector = FaultInjector(plan, seed=3, authority_names={0: "a", 1: "b"})
    # Outside every window: no exposure, no draw, never a loss.
    assert injector.tcp_loss_event("a", "b", 5.0) is False
    assert ("tcp-loss", "a", "b") not in injector._draw_streams
    # Partitions are certain loss without consuming a draw.
    assert injector.tcp_loss_event("a", "b", 35.0) is True
    assert ("tcp-loss", "a", "b") not in injector._draw_streams
    # Inside the loss window the pair's dedicated stream is consumed, and a
    # whole window of segments is more likely to see loss than one segment.
    saw_loss = [injector.tcp_loss_event("a", "b", 15.0, segments=64) for _ in range(20)]
    assert ("tcp-loss", "a", "b") in injector._draw_streams
    assert any(saw_loss)
    # Congestion signals are not dropped messages.
    assert injector.messages_dropped == 0


# -- engine wiring -------------------------------------------------------------

@pytest.mark.parametrize("engine", ["lazy", "legacy", "vector"])
def test_tcp_spec_runs_end_to_end_on_every_engine_request(engine):
    spec = RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=5,
        seed=5,
        max_time=700.0,
        transport="tcp",
    )
    with use_shared_engine(engine):
        summary = execute_spec(spec).summary()
    assert summary["success"] is True
    assert summary["stats"]["messages_delivered"] > 0


def test_vector_requests_keep_the_vector_engine_for_tcp():
    # Since tcp grew a vector policy it resolves exactly like fair/fifo: a
    # vector request keeps the vector engine when numpy is present and
    # downgrades to lazy only on pure-Python installs.
    from repro.simnet.vector_sched import vector_available

    expected = "vector" if vector_available() else "lazy"
    with use_shared_engine("vector"):
        assert effective_shared_engine(transport="tcp") == expected
        assert effective_shared_engine(transport="fair") == expected
    # Default requests still resolve to lazy.
    assert effective_shared_engine(transport="tcp") == "lazy"


def test_result_cache_keys_tcp_vector_requests_under_the_vector_suffix(tmp_path):
    cache = ResultCache(tmp_path)
    tcp_spec = RunSpec(protocol="current", relay_count=30, transport="tcp")
    lazy_path = cache.path_for(tcp_spec)
    with use_shared_engine("vector"):
        from repro.simnet.vector_sched import vector_available

        if vector_available():
            # A tcp vector run stores under its own suffixed name — the old
            # downgrade keyed these as lazy, which must never happen again.
            vector_path = cache.path_for(tcp_spec)
            assert vector_path.name.endswith(".vector.json")
            assert vector_path != lazy_path
        else:
            # Pure-Python installs really do run lazy, and must hit lazy.
            assert cache.path_for(tcp_spec) == lazy_path


# -- Reno transitions ----------------------------------------------------------

class _ScriptedInjector:
    """A fault injector whose tcp_loss_event returns a scripted sequence."""

    def __init__(self, script):
        self._script = list(script)
        self.calls = []

    def tcp_loss_event(self, src, dst, now, segments=1):
        self.calls.append((src, dst, now, segments))
        return self._script.pop(0) if self._script else False


class _ScriptedNetwork:
    """Just enough network for TcpLinkModel.attach: latency + injector."""

    def __init__(self, injector, latency_s=0.02):
        self.fault_injector = injector
        self._latency_s = latency_s

    def latency(self, src, dst):
        return self._latency_s


def _scripted_model(script):
    from tests.simnet.test_linkmodel import make_flow

    model = TcpLinkModel()
    model.attach(_ScriptedNetwork(_ScriptedInjector(script)))
    flow = make_flow(1, "a", "b", 1_000_000)
    flow.rate = 1_000_000.0
    return model, flow, model.state_of(flow, 0.0)


def _grow_window(model, flow, state, rounds):
    """Clean ack rounds (script exhausted => no loss) open the window."""
    now = 0.0
    for _ in range(rounds):
        now = state.next_tick
        model.advance_flow(flow, state, now)
    return now


def test_fast_retransmit_halves_the_window_without_slow_start():
    # Grow to a window comfortably above the dup-ack threshold, then lose a
    # segment while acks still flow: Reno halves (cwnd = ssthresh = old/2)
    # instead of collapsing to 1, keeps the RTO untouched, and stays on the
    # ack clock (next tick one estRTT out, not one RTO).
    model, flow, state = _scripted_model([])
    now = _grow_window(model, flow, state, 6)
    assert state.cwnd >= TCP_DUPACK_THRESHOLD + 1
    before_cwnd, before_rto = state.cwnd, state.rto
    model._network.fault_injector._script = [True]
    now = state.next_tick
    model.advance_flow(flow, state, now)
    assert state.cwnd == max(before_cwnd / 2.0, 2.0)
    assert state.ssthresh == state.cwnd
    assert state.rto == before_rto
    assert state.dupacks == 0
    assert state.next_tick == pytest.approx(now + state.srtt)


def test_small_window_loss_times_out_like_tahoe():
    # cwnd == 1 cannot raise three duplicate acks: the lost segment recovers
    # by retransmission timeout — cwnd back to 1, RTO doubled — exactly the
    # Tahoe-era behaviour.
    model, flow, state = _scripted_model([True])
    before_rto = state.rto
    model.advance_flow(flow, state, state.next_tick)
    assert state.cwnd == TCP_INITIAL_CWND
    assert state.rto == min(before_rto * 2.0, TCP_MAX_RTO_S)
    assert state.dupacks == 0


def test_starved_link_times_out_with_exponential_backoff():
    # granted == 0 means no acks: repeated timeouts double the RTO up to the
    # cap, regardless of loss draws.
    model, flow, state = _scripted_model([])
    flow.rate = 0.0
    rtos = []
    for _ in range(12):
        model.advance_flow(flow, state, state.next_tick)
        rtos.append(state.rto)
        assert state.cwnd == TCP_INITIAL_CWND
    for earlier, later in zip(rtos, rtos[1:]):
        assert later == min(earlier * 2.0, TCP_MAX_RTO_S)
    assert rtos[-1] == TCP_MAX_RTO_S


def test_clean_round_resets_the_dupack_count():
    # A sub-threshold dup-ack residue (from a loss at cwnd == 3: two
    # dupacks, then timeout resets — so craft one via direct state) must not
    # leak across a clean round into a later fast retransmit.
    model, flow, state = _scripted_model([])
    _grow_window(model, flow, state, 4)
    state.dupacks = TCP_DUPACK_THRESHOLD - 1
    model.advance_flow(flow, state, state.next_tick)
    assert state.dupacks == 0


@settings(max_examples=30, deadline=None)
@given(script=st.lists(st.booleans(), min_size=1, max_size=40))
def test_reno_state_machine_invariants_hold_over_any_loss_sequence(script):
    # Whatever the loss pattern, the Reno state machine keeps its
    # invariants: cwnd never below 1 nor above ssthresh-at-halving, ssthresh
    # never below 2, RTO within [min, max], dup-ack residue strictly below
    # the threshold, and the next tick always in the future.
    model, flow, state = _scripted_model(script)
    for _ in range(len(script)):
        now = state.next_tick
        before_cwnd = state.cwnd
        model.advance_flow(flow, state, now)
        assert state.cwnd >= TCP_INITIAL_CWND
        assert state.cwnd <= max(before_cwnd * 2.0, before_cwnd + 1.0)
        assert state.ssthresh >= 2.0
        assert TCP_MIN_RTO_S <= state.rto <= TCP_MAX_RTO_S
        assert 0 <= state.dupacks < TCP_DUPACK_THRESHOLD
        assert state.next_tick > now


def test_tcp_model_runs_detached_from_a_network():
    # Direct assign_rates calls (no SimNetwork, no injector) must work for
    # unit tests and third-party schedulers: default RTT, no loss events.
    from tests.simnet.test_linkmodel import links_for, make_flow

    model = TcpLinkModel()
    flows = {1: make_flow(1, "a", "b", 1_000_000)}
    links = links_for({"a": 8.0, "b": 8.0})
    model.assign_rates(flows, links, 0.0)
    assert flows[1].rate > 0.0
    state = model.state_of(flows[1], 0.0)
    assert state.cwnd >= 1.0
    assert state.ssthresh == TCP_INITIAL_SSTHRESH
