"""The ``tcp`` link model: convergence, loss coupling, and engine wiring.

The model's contract has three faces, each pinned here:

* **Fair-share convergence.**  On loss-free static links, Tahoe's window
  growth plus the queue-delay RTT sample make the window-limited rate
  converge to the fair share *from above*, so after ramp-up every flow's
  assigned rate ``min(share, window/estRTT)`` equals exactly what the
  ``fair`` model would assign — hypothesis drives this across topologies.
* **Loss coupling.**  A drop-typed :class:`~repro.faults.plan.LinkFault`
  (the form :meth:`DDoSAttackPlan.fault_plan` emits for residual-bandwidth
  floods) must slow a tcp transfer down via multiplicative decrease — the
  fault and transport layers finally interact.
* **Engine wiring.**  ``transport="tcp"`` runs end-to-end on the legacy and
  lazy engines (each pinned by its own golden trace — the two trajectories
  differ by design, see ``test_transport_golden.py``); vector requests
  downgrade to lazy, including in the result cache's path suffix.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFault
from repro.protocols.runner import execute_spec
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec
from repro.simnet.flows import effective_shared_engine, use_shared_engine
from repro.simnet.linkmodel import TCP_INITIAL_SSTHRESH, TcpLinkModel
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode

from tests.simnet.test_transport_golden import run_transport_workload

REL_TOLERANCE = 1e-6


class _Sink(ProtocolNode):
    def __init__(self, name, deliveries):
        super().__init__(name)
        self._deliveries = deliveries

    def on_message(self, message, now):
        self._deliveries.append((message.msg_type, now))


def _fan_in_network(transport, flow_count, sink_mbps):
    """``flow_count`` sources sending huge transfers into one sink."""
    deliveries = []
    network = SimNetwork(transport=transport, default_latency_s=0.02)
    network.add_node(_Sink("sink", deliveries), LinkConfig.symmetric_mbps(sink_mbps))
    for index in range(flow_count):
        network.add_node(
            _Sink("src%d" % index, deliveries), LinkConfig.symmetric_mbps(sink_mbps)
        )
    for index in range(flow_count):
        network.send(
            "src%d" % index, "sink", Message(msg_type="DOC", size_bytes=2e9)
        )
    return network, deliveries


def _active_rates(network):
    return sorted(flow.rate for flow in network._scheduler._flows.values())


# -- fair-share convergence ----------------------------------------------------

@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    flow_count=st.integers(min_value=1, max_value=6),
    sink_mbps=st.floats(min_value=4.0, max_value=64.0),
)
def test_tcp_throughput_converges_to_the_fair_share_on_loss_free_links(
    flow_count, sink_mbps
):
    # The sink's downlink is the bottleneck (each source uplink could carry
    # the whole sink capacity alone), so fair assigns every flow exactly
    # capacity/flow_count.  After slow-start ramp-up the tcp rate must sit
    # on the same value: the window cap converges to the share from above
    # and min(share, window rate) collapses to the share.
    tcp_net, _ = _fan_in_network("tcp", flow_count, sink_mbps)
    tcp_net.run(until=60.0)
    fair_net, _ = _fan_in_network("fair", flow_count, sink_mbps)
    fair_net.run(until=60.0)

    tcp_rates = _active_rates(tcp_net)
    fair_rates = _active_rates(fair_net)
    assert len(tcp_rates) == len(fair_rates) == flow_count
    for tcp_rate, fair_rate in zip(tcp_rates, fair_rates):
        assert math.isclose(tcp_rate, fair_rate, rel_tol=REL_TOLERANCE), (
            "tcp rate %r did not converge to fair share %r" % (tcp_rate, fair_rate)
        )


@pytest.mark.parametrize("engine", ["lazy", "legacy"])
def test_tcp_slow_start_delays_but_does_not_change_delivery(engine):
    # One unconstrained transfer: tcp must deliver the same bytes as fair,
    # strictly later (the window ramp costs time), on both engines.
    def completion(transport):
        with use_shared_engine(engine):
            deliveries = []
            network = SimNetwork(transport=transport, default_latency_s=0.02)
            network.add_node(_Sink("a", deliveries), LinkConfig.symmetric_mbps(8.0))
            network.add_node(_Sink("b", deliveries), LinkConfig.symmetric_mbps(8.0))
            network.send("a", "b", Message(msg_type="DOC", size_bytes=5_000_000))
            network.run(until=300.0)
        assert [kind for kind, _ in deliveries] == ["DOC"]
        return deliveries[0][1]

    tcp_done = completion("tcp")
    fair_done = completion("fair")
    assert tcp_done > fair_done
    # The ramp-up penalty is bounded: a few dozen RTTs, not a stall.
    assert tcp_done < fair_done + 10.0


# -- cross-engine agreement ----------------------------------------------------

def test_legacy_and_lazy_engines_agree_on_the_tcp_golden_workload():
    # tcp makes no byte-identity claim across engines (ack ticks land on
    # different instants), but on the canonical workload the two must agree
    # on every event's kind, pair, size and order, with timestamps within
    # the conformance tolerance.
    with use_shared_engine("legacy"):
        legacy = run_transport_workload("tcp")
    with use_shared_engine("lazy"):
        lazy = run_transport_workload("tcp")
    assert legacy["stats"] == lazy["stats"]
    assert len(legacy["events"]) == len(lazy["events"])
    for old, new in zip(legacy["events"], lazy["events"]):
        assert old[:5] == new[:5]
        assert math.isclose(old[5], new[5], rel_tol=REL_TOLERANCE, abs_tol=1e-9)


# -- loss coupling -------------------------------------------------------------

def _timed_transfer(fault_plan):
    deliveries = []
    network = SimNetwork(transport="tcp", default_latency_s=0.02)
    network.add_node(_Sink("auth0", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("auth1", deliveries), LinkConfig.symmetric_mbps(8.0))
    if fault_plan is not None:
        injector = FaultInjector(
            fault_plan, seed=7, authority_names={0: "auth0", 1: "auth1"}
        )
        injector.install(network)
    network.send("auth0", "auth1", Message(msg_type="DOC", size_bytes=4_000_000))
    network.run(until=600.0)
    assert [kind for kind, _ in deliveries] == ["DOC"]
    return deliveries[0][1]


def test_drop_typed_faults_collapse_the_congestion_window():
    # A heavy loss window opens after the transfer is underway and closes
    # well before it can finish (so the send draw at t=0 and the residual
    # delivery check both see zero exposure): every ack round inside the
    # window sees segment loss, Tahoe collapses cwnd to 1 and doubles the
    # RTO, and the transfer must finish measurably later than the loss-free
    # run.  This is the seam figure12's drop-typed flood exercises.
    clean = _timed_transfer(None)
    lossy = _timed_transfer(
        FaultPlan(
            link_faults=(
                LinkFault(
                    authority_id=1,
                    drop_probability=0.9,
                    loss_windows=((0.5, 30.0),),
                ),
            )
        )
    )
    assert clean < 30.0 < lossy
    assert lossy > clean + 20.0


def test_tcp_loss_event_draws_only_under_active_loss_faults():
    plan = FaultPlan(
        link_faults=(
            LinkFault(authority_id=0, drop_probability=0.5, loss_windows=((10.0, 20.0),)),
            LinkFault(authority_id=1, partition_windows=((30.0, 40.0),)),
        )
    )
    injector = FaultInjector(plan, seed=3, authority_names={0: "a", 1: "b"})
    # Outside every window: no exposure, no draw, never a loss.
    assert injector.tcp_loss_event("a", "b", 5.0) is False
    assert ("tcp-loss", "a", "b") not in injector._draw_streams
    # Partitions are certain loss without consuming a draw.
    assert injector.tcp_loss_event("a", "b", 35.0) is True
    assert ("tcp-loss", "a", "b") not in injector._draw_streams
    # Inside the loss window the pair's dedicated stream is consumed, and a
    # whole window of segments is more likely to see loss than one segment.
    saw_loss = [injector.tcp_loss_event("a", "b", 15.0, segments=64) for _ in range(20)]
    assert ("tcp-loss", "a", "b") in injector._draw_streams
    assert any(saw_loss)
    # Congestion signals are not dropped messages.
    assert injector.messages_dropped == 0


# -- engine wiring -------------------------------------------------------------

@pytest.mark.parametrize("engine", ["lazy", "legacy", "vector"])
def test_tcp_spec_runs_end_to_end_on_every_engine_request(engine):
    spec = RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=5,
        seed=5,
        max_time=700.0,
        transport="tcp",
    )
    with use_shared_engine(engine):
        summary = execute_spec(spec).summary()
    assert summary["success"] is True
    assert summary["stats"]["messages_delivered"] > 0


def test_vector_requests_downgrade_to_lazy_for_tcp():
    with use_shared_engine("vector"):
        assert effective_shared_engine(transport="tcp") == "lazy"
        # Vectorized transports keep their engine (when numpy is present).
        from repro.simnet.vector_sched import vector_available

        expected = "vector" if vector_available() else "lazy"
        assert effective_shared_engine(transport="fair") == expected
    assert effective_shared_engine(transport="tcp") == "lazy"


def test_result_cache_keys_tcp_vector_requests_as_lazy(tmp_path):
    cache = ResultCache(tmp_path)
    tcp_spec = RunSpec(protocol="current", relay_count=30, transport="tcp")
    fair_spec = RunSpec(protocol="current", relay_count=30, transport="fair")
    lazy_path = cache.path_for(tcp_spec)
    with use_shared_engine("vector"):
        # tcp runs the lazy engine under a vector request, so it must hit
        # the same entries as a default run — unlike fair, which really does
        # execute on the vector engine when numpy is available.
        assert cache.path_for(tcp_spec) == lazy_path
        from repro.simnet.vector_sched import vector_available

        if vector_available():
            assert cache.path_for(fair_spec).name.endswith(".vector.json")


def test_tcp_model_runs_detached_from_a_network():
    # Direct assign_rates calls (no SimNetwork, no injector) must work for
    # unit tests and third-party schedulers: default RTT, no loss events.
    from tests.simnet.test_linkmodel import links_for, make_flow

    model = TcpLinkModel()
    flows = {1: make_flow(1, "a", "b", 1_000_000)}
    links = links_for({"a": 8.0, "b": 8.0})
    model.assign_rates(flows, links, 0.0)
    assert flows[1].rate > 0.0
    state = model.state_of(flows[1], 0.0)
    assert state.cwnd >= 1.0
    assert state.ssthresh == TCP_INITIAL_SSTHRESH
