"""Event-loop tests."""

import pytest

from repro.simnet.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(3.0, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert sim.now == 5.0


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, order.append, tag)
    sim.run_until_idle()
    assert order == ["first", "second", "third"]


def test_schedule_in_uses_relative_delay():
    sim = Simulator()
    seen = []
    sim.schedule_in(2.0, lambda: sim.schedule_in(3.0, lambda: seen.append(sim.now)))
    sim.run_until_idle()
    assert seen == [5.0]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule(5.0, lambda: None)
    with pytest.raises(Exception):
        sim.schedule_in(-1.0, lambda: None)


def test_cancelled_events_are_skipped():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    sim.run_until_idle()
    assert fired == ["kept"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    stop_time = sim.run(until=5.0)
    assert fired == ["a"]
    assert stop_time == 5.0
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            sim.schedule_in(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run_until_idle()
    assert seen == [0, 1, 2, 3]
    assert sim.processed_events == 4


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule_in(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(until=None, max_events=100)


def test_pending_event_count():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    handle.cancel()
    assert sim.pending_events == 1


def test_pending_count_is_maintained_incrementally():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sim.pending_events == 4
    handles[0].cancel()
    handles[0].cancel()  # idempotent: no double decrement
    assert sim.pending_events == 3
    sim.step()  # executes the event at t=2
    assert sim.pending_events == 2
    sim.run_until_idle()
    assert sim.pending_events == 0


def test_cancel_after_execution_does_not_corrupt_pending_count():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.step()
    handle.cancel()  # already executed: must be a no-op
    assert sim.pending_events == 1
    sim.run_until_idle()
    assert sim.pending_events == 0


def test_max_events_is_an_exact_bound():
    sim = Simulator()
    fired = []
    for i in range(6):
        sim.schedule(float(i), fired.append, i)
    with pytest.raises(SimulationError):
        sim.run(max_events=5)
    # Exactly max_events executed before the guard tripped.
    assert fired == [0, 1, 2, 3, 4]
    assert sim.processed_events == 5


def test_max_events_allows_exactly_that_many_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=5)  # queue drains exactly at the bound: no error
    assert fired == [0, 1, 2, 3, 4]


def test_cancel_heavy_workload_keeps_heap_size_bounded():
    # The lazy transport scheduler cancels and re-pushes a completion
    # estimate per rate change; without compaction the heap grows with the
    # total cancellation history instead of the live event count.
    sim = Simulator()
    live = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
    for round_number in range(200):
        handles = [sim.schedule(500.0 + i, lambda: None) for i in range(50)]
        for handle in handles:
            handle.cancel()
        # Cancelled corpses never dominate: the heap stays within a small
        # constant factor of the live entries.
        assert len(sim._heap) <= max(2 * (len(live) + 50), Simulator._COMPACT_MIN_SIZE)
    assert sim.pending_events == len(live)


def test_compaction_preserves_event_order():
    import random

    rng = random.Random(99)
    sim = Simulator()
    fired = []
    expected = []
    kept = []
    for i in range(500):
        time = rng.uniform(0.0, 100.0)
        handle = sim.schedule(time, fired.append, i)
        if rng.random() < 0.8:
            handle.cancel()
        else:
            kept.append((handle.time, handle.seq, i))
    expected = [i for _t, _s, i in sorted(kept)]
    sim.run_until_idle()
    assert fired == expected


def test_cancelled_events_do_not_count_against_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), fired.append, i).cancel()
    sim.schedule(10.0, fired.append, "live")
    sim.run(max_events=1)
    assert fired == ["live"]
