"""Vector-engine conformance: SoA batch scheduling ≡ lazy, summary-level.

The vectorized shared-link scheduler (:mod:`repro.simnet.vector_sched`)
coalesces same-instant work and recomputes rates over numpy slot arrays, so
it does *not* reproduce the lazy engine's event order or float rounding —
flows chip progress at recompute instants rather than per flow event, and
same-instant completions settle in flow-id batches.  Its contract is
therefore pinned one level up, exactly where the lazy/legacy contract
lives: **summary equivalence** — integer accounting (deliveries, timeouts,
drops, per-phase message counts) equal exactly, continuous values (bytes,
timestamps, latencies) within ``REL_TOLERANCE`` — plus the canonical
transport workload compared as an event *multiset* (never order) and the
full edge-case battery re-run under the vector engine.

Everything here degrades gracefully on a numpy-less install: the engine
seam downgrades ``vector`` to ``lazy`` (pinned by the fallback test, which
is what the no-numpy CI leg exercises), and the numpy-only tests skip.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.runner import execute_spec
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec
from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.engine import Simulator
from repro.simnet.flows import (
    effective_shared_engine,
    make_flow_scheduler,
    use_shared_engine,
)
from repro.simnet.linkmodel import get_link_model
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode
from repro.simnet.shared_sched import LazySharedLinkScheduler
from repro.simnet.vector_sched import VectorSharedLinkScheduler, vector_available
from tests.faults.test_conformance import random_fault_plan
from tests.simnet.test_shared_sched import (
    REL_TOLERANCE,
    SHARED_TRANSPORTS,
    assert_equivalent,
)
from tests.simnet.test_transport_golden import run_transport_workload

needs_numpy = pytest.mark.skipif(
    not vector_available(), reason="numpy not installed (the [perf] extra)"
)


# -- engine selection seam -----------------------------------------------------

def test_vector_request_selects_vector_or_falls_back_to_lazy():
    # The one test that must pass WITH and WITHOUT numpy: requesting the
    # vector engine yields the vectorized scheduler when numpy is importable
    # and silently downgrades to the (golden-pinned) lazy engine otherwise.
    with use_shared_engine("vector"):
        assert effective_shared_engine() == (
            "vector" if vector_available() else "lazy"
        )
        scheduler = make_flow_scheduler(
            get_link_model("fair"),
            Simulator(),
            {},
            lambda flow: None,
            lambda flow: None,
        )
    expected = VectorSharedLinkScheduler if vector_available() else LazySharedLinkScheduler
    assert type(scheduler) is expected


def test_non_vector_engines_are_unaffected_by_numpy_availability():
    for engine in ("lazy", "legacy"):
        with use_shared_engine(engine):
            assert effective_shared_engine() == engine


# -- conformance: vector engine vs lazy engine ---------------------------------

def run_vector_and_lazy(spec: RunSpec):
    with use_shared_engine("lazy"):
        lazy = execute_spec(spec).summary()
    with use_shared_engine("vector"):
        vector = execute_spec(spec).summary()
    return lazy, vector


@needs_numpy
@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOL_NAMES),
    transport=st.sampled_from(SHARED_TRANSPORTS),
)
def test_vector_engine_is_summary_equivalent_to_lazy_under_random_fault_plans(
    seed, protocol, transport
):
    spec = RunSpec(
        protocol=protocol,
        relay_count=30,
        authority_count=5,
        seed=seed % 1000,
        max_time=700.0,
        transport=transport,
        fault_plan=random_fault_plan(seed),
    )
    lazy, vector = run_vector_and_lazy(spec)
    assert lazy["success"] == vector["success"]
    assert lazy["stats"]["messages_sent"] == vector["stats"]["messages_sent"]
    assert lazy["stats"]["messages_delivered"] == vector["stats"]["messages_delivered"]
    assert lazy["stats"]["messages_timed_out"] == vector["stats"]["messages_timed_out"]
    assert lazy["stats"]["messages_dropped"] == vector["stats"]["messages_dropped"]
    if lazy["faults"]:
        assert lazy["faults"]["drops_by_cause"] == vector["faults"]["drops_by_cause"]
    assert_equivalent(lazy, vector)


@needs_numpy
@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_vector_engine_matches_lazy_on_the_golden_workload_as_a_multiset(transport):
    # The canonical mixed workload: the vector engine settles same-instant
    # completions in flow-id batches, so event ORDER may legitimately differ
    # from lazy — the comparison sorts both streams by a timestamp-free key
    # and checks each matched pair's timestamp to tolerance.
    with use_shared_engine("lazy"):
        lazy = run_transport_workload(transport)
    with use_shared_engine("vector"):
        vector = run_transport_workload(transport)
    assert lazy["stats"] == vector["stats"]
    assert len(lazy["events"]) == len(vector["events"])

    def keyed(record):
        kind, msg_type, sender, dst, size, now = record
        return ((kind, msg_type, sender, dst, size), now)

    old = sorted(map(keyed, lazy["events"]))
    new = sorted(map(keyed, vector["events"]))
    for (old_key, old_now), (new_key, new_now) in zip(old, new):
        assert old_key == new_key
        assert math.isclose(old_now, new_now, rel_tol=REL_TOLERANCE, abs_tol=1e-9)


# -- edge cases, re-run under the vector engine --------------------------------

class _Sink(ProtocolNode):
    def __init__(self, name, deliveries):
        super().__init__(name)
        self._deliveries = deliveries

    def on_message(self, message, now):
        self._deliveries.append((message.msg_type, now))


def _two_node_network(dst_schedule, transport="fair"):
    deliveries = []
    network = SimNetwork(
        transport=transport, shared_engine="vector", default_latency_s=0.0
    )
    network.add_node(_Sink("src", deliveries), LinkConfig.symmetric_mbps(8.0))
    network.add_node(_Sink("dst", deliveries), LinkConfig.symmetric(dst_schedule))
    return network, deliveries


@needs_numpy
@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_vector_strands_a_flow_whose_rate_drops_to_zero_forever(transport):
    schedule = BandwidthSchedule([0.0, 1.0], [1_000_000.0, 0.0])
    network, deliveries = _two_node_network(schedule, transport)
    timeouts = []
    network.send(
        "src", "dst", Message(msg_type="DOC", size_bytes=2_000_000),
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == []
    assert network.active_flow_count() == 1


@needs_numpy
@pytest.mark.parametrize("transport", SHARED_TRANSPORTS)
def test_vector_defers_completion_across_an_outage_window(transport):
    schedule = BandwidthSchedule([0.0, 1.0, 100.0], [1_000_000.0, 0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule, transport)
    network.send("src", "dst", Message(msg_type="DOC", size_bytes=2_000_000))
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == pytest.approx(101.0, rel=1e-9)


@needs_numpy
def test_vector_deadline_exactly_on_a_bandwidth_breakpoint_times_out():
    schedule = BandwidthSchedule([0.0, 10.0], [0.0, 1_000_000.0])
    network, deliveries = _two_node_network(schedule)
    timeouts = []
    network.send(
        "src", "dst", Message(msg_type="DOC", size_bytes=500_000),
        timeout=10.0,
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert deliveries == []
    assert timeouts == [10.0]
    assert network.active_flow_count() == 0


@needs_numpy
def test_vector_sub_ulp_residual_completes_instead_of_livelocking():
    start = float(2**20)
    deliveries = []
    network = SimNetwork(
        transport="fair", shared_engine="vector", default_latency_s=0.0
    )
    fast = LinkConfig.symmetric(BandwidthSchedule.constant(1e9))
    network.add_node(_Sink("src", deliveries), fast)
    network.add_node(_Sink("dst", deliveries), fast)
    network.simulator.schedule(
        start,
        lambda: network.send("src", "dst", Message(msg_type="DOC", size_bytes=0.05)),
    )
    network.simulator.run_until_idle(max_events=1_000)
    assert [kind for kind, _now in deliveries] == ["DOC"]
    assert deliveries[0][1] == start
    assert network.active_flow_count() == 0


@needs_numpy
def test_vector_fifo_mid_queue_expiry_never_disturbs_the_served_flow():
    deliveries = []
    network = SimNetwork(
        transport="fifo", shared_engine="vector", default_latency_s=0.0
    )
    network.add_node(_Sink("a", deliveries), LinkConfig.symmetric_mbps(10.0))
    network.add_node(_Sink("b", deliveries), LinkConfig.symmetric_mbps(10.0))
    network.add_node(_Sink("c", deliveries), LinkConfig.symmetric_mbps(10.0))
    timeouts = []
    network.send("a", "b", Message(msg_type="FIRST", size_bytes=2_500_000))
    network.send(
        "a", "c", Message(msg_type="SECOND", size_bytes=1_250_000),
        timeout=1.0,
        on_timeout=lambda message, dst: timeouts.append(network.simulator.now),
    )
    network.send("a", "b", Message(msg_type="THIRD", size_bytes=1_250_000))
    network.simulator.run_until_idle(max_events=1_000)
    assert timeouts == [1.0]
    assert [(kind, now) for kind, now in deliveries] == [
        ("FIRST", pytest.approx(2.0)),
        ("THIRD", pytest.approx(3.0)),
    ]
    assert network.active_flow_count() == 0
